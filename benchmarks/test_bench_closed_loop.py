"""Bench the closed-loop (replanning) extension across traffic levels."""

from benchmarks.conftest import run_once
from repro.experiments import ext_closed_loop


def test_bench_ext_closed_loop(benchmark):
    config = ext_closed_loop.ClosedLoopConfig(
        traffic_levels_vph=(150.0, 650.0), departures=(300.0,)
    )
    result = run_once(benchmark, ext_closed_loop.run, config)
    print()
    print(ext_closed_loop.report(result))

    # Shape: closed-loop never stops more than open-loop and never costs
    # more energy at the heavy-traffic end.
    for vph, open_e, closed_e, open_stops, closed_stops, replans in result.rows:
        assert closed_stops <= open_stops
        assert replans > 0
    heavy = result.rows[-1]
    assert heavy[2] <= heavy[1] * 1.02
    benchmark.extra_info["heavy_traffic_stops"] = {
        "open": heavy[3],
        "closed": heavy[4],
    }
