"""Bench FIG6: planned-vs-derived profiles — the queue catches the baseline."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_sumo


def test_bench_fig6_planned_vs_derived(benchmark):
    result = run_once(benchmark, fig6_sumo.run)
    print()
    print(fig6_sumo.report(result))

    # Fig. 6 contrast: the baseline plan is disturbed at a signal (stop or
    # deep slowdown), the proposed plan is not.
    base_min = result.min_speed_near_signals["baseline_dp"]
    prop_min = result.min_speed_near_signals["proposed"]
    assert prop_min > base_min, "proposed must keep a higher minimum speed at signals"
    assert result.signal_stops["proposed"] == 0
    benchmark.extra_info["baseline_min_kmh"] = round(base_min * 3.6, 1)
    benchmark.extra_info["proposed_min_kmh"] = round(prop_min * 3.6, 1)
    benchmark.extra_info["departure_s"] = result.depart_s
