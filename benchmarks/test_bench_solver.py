"""Raw performance benches: DP solve throughput and simulator step rate."""

import numpy as np

from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.sim.simulator import CorridorSimulator
from repro.traffic.arrival import PoissonArrivalProcess
from repro.traffic.volume import VolumeSeries
from repro.units import vehicles_per_hour_to_per_second


def test_bench_dp_solve_default_resolution(benchmark):
    """One queue-aware plan at the paper-fidelity grid."""
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road, arrival_rates=vehicles_per_hour_to_per_second(300.0)
    )

    def solve():
        return planner.plan(start_time_s=0.0, max_trip_time_s=290.0)

    solution = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert solution.all_windows_hit
    benchmark.extra_info["expanded_transitions"] = solution.expanded_transitions


def test_bench_dp_solve_coarse_resolution(benchmark):
    """One plan at the fast (test-suite) grid."""
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(300.0),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0),
    )

    def solve():
        return planner.plan(start_time_s=0.0, max_trip_time_s=290.0)

    solution = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert solution.all_windows_hit


def test_bench_simulator_step_rate(benchmark):
    """Simulated seconds of corridor traffic per wall-clock benchmark round."""
    road = us25_greenville_segment()
    series = VolumeSeries(np.full(2, 400.0))
    arrivals = PoissonArrivalProcess(series, seed=1).sample(0.0, 1800.0)

    def run():
        sim = CorridorSimulator(road, arrivals_s=arrivals, seed=2)
        return sim.run(600.0)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.vehicles_entered > 30
    benchmark.extra_info["vehicles_entered"] = result.vehicles_entered
