"""Bench the vehicular-cloud service: cache economics at fleet scale."""

from benchmarks.conftest import run_once
from repro.cloud import CloudPlannerService, FleetStudy
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second


def test_bench_cloud_fleet(benchmark):
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(300.0),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
    )
    service = CloudPlannerService(planner, phase_quantum_s=2.0)
    study = FleetStudy(service, road, fleet_rate_vph=60.0, seed=7)

    result = run_once(benchmark, study.run, 3600.0, human_reference_sample=2)
    print()
    print(
        f"fleet {result.n_vehicles} EVs: saving {result.savings_pct:.1f}%, "
        f"cache hit rate {result.service.hit_rate:.2f}, "
        f"server compute {result.service.total_compute_s:.1f} s"
    )
    assert result.savings_pct > 5.0
    assert result.service.hit_rate > 0.2
    benchmark.extra_info["fleet_savings_pct"] = round(result.savings_pct, 1)
    benchmark.extra_info["cache_hit_rate"] = round(result.service.hit_rate, 2)
