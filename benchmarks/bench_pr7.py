"""Standalone PR 7 bench: writes the committed ``BENCH_pr7.json``.

PR 7 put a network front door on the serving stack: an asyncio TCP
server speaking the versioned wire protocol over length-prefixed
frames, with a bounded admission queue that sheds excess load as typed
BUSY errors.  This bench measures that door under open-loop Poisson
load and gates the two properties that make it a *front door* rather
than a liability:

* **identity** — a cold fleet served over the wire must be
  bit-identical to the same fleet served in-process (profile arrays,
  energies, trip times, cache economics per vehicle);
* **bounded admitted latency under overload** — with a small admission
  queue and arrivals far above solve capacity, the p99 latency of
  *admitted* requests stays bounded (the queue cannot grow), and every
  excess request is shed as a typed BUSY rejection, never a timeout.

Two load phases run against live servers:

* ``moderate`` — warm-cache requests at an easily sustainable rate;
  measures the wire floor (p50/p99) and sustained RPS with essentially
  no shedding;
* ``overload`` — cold-cache requests (every one a real DP solve) at an
  arrival rate several times solve capacity against ``max_pending=2``;
  measures shed rate and the bounded p99 of the admitted.

The harness is open-loop: each request fires at its scheduled Poisson
arrival offset from a thread pool regardless of earlier completions,
so server slowness cannot hide behind client back-off.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr7.py [--out BENCH_pr7.json]
    PYTHONPATH=src python benchmarks/bench_pr7.py --reduced
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.netclient import NetworkPlanTransport
from repro.cloud.server import serve_in_background
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.errors import CloudUnavailableError, ServerOverloadError
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(
    v_step_ms=1.0, s_step_m=50.0, t_bin_s=2.0, horizon_s=500.0,
    window_margin_s=2.0,
)
MAX_TRIP_TIME_S = 320.0
SEED = 7


def _build_service() -> CloudPlannerService:
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road, arrival_rates=RATE, config=CONFIG, store=ArtifactStore()
    )
    return CloudPlannerService(planner)


def _identity_requests(n: int) -> List[PlanRequest]:
    return [
        PlanRequest(
            vehicle_id=f"ev{i}",
            depart_s=float(9 * i % 40),
            max_trip_time_s=MAX_TRIP_TIME_S,
        )
        for i in range(n)
    ]


def _assert_identical(got: PlanResponse, want: PlanResponse) -> None:
    assert got.vehicle_id == want.vehicle_id
    assert got.energy_mah == want.energy_mah, "energy diverged over the wire"
    assert got.trip_time_s == want.trip_time_s, "trip time diverged"
    assert got.cache_hit == want.cache_hit, "cache economics diverged"
    assert np.array_equal(got.profile.positions_m, want.profile.positions_m)
    assert np.array_equal(got.profile.speeds_ms, want.profile.speeds_ms)
    assert np.array_equal(got.profile.arrival_times_s, want.profile.arrival_times_s)


def _identity_phase(n: int) -> Dict[str, object]:
    """Cold wire serving must be bit-identical to cold in-process serving."""
    requests = _identity_requests(n)
    reference = [_build_service().request(req) for req in requests]
    with serve_in_background(_build_service(), request_timeout_s=120.0) as handle:
        transport = NetworkPlanTransport(*handle.address, timeout_s=120.0)
        try:
            wired = [transport.request(req) for req in requests]
        finally:
            transport.close()
        wire_stats = transport.stats_snapshot()
        document = handle.drain()
    for got, want in zip(wired, reference):
        _assert_identical(got, want)
    assert document["server"]["served"] == n
    return {
        "requests": n,
        "identical_to_in_process": True,
        "bytes_sent": wire_stats.bytes_sent,
        "bytes_received": wire_stats.bytes_received,
    }


def _percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _open_loop(
    address: Tuple[str, int],
    requests: List[PlanRequest],
    rate_rps: float,
    seed: int,
    timeout_s: float = 60.0,
    max_workers: int = 32,
) -> Dict[str, object]:
    """Fire each request at its Poisson arrival offset; tally outcomes.

    Open loop: arrival times are drawn up front and each send fires on
    schedule (subject to the worker-pool cap) whether or not earlier
    requests have completed.  Each worker thread keeps one persistent
    connection, mirroring a fleet of independent vehicles.
    """
    rng = np.random.default_rng(seed)
    offsets = np.cumsum(rng.exponential(1.0 / rate_rps, size=len(requests)))
    local = threading.local()
    lock = threading.Lock()
    transports: List[NetworkPlanTransport] = []
    served: List[float] = []
    busy: List[float] = []
    other: List[str] = []
    start = time.perf_counter()

    def fire(req: PlanRequest, offset: float) -> None:
        transport = getattr(local, "transport", None)
        if transport is None:
            transport = NetworkPlanTransport(*address, timeout_s=timeout_s)
            local.transport = transport
            with lock:
                transports.append(transport)
        delay = offset - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        t0 = time.perf_counter()
        try:
            transport.request(req)
            outcome, bucket = "served", served
        except ServerOverloadError:
            outcome, bucket = "busy", busy
        except CloudUnavailableError as exc:
            outcome, bucket = exc.reason, None
        latency = time.perf_counter() - t0
        with lock:
            if bucket is None:
                other.append(outcome)
            else:
                bucket.append(latency)

    try:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(fire, req, off)
                for req, off in zip(requests, offsets)
            ]
            for future in futures:
                future.result()
    finally:
        for transport in transports:
            transport.close()
    wall = time.perf_counter() - start

    n = len(requests)
    return {
        "requests": n,
        "offered_rps": round(rate_rps, 2),
        "wall_s": round(wall, 4),
        "served": len(served),
        "busy_rejections": len(busy),
        "other_failures": len(other),
        "other_reasons": sorted(set(other)),
        "rejection_rate": round(len(busy) / n, 4),
        "sustained_rps": round(len(served) / wall, 2),
        "admitted_p50_ms": round(_percentile(served, 50) * 1e3, 2) if served else None,
        "admitted_p99_ms": round(_percentile(served, 99) * 1e3, 2) if served else None,
        "busy_p99_ms": round(_percentile(busy, 99) * 1e3, 2) if busy else None,
    }


def _moderate_phase(n: int, rate_rps: float) -> Dict[str, object]:
    """Warm-cache load at a sustainable rate: the wire's latency floor."""
    warm = _identity_requests(8)
    requests = [
        PlanRequest(
            vehicle_id=f"mod{i}",
            depart_s=warm[i % len(warm)].depart_s,
            max_trip_time_s=MAX_TRIP_TIME_S,
        )
        for i in range(n)
    ]
    with serve_in_background(_build_service(), request_timeout_s=120.0) as handle:
        transport = NetworkPlanTransport(*handle.address, timeout_s=120.0)
        try:
            for req in warm:
                transport.request(req)
        finally:
            transport.close()
        phase = _open_loop(handle.address, requests, rate_rps, seed=SEED)
        document = handle.drain()
    phase["server"] = {
        "served": document["server"]["served"],
        "busy_rejections": document["server"]["busy_rejections"],
    }
    return phase


def _overload_phase(n: int, rate_rps: float, max_pending: int) -> Dict[str, object]:
    """Cold solves offered far above capacity against a tiny queue.

    Every request lands in a distinct plan-cache bin, so each admitted
    request costs a real DP solve.  The bounded queue is the whole
    mechanism under test: admitted latency stays bounded at roughly
    (queue depth + workers) solves, and everything else is shed BUSY.
    """
    requests = [
        PlanRequest(
            vehicle_id=f"ovl{i}",
            depart_s=float(7 * i),
            max_trip_time_s=MAX_TRIP_TIME_S,
        )
        for i in range(n)
    ]
    with serve_in_background(
        _build_service(),
        max_pending=max_pending,
        workers=1,
        request_timeout_s=120.0,
    ) as handle:
        phase = _open_loop(handle.address, requests, rate_rps, seed=SEED + 1)
        document = handle.drain()
    phase["max_pending"] = max_pending
    phase["server"] = {
        "served": document["server"]["served"],
        "busy_rejections": document["server"]["busy_rejections"],
    }
    return phase


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="PR 7 network front-door bench (admission + backpressure)."
    )
    parser.add_argument("--out", default="BENCH_pr7.json", help="report destination")
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="CI smoke: fewer requests per phase, relaxed p99 bound",
    )
    parser.add_argument(
        "--p99-bound-s",
        type=float,
        default=None,
        help="fail if admitted p99 under overload exceeds this "
        "(default: 10 s full, 30 s reduced)",
    )
    args = parser.parse_args(argv)
    identity_n = 4 if args.reduced else 12
    moderate_n = 40 if args.reduced else 200
    moderate_rps = 25.0 if args.reduced else 60.0
    overload_n = 24 if args.reduced else 60
    overload_rps = 20.0 if args.reduced else 30.0
    p99_bound = args.p99_bound_s if args.p99_bound_s is not None else (
        30.0 if args.reduced else 10.0
    )

    print(f"identity: {identity_n} cold requests, wire vs in-process")
    identity = _identity_phase(identity_n)
    print(f"moderate: {moderate_n} warm requests at {moderate_rps:.0f} rps")
    moderate = _moderate_phase(moderate_n, moderate_rps)
    print(f"overload: {overload_n} cold solves at {overload_rps:.0f} rps, "
          "max_pending=2")
    overload = _overload_phase(overload_n, overload_rps, max_pending=2)

    report = {
        "bench": "pr7-network-front-door",
        "grid": {"v_step_ms": 1.0, "s_step_m": 50.0, "t_bin_s": 2.0},
        "reduced": bool(args.reduced),
        "seed": SEED,
        "identity": identity,
        "moderate": moderate,
        "overload": overload,
        "p99_bound_s": p99_bound,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    # Gates.  Moderate load must be essentially shed-free and sustained;
    # overload must actually shed, shed *only* as typed BUSY, and keep
    # the admitted p99 bounded by the tiny queue.
    assert moderate["served"] >= 0.95 * moderate_n, "moderate load was shed"
    assert moderate["other_failures"] == 0, moderate["other_reasons"]
    assert moderate["sustained_rps"] > 0
    assert overload["busy_rejections"] > 0, "overload never shed: queue unbounded?"
    assert overload["other_failures"] == 0, (
        f"untyped overload failures: {overload['other_reasons']}"
    )
    assert overload["served"] > 0, "overload shed everything"
    assert overload["admitted_p99_ms"] <= p99_bound * 1e3, (
        f"admitted p99 {overload['admitted_p99_ms']:.0f} ms exceeds "
        f"{p99_bound:.0f} s: admission queue is not bounding latency"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
