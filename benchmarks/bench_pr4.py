"""Standalone PR 4 bench: writes the committed ``BENCH_pr4.json``.

Measures the engine split's headline numbers on the US-25 corridor at
the fast grid (v_step 1.0 m/s, s_step 25 m, t_bin 2 s):

* ``replan_late_*`` — stand up a planner and answer a final-approach
  replan (400 m before the corridor end, past the last signal).  The
  remaining-corridor solve is small, so the cold path's full-corridor
  artifact rebuild dominates; this is the quantity the artifact store
  eliminates and the one the >= 2x acceptance gate applies to.
* ``replan_mid_*`` — the same comparison for a mid-route replan
  (2000 m in), reported for transparency: there the solve itself
  dominates, so artifact reuse buys a smaller factor.
* ``fleet8_*`` — eight vehicles' plan requests through one
  :class:`CloudPlannerService` sharing a store.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr4.py [output.json]

The acceptance gate (warm >= 2x faster than cold on the late replan) is
asserted here so CI fails loudly if a regression erodes the reuse win.
"""

from __future__ import annotations

import json
import statistics
import sys
import time

import numpy as np

from repro.cloud.messages import PlanRequest
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0)
# Final-approach replan: 400 m from the end of the 4200 m corridor,
# past the last signal (3460 m).  The solve covers only the remaining
# segments while a cold planner still rebuilds artifacts for the whole
# corridor — the gated quantity.
LATE_REPLAN_STATE = dict(position_m=3800.0, speed_ms=10.0, time_s=310.0)
# Mid-route replan, reported informationally (solve-dominated).
MID_REPLAN_STATE = dict(position_m=2000.0, speed_ms=8.0, time_s=170.0)
ROUNDS = 5


def _timed(fn, rounds: int = ROUNDS):
    samples = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return result, samples


def _replan(road, store, state):
    planner = QueueAwareDpPlanner(road, arrival_rates=RATE, config=CONFIG, store=store)
    return planner.replan(**state)


def _cold_vs_warm(road, state):
    cold_solution, cold = _timed(lambda: _replan(road, None, state))
    store = ArtifactStore()
    _replan(road, store, state)  # warm-up build
    warm_solution, warm = _timed(lambda: _replan(road, store, state))
    assert warm_solution.energy_j == cold_solution.energy_j, "store changed the answer"
    cold_s = statistics.median(cold)
    warm_s = statistics.median(warm)
    return cold_s, warm_s, cold_s / warm_s


def main(destination: str = "BENCH_pr4.json") -> int:
    road = us25_greenville_segment()

    late_cold, late_warm, late_speedup = _cold_vs_warm(road, LATE_REPLAN_STATE)
    mid_cold, mid_warm, mid_speedup = _cold_vs_warm(road, MID_REPLAN_STATE)

    def serve_fleet():
        fleet_store = ArtifactStore()
        planner = QueueAwareDpPlanner(
            road, arrival_rates=RATE, config=CONFIG, store=fleet_store
        )
        service = CloudPlannerService(planner)
        for i, depart in enumerate(np.linspace(0.0, 180.0, 8)):
            service.request(
                PlanRequest(
                    vehicle_id=f"ev{i}", depart_s=float(depart), max_trip_time_s=290.0
                )
            )
        return service, fleet_store

    (service, fleet_store), fleet = _timed(serve_fleet, rounds=3)

    report = {
        "bench": "pr4-engine-split",
        "grid": {"v_step_ms": 1.0, "s_step_m": 25.0, "t_bin_s": 2.0},
        "replan_late_state": LATE_REPLAN_STATE,
        "replan_late_cold_s": round(late_cold, 4),
        "replan_late_warm_s": round(late_warm, 4),
        "warm_speedup": round(late_speedup, 2),
        "replan_mid_state": MID_REPLAN_STATE,
        "replan_mid_cold_s": round(mid_cold, 4),
        "replan_mid_warm_s": round(mid_warm, 4),
        "replan_mid_speedup": round(mid_speedup, 2),
        "fleet8_wall_s": round(statistics.median(fleet), 4),
        "fleet8_plan_cache_hit_rate": round(service.stats.hit_rate, 3),
        "fleet8_store": {
            "hits": fleet_store.stats().hits,
            "misses": fleet_store.stats().misses,
        },
        "rounds": {"replan": ROUNDS, "fleet": 3},
    }
    with open(destination, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    assert late_speedup >= 2.0, (
        f"warm-store late replan only {late_speedup:.2f}x faster than cold (need >= 2x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(*sys.argv[1:2]))
