"""Bench FIG4: regenerate the SAE prediction-quality table of Fig. 4b."""

from benchmarks.conftest import run_once
from repro.experiments import fig4_sae


def test_bench_fig4_sae_prediction(benchmark):
    result = run_once(benchmark, fig4_sae.run)
    print()
    print(fig4_sae.report(result))

    worst_day_mre = max(mre for _, mre, _ in result.per_day)
    assert worst_day_mre < 0.10, "paper bar: every day's MRE below 10%"
    assert result.overall["SAE"][0] < result.overall["last-value"][0]
    assert result.overall["SAE"][1] < result.overall["historical-average"][1]
    benchmark.extra_info["worst_day_mre_pct"] = round(worst_day_mre * 100.0, 2)
    benchmark.extra_info["sae_rmse_vph"] = round(result.overall["SAE"][1], 2)
