"""Standalone PR 8 bench: writes the committed ``BENCH_pr8.json``.

Three gated claims back the uncertainty stack:

* ``mid_replan`` — the PR 4 mid-route replan (2000 m in, solve-bound)
  is now >= 2x faster warm than cold.  BENCH_pr4.json recorded 1.46x;
  the vectorized stage expansion closes the gap, and this gate keeps
  it closed.
* ``mpc_cycle`` — per-cycle cost of a warm receding-horizon replan
  through the chance-constrained planner (the ``queue_dp_mpc`` tier's
  unit of work).  Reported and gated loosely against the cold replan:
  a warm MPC cycle must beat a cold full rebuild.
* ``bit_identity`` — with faults disabled, the chance-constrained
  planner at p = 0.5 (margin 0) and its receding-horizon wrapper
  produce plans bit-identical to the point-forecast ``queue_dp``.
* ``robustness`` — the ``ext-uncertainty`` drift sweep: at the highest
  severity the stochastic arm misses *strictly fewer* queue-clearance
  windows than the point arm, at <= 10% energy overhead (p = 0.9).

Usage::

    PYTHONPATH=src python benchmarks/bench_pr8.py [--reduced] [--out F]

``--reduced`` shrinks the SAE residual fit and drops the middle
severity for CI; the gates are identical in both modes.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import List, Optional

import numpy as np

from repro.core.engine import ArtifactStore
from repro.core.horizon import RecedingHorizonPlanner
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.core.uncertainty import ChanceConstrainedPlanner, ResidualModel
from repro.experiments import ext_uncertainty
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0)
# Same mid-route replan state BENCH_pr4.json reports (solve-bound).
MID_REPLAN_STATE = dict(position_m=2000.0, speed_ms=8.0, time_s=170.0)
# Representative MPC cycles along the corridor: early (both signals
# ahead), mid (one signal ahead, the PR 4 state), and final approach
# (past the last signal, the other PR 4 state).
MPC_CYCLE_STATES = (
    dict(position_m=1000.0, speed_ms=8.0, time_s=100.0),
    dict(position_m=2000.0, speed_ms=8.0, time_s=170.0),
    dict(position_m=3800.0, speed_ms=10.0, time_s=310.0),
)
ROUNDS = 5


def _timed(fn, rounds: int = ROUNDS):
    samples = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return result, samples


def _mid_replan(road):
    """Cold vs warm mid-route replan (the PR 4 regression, now gated)."""

    def replan(store):
        planner = QueueAwareDpPlanner(
            road, arrival_rates=RATE, config=CONFIG, store=store
        )
        return planner.replan(**MID_REPLAN_STATE)

    cold_solution, cold = _timed(lambda: replan(None))
    store = ArtifactStore()
    replan(store)  # warm-up build
    warm_solution, warm = _timed(lambda: replan(store))
    assert warm_solution.energy_j == cold_solution.energy_j, "store changed the answer"
    cold_s = statistics.median(cold)
    warm_s = statistics.median(warm)
    return cold_s, warm_s, cold_s / warm_s


def _mpc_cycle(road, cold_replan_s: float):
    """Per-cycle cost of warm receding-horizon replans (p = 0.9)."""
    store = ArtifactStore()
    residuals = ResidualModel([0.0]).with_timing_noise(6.0)
    inner = ChanceConstrainedPlanner(
        road,
        arrival_rates=RATE,
        residuals=residuals,
        chance_level=0.9,
        config=CONFIG,
        store=store,
    )
    mpc = RecedingHorizonPlanner(inner)
    mpc.replan(**MPC_CYCLE_STATES[0])  # warm-up build
    per_state = []
    for state in MPC_CYCLE_STATES:
        _, samples = _timed(lambda s=state: mpc.replan(**s))
        per_state.append(statistics.median(samples))
    cycle_s = statistics.median(per_state)
    return cycle_s, per_state, cycle_s < cold_replan_s


def _bit_identity(road):
    """Faults off, p = 0.5: the stochastic stack is the point planner."""
    store = ArtifactStore()
    point = QueueAwareDpPlanner(road, arrival_rates=RATE, config=CONFIG, store=store)
    residuals = ResidualModel([0.0]).with_timing_noise(6.0)
    chance = ChanceConstrainedPlanner(
        road,
        arrival_rates=RATE,
        residuals=residuals,
        chance_level=0.5,
        config=CONFIG,
        store=store,
    )
    mpc = RecedingHorizonPlanner(chance)
    a = point.plan(max_trip_time_s=320.0)
    b = chance.plan(max_trip_time_s=320.0)
    c = mpc.plan(max_trip_time_s=320.0)
    plan_identical = (
        a.energy_j == b.energy_j == c.energy_j
        and np.array_equal(a.profile.speeds_ms, b.profile.speeds_ms)
        and np.array_equal(a.profile.speeds_ms, c.profile.speeds_ms)
    )
    ra = point.replan(**MID_REPLAN_STATE)
    rb = mpc.replan(**MID_REPLAN_STATE)
    replan_identical = ra.energy_j == rb.energy_j and np.array_equal(
        ra.profile.speeds_ms, rb.profile.speeds_ms
    )
    return plan_identical, replan_identical, chance.chance_margin_s


def _robustness(reduced: bool):
    """The ext-uncertainty sweep and its headline row."""
    if reduced:
        config = ext_uncertainty.UncertaintyConfig(severities=(0.0, 12.0))
    else:
        config = ext_uncertainty.UncertaintyConfig()
    result = ext_uncertainty.run(config)
    worst = max(result.rows, key=lambda r: r.severity_s)
    rows = [
        {
            "severity_s": row.severity_s,
            "chance_margin_s": round(row.chance_margin_s, 3),
            "point_stops": row.point_stops,
            "stoch_stops": row.stoch_stops,
            "energy_ratio": round(row.stoch_energy_mah / row.point_energy_mah, 4),
            "stoch_tiers": row.stoch_tiers,
            "completed": list(row.completed),
        }
        for row in result.rows
    ]
    return result, worst, rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="shrink the SAE fit and severity sweep for CI",
    )
    parser.add_argument("--out", default="BENCH_pr8.json", help="output JSON path")
    args = parser.parse_args(argv)

    road = us25_greenville_segment()

    mid_cold, mid_warm, mid_speedup = _mid_replan(road)
    mpc_cycle_s, mpc_per_state, mpc_beats_cold = _mpc_cycle(road, mid_cold)
    plan_identical, replan_identical, half_margin = _bit_identity(road)
    result, worst, rows = _robustness(args.reduced)

    energy_ratio = worst.stoch_energy_mah / worst.point_energy_mah
    report = {
        "bench": "pr8-uncertainty",
        "reduced": bool(args.reduced),
        "grid": {"v_step_ms": 1.0, "s_step_m": 25.0, "t_bin_s": 2.0},
        "mid_replan": {
            "state": MID_REPLAN_STATE,
            "cold_s": round(mid_cold, 4),
            "warm_s": round(mid_warm, 4),
            "speedup": round(mid_speedup, 2),
        },
        "mpc_cycle": {
            "warm_cycle_s": round(mpc_cycle_s, 4),
            "per_state_s": [round(s, 4) for s in mpc_per_state],
            "beats_cold_rebuild": mpc_beats_cold,
        },
        "bit_identity": {
            "half_level_margin_s": half_margin,
            "plan_identical": plan_identical,
            "replan_identical": replan_identical,
        },
        "robustness": {
            "chance_level": 0.9,
            "drift_seed": 27,
            "residual_std_s": round(result.residual_std_s, 3),
            "rows": rows,
            "worst_severity_s": worst.severity_s,
            "worst_point_stops": worst.point_stops,
            "worst_stoch_stops": worst.stoch_stops,
            "worst_energy_ratio": round(energy_ratio, 4),
        },
        "rounds": {"timing": ROUNDS},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    assert mid_speedup >= 2.0, (
        f"warm mid-route replan only {mid_speedup:.2f}x faster than cold (need >= 2x)"
    )
    assert mpc_beats_cold, (
        f"warm MPC cycle {mpc_cycle_s:.3f} s is no faster than a cold "
        f"rebuild {mid_cold:.3f} s"
    )
    assert half_margin == 0.0, f"p = 0.5 margin is {half_margin}, not exactly 0"
    assert plan_identical and replan_identical, (
        "chance-constrained stack at p = 0.5 diverged from the point planner"
    )
    assert worst.stoch_stops < worst.point_stops, (
        f"at severity {worst.severity_s:g} s the stochastic arm missed "
        f"{worst.stoch_stops} windows vs the point arm's {worst.point_stops} "
        "(need strictly fewer)"
    )
    assert energy_ratio <= 1.10, (
        f"stochastic energy overhead {energy_ratio:.3f}x exceeds the 10% budget"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
