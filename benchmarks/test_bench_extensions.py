"""Benches for the extension experiments and accelerators.

These cover the paper's motivated-but-unevaluated claims (battery wear,
forecast-error robustness) and the orthogonal speedup of [15].
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.dp import DpSolver
from repro.core.refine import CoarseToFineSolver
from repro.experiments import ext_penetration, ext_platoon, ext_sensitivity, ext_wear
from repro.route.us25 import us25_greenville_segment


def test_bench_ext_wear(benchmark):
    config = ext_wear.WearConfig(n_departures=2)
    result = run_once(benchmark, ext_wear.run, config)
    print()
    print(ext_wear.report(result))

    # The proposed profile processes the least charge (fewest speed cycles).
    throughput = {n: r.throughput_ah for n, r in result.reports.items()}
    assert throughput["proposed"] <= throughput["fast"]
    assert throughput["proposed"] <= throughput["baseline_dp"] + 0.05
    benchmark.extra_info["life_per_trip_ppm"] = {
        n: round(r.life_fraction_ppm, 2) for n, r in result.reports.items()
    }


def test_bench_ext_sensitivity(benchmark):
    result = run_once(benchmark, ext_sensitivity.run)
    print()
    print(ext_sensitivity.report(result))

    # Within SAE-level error the true windows must still be hit.
    sae_band = [r for r in result.rows if abs(r[0]) <= 0.10]
    assert min(r[2] for r in sae_band) == 1.0
    # The clear-time shift grows monotonically with the rate error.
    shifts = [r[1] for r in result.rows]
    assert all(b >= a - 1e-9 for a, b in zip(shifts, shifts[1:]))
    benchmark.extra_info["t_star_shift_at_+50pct_s"] = round(result.rows[-1][1], 2)


def test_bench_ext_platoon(benchmark):
    result = run_once(benchmark, ext_platoon.run)
    print()
    print(ext_platoon.report(result))

    assert result.rmse_platoon < result.rmse_constant, (
        "the platoon-aware queue prediction must beat the constant-rate one "
        "at the downstream signal"
    )
    benchmark.extra_info["rmse_constant_veh"] = round(result.rmse_constant, 3)
    benchmark.extra_info["rmse_platoon_veh"] = round(result.rmse_platoon, 3)


def test_bench_ext_penetration(benchmark):
    config = ext_penetration.PenetrationConfig(
        n_evs=6, penetrations=(0.0, 0.5, 1.0), background_vph=200.0
    )
    result = run_once(benchmark, ext_penetration.run, config)
    print()
    print(ext_penetration.report(result))

    fleet = [r[3] for r in result.rows]
    assert fleet[-1] < fleet[0], "fleet energy must fall with full penetration"
    benchmark.extra_info["fleet_energy_mah"] = {
        f"{r[0]:.0%}": round(r[3]) for r in result.rows
    }


def test_bench_coarse_to_fine_speedup(benchmark):
    """The [15]-style accelerator versus the full fine solve."""
    road = us25_greenville_segment()

    def compare():
        full_solver = DpSolver(road)
        full = full_solver.solve(max_trip_time_s=290.0)
        c2f = CoarseToFineSolver(road)
        fast = c2f.solve(max_trip_time_s=290.0)
        stats = c2f.last_stats
        return full, fast, stats

    full, fast, stats = run_once(benchmark, compare)
    quality_gap = (fast.energy_j - full.energy_j) / abs(full.energy_j)
    speedup = full.solve_time_s / stats.total_time_s
    print()
    print(
        f"coarse-to-fine: {stats.total_time_s:.2f} s vs full {full.solve_time_s:.2f} s "
        f"({speedup:.2f}x), quality gap {quality_gap * 100:.2f}%"
    )
    assert quality_gap < 0.05
    assert stats.fine_transitions < full.expanded_transitions
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["quality_gap_pct"] = round(quality_gap * 100, 2)
