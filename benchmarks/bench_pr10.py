"""Standalone PR 10 bench: writes the committed ``BENCH_pr10.json``.

Three gated claims back the vehicle-catalog / environment refactor:

* ``bit_identity`` — at the paper's defaults (Spark EV, nominal
  environment) the refactored stack reproduces the pre-refactor output
  exactly: plan energy, trip time, the speed-profile hash, the Fig. 3
  surface hash, and the corridor digest are all equal whether the
  vehicle/environment are left implicit or spelled explicitly from the
  catalog.
* ``isolation`` — five scenario packs planned over ONE shared artifact
  store: every pack digests apart (zero cross-scenario cache hits
  possible), the cold round builds exactly once per pack, and a warm
  round of freshly-built planners reuses every build (5 hits, 0 new
  misses) while producing bit-identical plans — warm reuse *within* a
  scenario, never *across* scenarios.
* ``divergence`` — the packs are not cosmetic: every non-nominal pack
  plans a strictly different (higher-load) energy than nominal.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr10.py [--reduced] [--out F]

``--reduced`` skips the Fig. 3 surface (the slowest piece) for CI; the
other gates are identical in both modes.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from typing import List, Optional

import numpy as np

from repro.core.engine import ArtifactStore
from repro.core.engine.artifacts import corridor_digest
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second
from repro.vehicle.catalog import get_vehicle
from repro.vehicle.environment import NOMINAL_ENVIRONMENT
from repro.vehicle.scenarios import get_scenario, scenario_ids

CONFIG = PlannerConfig(
    v_step_ms=1.0, s_step_m=50.0, t_bin_s=2.0, horizon_s=500.0, window_margin_s=2.0
)
RATE_VPH = 300.0

#: Pre-refactor goldens, captured on the seed commit with these recipes.
GOLDEN = {
    "plan_energy_j": 1688838.3619312106,
    "plan_trip_s": 318.7016880889743,
    "plan_speeds_sha": "dd3751c80f0dd051f7af75d23c0261f243e8b2e0467ad1e061e6a8546f46decf",
    "fig3_sha": "4df6b529d60eb8dd59ca4e1fd519f1f93380f133a5a3c76c0cbe7da4ac5e866f",
}


def _sha(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _planner(store=None, vehicle=None, environment=None) -> QueueAwareDpPlanner:
    return QueueAwareDpPlanner(
        us25_greenville_segment(),
        arrival_rates=vehicles_per_hour_to_per_second(RATE_VPH),
        vehicle=vehicle,
        config=CONFIG,
        store=store,
        environment=environment,
    )


def _bit_identity(reduced: bool):
    """Implicit defaults vs the explicit catalog spelling vs the goldens."""
    road = us25_greenville_segment()
    spellings = {
        "implicit": dict(vehicle=None, environment=None),
        "catalog": dict(
            vehicle=get_vehicle("spark_ev"), environment=NOMINAL_ENVIRONMENT
        ),
    }
    plans = {}
    for name, kwargs in spellings.items():
        solution = _planner(**kwargs).plan(start_time_s=0.0, max_trip_time_s=320.0)
        plans[name] = {
            "energy_j": solution.energy_j,
            "trip_time_s": solution.trip_time_s,
            "speeds_sha": _sha(solution.profile.speeds_ms),
        }
    digests = {
        corridor_digest(road, get_vehicle("spark_ev"), v_step_ms=1.0, s_step_m=50.0),
        corridor_digest(
            road,
            get_vehicle("spark_ev"),
            environment=NOMINAL_ENVIRONMENT,
            v_step_ms=1.0,
            s_step_m=50.0,
        ),
    }
    result = {
        "plans": plans,
        "spellings_match": plans["implicit"] == plans["catalog"],
        "energy_matches_golden": plans["implicit"]["energy_j"]
        == GOLDEN["plan_energy_j"],
        "trip_matches_golden": plans["implicit"]["trip_time_s"]
        == GOLDEN["plan_trip_s"],
        "profile_matches_golden": plans["implicit"]["speeds_sha"]
        == GOLDEN["plan_speeds_sha"],
        "digest_spellings_collapse": len(digests) == 1,
    }
    if not reduced:
        from repro.experiments.fig3_energy_map import run as fig3_run

        result["fig3_sha"] = _sha(fig3_run().rate_mah_s)
        result["fig3_matches_golden"] = result["fig3_sha"] == GOLDEN["fig3_sha"]
    return result


def _isolation():
    """Five packs, one store: cold builds once per pack, warm reuses all."""
    store = ArtifactStore(capacity=16)
    packs = list(scenario_ids())

    def build_round():
        outcome = {}
        for sid in packs:
            pack = get_scenario(sid)
            planner = _planner(
                store=store, vehicle=pack.vehicle(), environment=pack.environment
            )
            solution = planner.plan(start_time_s=0.0, max_trip_time_s=320.0)
            outcome[sid] = {
                "digest": planner.solver.artifacts.digest,
                "energy_mah": solution.energy_mah,
                "trip_time_s": solution.trip_time_s,
            }
        return outcome

    cold = build_round()
    cold_stats = store.stats()
    warm = build_round()
    warm_stats = store.stats()

    digests = [cold[sid]["digest"] for sid in packs]
    return {
        "packs": packs,
        "cold": cold,
        "digests_pairwise_distinct": len(set(digests)) == len(digests),
        "cold_misses": cold_stats.misses,
        "cold_hits": cold_stats.hits,
        "warm_hits": warm_stats.hits - cold_stats.hits,
        "warm_new_misses": warm_stats.misses - cold_stats.misses,
        "warm_plans_identical": warm == cold,
        "cross_scenario_cache_hits": cold_stats.hits,
    }


def _divergence(isolation):
    nominal = isolation["cold"]["nominal"]["energy_mah"]
    deltas = {
        sid: round(isolation["cold"][sid]["energy_mah"] - nominal, 3)
        for sid in isolation["packs"]
        if sid != "nominal"
    }
    return {
        "nominal_energy_mah": nominal,
        "delta_mah_vs_nominal": deltas,
        "all_packs_cost_more": all(delta > 0.0 for delta in deltas.values()),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true", help="skip the Fig. 3 surface for CI"
    )
    parser.add_argument("--out", default="BENCH_pr10.json", help="output JSON path")
    args = parser.parse_args(argv)

    identity = _bit_identity(args.reduced)
    isolation = _isolation()
    divergence = _divergence(isolation)

    report = {
        "bench": "pr10-vehicle-catalog-environment",
        "reduced": bool(args.reduced),
        "grid": {
            "v_step_ms": CONFIG.v_step_ms,
            "s_step_m": CONFIG.s_step_m,
            "t_bin_s": CONFIG.t_bin_s,
        },
        "rate_vph": RATE_VPH,
        "bit_identity": identity,
        "isolation": isolation,
        "divergence": divergence,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    assert identity["spellings_match"], (
        "explicit catalog spelling diverged from the implicit default"
    )
    assert identity["energy_matches_golden"], "plan energy drifted from the seed"
    assert identity["trip_matches_golden"], "trip time drifted from the seed"
    assert identity["profile_matches_golden"], "speed profile drifted from the seed"
    assert identity["digest_spellings_collapse"], (
        "nominal digest spellings no longer collapse to one cache key"
    )
    if not args.reduced:
        assert identity["fig3_matches_golden"], "Fig. 3 surface drifted from the seed"
    assert isolation["digests_pairwise_distinct"], "two scenario packs collided"
    assert isolation["cross_scenario_cache_hits"] == 0, (
        f"{isolation['cross_scenario_cache_hits']} cache hits crossed a "
        "scenario boundary on the cold round"
    )
    assert isolation["cold_misses"] == len(isolation["packs"]), (
        "cold round did not build exactly once per pack"
    )
    assert isolation["warm_hits"] == len(isolation["packs"]), (
        "warm round failed to reuse every pack's build"
    )
    assert isolation["warm_new_misses"] == 0, "warm round rebuilt an artifact"
    assert isolation["warm_plans_identical"], (
        "warm rebuilt planners served different plans"
    )
    assert divergence["all_packs_cost_more"], (
        "a non-nominal pack failed to shift the planned energy"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
