"""Standalone PR 9 bench: writes the committed ``BENCH_pr9.json``.

Two gated claims back the corridor-sharded serving stack:

* ``bit_identity`` — a single-corridor request stream served through
  :class:`~repro.cloud.router.PlanRouter` (catalog + corridor shard) is
  bit-identical to the PR 8 direct :class:`CloudPlannerService` path:
  same plans (energies and profile arrays), same counters, and the
  serving invariant ``requests == cache_hits + cache_misses + errors``
  holds on the shard exactly as it does on the direct service.
* ``isolation`` — a three-corridor interleaved stream (identical
  departure phases and budgets on every corridor, the worst case for
  key collisions) shows **zero cross-corridor cache hits**: each
  corridor's hit/miss counters and served energies match its own
  single-corridor baseline exactly, every corridor's warm hit rate
  equals the single-corridor warm hit rate, and no request is rejected
  by the guard layer.  Warm multi-corridor throughput through the
  router is reported and floor-gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr9.py [--reduced] [--out F]

``--reduced`` shortens the streams for CI; the gates are identical in
both modes.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import List, Optional

import numpy as np

from repro.cloud.messages import PlanRequest
from repro.cloud.registry import builtin_catalog
from repro.cloud.router import PlanRouter
from repro.core.planner import PlannerConfig

CONFIG = PlannerConfig(
    v_step_ms=1.0, s_step_m=50.0, t_bin_s=2.0, horizon_s=500.0, window_margin_s=2.0
)
#: Departure phases every corridor is probed at (exact repeats across
#: rounds, so the phase cache warms deterministically).
PHASES = (30.0, 44.0, 58.0)


def _requests(corridor_id: str, rounds: int) -> List[PlanRequest]:
    return [
        PlanRequest(
            vehicle_id=f"{corridor_id}-r{r}-p{p}",
            depart_s=depart,
            corridor_id=corridor_id,
        )
        for r in range(rounds)
        for p, depart in enumerate(PHASES)
    ]


def _fingerprint(response) -> tuple:
    return (
        response.energy_mah,
        response.trip_time_s,
        tuple(np.asarray(response.profile.positions_m).tolist()),
        tuple(np.asarray(response.profile.speeds_ms).tolist()),
    )


def _bit_identity(rounds: int):
    """Routed single-corridor serving vs the PR 8 direct service."""
    direct = builtin_catalog(config=CONFIG).service("us25")
    router = PlanRouter(builtin_catalog(config=CONFIG))
    stream = _requests("us25", rounds)
    mismatches = 0
    for req in stream:
        a = direct.request(req)
        b = router.request(req)
        if _fingerprint(a) != _fingerprint(b) or a.cache_hit != b.cache_hit:
            mismatches += 1
    direct_stats = direct.stats_snapshot()
    shard_stats = router.per_corridor_services()["us25"].stats_snapshot()
    counters_match = all(
        getattr(direct_stats, name) == getattr(shard_stats, name)
        for name in ("requests", "cache_hits", "cache_misses", "errors")
    )
    invariant = (
        shard_stats.requests
        == shard_stats.cache_hits + shard_stats.cache_misses + shard_stats.errors
    )
    return {
        "stream_len": len(stream),
        "mismatches": mismatches,
        "counters_match": counters_match,
        "shard_invariant": invariant,
        "requests": shard_stats.requests,
        "cache_hits": shard_stats.cache_hits,
        "cache_misses": shard_stats.cache_misses,
        "errors": shard_stats.errors,
    }


def _isolation(rounds: int):
    """Interleaved three-corridor stream vs per-corridor baselines."""
    corridor_ids = builtin_catalog(config=CONFIG).ids()

    # Single-corridor baselines: each corridor serves its own stream on
    # a fresh stack.
    baseline = {}
    for cid in corridor_ids:
        service = builtin_catalog(config=CONFIG).service(cid)
        energies = [service.request(req).energy_mah for req in _requests(cid, rounds)]
        baseline[cid] = (service.stats_snapshot(), energies)

    # Routed: the same streams interleaved round-robin through one
    # router — identical phases and budgets on every corridor, so any
    # cross-corridor key collision would surface as a wrong hit here.
    router = PlanRouter(builtin_catalog(config=CONFIG))
    streams = {cid: _requests(cid, rounds) for cid in corridor_ids}
    interleaved = [
        streams[cid][k]
        for k in range(rounds * len(PHASES))
        for cid in corridor_ids
    ]
    routed_energy: dict = {cid: [] for cid in corridor_ids}
    for req in interleaved:
        routed_energy[req.corridor_id].append(router.request(req).energy_mah)

    per_corridor = {}
    cross_corridor_hits = 0
    guard_rejections = 0
    warm_rates_match = True
    for cid in corridor_ids:
        base_stats, base_energy = baseline[cid]
        shard_stats = router.per_corridor_services()[cid].stats_snapshot()
        cross_corridor_hits += shard_stats.cache_hits - base_stats.cache_hits
        guard_rejections += shard_stats.errors
        if shard_stats.hit_rate != base_stats.hit_rate:
            warm_rates_match = False
        per_corridor[cid] = {
            "requests": shard_stats.requests,
            "cache_hits": shard_stats.cache_hits,
            "cache_misses": shard_stats.cache_misses,
            "errors": shard_stats.errors,
            "hit_rate": round(shard_stats.hit_rate, 4),
            "baseline_hit_rate": round(base_stats.hit_rate, 4),
            "energies_match_baseline": routed_energy[cid] == base_energy,
            "invariant": (
                shard_stats.requests
                == shard_stats.cache_hits
                + shard_stats.cache_misses
                + shard_stats.errors
            ),
        }

    # Warm throughput: the whole interleaved stream again, now fully
    # cached — the steady-state serving cost of the sharded front.
    t0 = time.perf_counter()
    for req in interleaved:
        router.request(req)
    warm_s = time.perf_counter() - t0
    throughput = len(interleaved) / warm_s if warm_s > 0 else float("inf")

    stats = router.router_stats()
    return {
        "corridors": list(corridor_ids),
        "interleaved_requests": len(interleaved),
        "per_corridor": per_corridor,
        "cross_corridor_cache_hits": cross_corridor_hits,
        "guard_rejections": guard_rejections,
        "warm_hit_rates_match_baseline": warm_rates_match,
        "router_routed": stats.routed,
        "router_rejected": stats.rejected,
        "per_shard_routed": list(stats.per_shard),
        "warm_throughput_rps": round(throughput, 1),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced", action="store_true", help="shorten the streams for CI"
    )
    parser.add_argument("--out", default="BENCH_pr9.json", help="output JSON path")
    args = parser.parse_args(argv)

    rounds = 4 if args.reduced else 8
    identity = _bit_identity(rounds)
    isolation = _isolation(rounds)

    report = {
        "bench": "pr9-corridor-sharding",
        "reduced": bool(args.reduced),
        "grid": {
            "v_step_ms": CONFIG.v_step_ms,
            "s_step_m": CONFIG.s_step_m,
            "t_bin_s": CONFIG.t_bin_s,
        },
        "phases_s": list(PHASES),
        "rounds": rounds,
        "bit_identity": identity,
        "isolation": isolation,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))

    assert identity["mismatches"] == 0, (
        f"{identity['mismatches']} routed responses diverged from the "
        "direct service (need bit-identity)"
    )
    assert identity["counters_match"], "routed shard counters diverged from direct"
    assert identity["shard_invariant"], (
        "shard broke requests == hits + misses + errors"
    )
    assert isolation["cross_corridor_cache_hits"] == 0, (
        f"{isolation['cross_corridor_cache_hits']} cache hits crossed a "
        "corridor boundary"
    )
    assert isolation["guard_rejections"] == 0, (
        f"{isolation['guard_rejections']} requests rejected during the "
        "interleaved fleet"
    )
    assert isolation["warm_hit_rates_match_baseline"], (
        "per-corridor warm hit rates diverged from single-corridor baselines"
    )
    for cid, row in isolation["per_corridor"].items():
        assert row["energies_match_baseline"], (
            f"corridor {cid} served different plans when interleaved"
        )
        assert row["invariant"], f"corridor {cid} broke the serving invariant"
    assert isolation["router_rejected"] == 0
    assert isolation["warm_throughput_rps"] >= 20.0, (
        f"warm routed throughput {isolation['warm_throughput_rps']} req/s "
        "under the 20 req/s floor"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
