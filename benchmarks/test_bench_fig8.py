"""Bench FIG8: cumulative travel-time curves."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig8_time


def test_bench_fig8_travel_time(benchmark):
    result = run_once(benchmark, fig8_time.run)
    print()
    print(fig8_time.report(result))

    # Fig. 8 shape: mild is the slowest profile; the distance curves are
    # monotone; the proposed profile does not stop at signals (no flat
    # regions beyond the stop sign's dwell).
    assert result.trip_times["mild"] >= result.trip_times["proposed"]
    assert result.trip_times["mild"] >= result.trip_times["fast"]
    for name, (elapsed, distance) in result.curves.items():
        assert np.all(np.diff(distance) >= -1e-9), f"{name} distance must be monotone"
    assert result.stopped_time_s["proposed"] <= result.stopped_time_s["mild"] + 5.0
    benchmark.extra_info["trip_times_s"] = {
        k: round(v, 1) for k, v in result.trip_times.items()
    }
