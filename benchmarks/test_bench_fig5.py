"""Bench FIG5: regenerate the leaving-rate and queue-length dynamics of Fig. 5."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_queue


def test_bench_fig5_traffic_dynamics(benchmark):
    result = run_once(benchmark, fig5_queue.run)
    print()
    print(fig5_queue.report(result))

    # Fig. 5a shape: the VM model reaches V_out = V_in later than [9].
    assert result.clear_time_baseline_s < result.clear_time_proposed_s
    # Fig. 5b shape: the proposed QL tracks the observed queue at least as
    # well as the instant-discharge baseline.
    assert result.rmse_proposed <= result.rmse_baseline
    benchmark.extra_info["t_star_proposed_s"] = round(result.clear_time_proposed_s, 2)
    benchmark.extra_info["t_star_baseline_s"] = round(result.clear_time_baseline_s, 2)
    benchmark.extra_info["rmse_proposed_veh"] = round(result.rmse_proposed, 3)
    benchmark.extra_info["rmse_baseline_veh"] = round(result.rmse_baseline, 3)
