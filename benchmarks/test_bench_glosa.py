"""Bench: DP planners versus the analytic GLOSA advisors ([17]-style)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core.glosa import GlosaAdvisor
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE_VPH = 300.0


def test_bench_glosa_comparison(benchmark):
    road = us25_greenville_segment()
    rate = vehicles_per_hour_to_per_second(RATE_VPH)

    def compare():
        green = GlosaAdvisor(road)
        queue_glosa = GlosaAdvisor(road, arrival_rates=rate)
        dp = QueueAwareDpPlanner(
            road, arrival_rates=rate, config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
        )
        rows = []
        for depart in (0.0, 20.0, 40.0):
            g = green.plan(depart)
            q = queue_glosa.plan(depart)
            budget = q.profile.total_time_s + 1.0
            d = dp.plan(depart, max_trip_time_s=budget)
            rows.append(
                (
                    depart,
                    g.profile.energy().net_mah,
                    q.profile.energy().net_mah,
                    d.energy_mah,
                )
            )
        return rows

    rows = run_once(benchmark, compare)
    print()
    print("DP vs analytic GLOSA (planned energies, equal budgets)")
    print(
        render_table(
            ["depart (s)", "green GLOSA (mAh)", "T_q GLOSA (mAh)", "queue-aware DP (mAh)"],
            rows,
        )
    )
    # The DP should never lose to the greedy advisor at the same budget.
    for _, g, q, d in rows:
        assert d <= q * 1.01
    mean_gap = float(np.mean([(q - d) / q for _, _, q, d in rows])) * 100.0
    benchmark.extra_info["dp_vs_glosa_saving_pct"] = round(mean_gap, 2)
