"""Bench FIG3: regenerate the consumption-rate surface of Fig. 3."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig3_energy_map


def test_bench_fig3_energy_surface(benchmark):
    result = run_once(benchmark, fig3_energy_map.run)
    print()
    print(fig3_energy_map.report(result))

    # Shape assertions the paper's figure shows.
    cruise = result.rate_mah_s[np.argmin(np.abs(result.accels_ms2)), :]
    assert np.all(np.diff(cruise) > 0), "cruise consumption must grow with speed"
    braking = result.rate_mah_s[result.accels_ms2 <= -1.0][:, result.speeds_kmh > 5]
    assert np.all(braking < 0), "hard braking must regenerate"
    benchmark.extra_info["max_rate_mah_s"] = float(result.rate_mah_s.max())
    benchmark.extra_info["min_rate_mah_s"] = float(result.rate_mah_s.min())
