"""Engine-layer benches: artifact reuse vs rebuild on the replan path.

The PR 4 split moves the corridor precomputation out of the solver; these
benches measure exactly the quantity that split buys — the wall time of
"stand up a planner and answer a replan", which is what a vehicle pays
when its planning context is constructed per request:

* cold: no store — every round rebuilds the corridor artifacts,
* warm: a shared store — every round after the first is served the
  prebuilt artifacts and pays only the solve.

The gated pair uses a *final-approach* replan (400 m before the corridor
end, past the last signal): the remaining-corridor solve is small, so
the cold path's full-corridor artifact rebuild dominates and the store
win is sharpest.  ``benchmarks/bench_pr4.py`` runs the same workload
standalone and writes the committed ``BENCH_pr4.json`` numbers,
including a solve-dominated mid-route replan for comparison.
"""

import numpy as np

from repro.cloud.messages import PlanRequest
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0)
REPLAN_STATE = dict(position_m=3800.0, speed_ms=10.0, time_s=310.0)


def _replan(road, store):
    planner = QueueAwareDpPlanner(
        road, arrival_rates=RATE, config=CONFIG, store=store
    )
    return planner.replan(**REPLAN_STATE)


def test_bench_replan_cold(benchmark):
    """Planner construction + final-approach replan, rebuilding artifacts."""
    road = us25_greenville_segment()
    solution = benchmark.pedantic(lambda: _replan(road, None), rounds=3, iterations=1)
    assert solution.trip_time_s > 0


def test_bench_replan_warm_store(benchmark):
    """Planner construction + final-approach replan against a warm store."""
    road = us25_greenville_segment()
    store = ArtifactStore()
    _replan(road, store)  # populate outside the timed region

    solution = benchmark.pedantic(lambda: _replan(road, store), rounds=3, iterations=1)
    assert solution.trip_time_s > 0
    stats = store.stats()
    assert stats.misses == 1  # only the warm-up built
    benchmark.extra_info["store_hits"] = stats.hits


def test_bench_fleet_8_vehicles_shared_store(benchmark):
    """Eight plan requests through the cloud service over one store."""
    road = us25_greenville_segment()
    departures = np.linspace(0.0, 180.0, 8)

    def serve_fleet():
        store = ArtifactStore()
        planner = QueueAwareDpPlanner(
            road, arrival_rates=RATE, config=CONFIG, store=store
        )
        service = CloudPlannerService(planner)
        responses = [
            service.request(
                PlanRequest(vehicle_id=f"ev{i}", depart_s=float(d), max_trip_time_s=290.0)
            )
            for i, d in enumerate(departures)
        ]
        return service, responses

    service, responses = benchmark.pedantic(serve_fleet, rounds=3, iterations=1)
    assert len(responses) == 8
    benchmark.extra_info["plan_cache_hit_rate"] = service.stats.hit_rate
