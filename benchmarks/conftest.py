"""Benchmark-harness configuration.

Every figure of the paper has one benchmark that regenerates its rows and
records the headline quantities in ``extra_info`` (visible with
``pytest benchmarks/ --benchmark-only --benchmark-verbose`` or in the JSON
export).  Benchmarks run each experiment once — the interesting output is
the reproduced figure, not sub-millisecond timing jitter.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
