"""Standalone PR 5 bench: writes the committed ``BENCH_pr5.json``.

Measures the serving stack's headline behavior on the US-25 corridor at
the fast grid (v_step 1.0 m/s, s_step 25 m, t_bin 2 s): one Poisson
fleet served three ways —

* ``serial_*`` — the plain in-thread loop (``workers=0``);
* ``dispatched_*`` — the same stream through the coalescing dispatcher
  with 4 workers;
* ``wire_*`` — dispatcher serving with every request/response crossing
  the wire codec.

The acceptance gate is **identity, not speed**: all three modes must
produce bit-identical fleet energy/time aggregates and identical
service cache economics (same solves, same hits).  Warm-cache serving
is cheap and GIL-bound, so a wall-clock speedup is *reported* for
transparency but not gated — what the dispatcher buys on one process is
coalescing (N same-phase requests, 1 solve), which the coalesced/leader
counters prove.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr5.py [output.json]
"""

from __future__ import annotations

import json
import statistics
import sys
import time

from repro.cloud.fleet import FleetStudy
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0)
FLEET_RATE_VPH = 120.0
DURATION_S = 1800.0
SEED = 5
WORKERS = 4
ROUNDS = 3


def _run_fleet(road, workers: int, wire_roundtrip: bool = False):
    store = ArtifactStore()
    planner = QueueAwareDpPlanner(road, arrival_rates=RATE, config=CONFIG, store=store)
    service = CloudPlannerService(planner)
    study = FleetStudy(
        service,
        road,
        fleet_rate_vph=FLEET_RATE_VPH,
        seed=SEED,
        workers=workers,
        wire_roundtrip=wire_roundtrip,
    )
    return study.run(duration_s=DURATION_S)


def _timed(fn, rounds: int = ROUNDS):
    samples = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return result, statistics.median(samples)


def main(destination: str = "BENCH_pr5.json") -> int:
    road = us25_greenville_segment()

    serial, serial_s = _timed(lambda: _run_fleet(road, workers=0))
    dispatched, dispatched_s = _timed(lambda: _run_fleet(road, workers=WORKERS))
    wired, wired_s = _timed(
        lambda: _run_fleet(road, workers=WORKERS, wire_roundtrip=True)
    )

    # The gate: three serving modes, one set of numbers.
    for name, other in (("dispatched", dispatched), ("wire", wired)):
        assert other.planned_energy_mah == serial.planned_energy_mah, (
            f"{name} fleet energy diverged from serial"
        )
        assert other.mean_trip_time_s == serial.mean_trip_time_s, (
            f"{name} fleet trip time diverged from serial"
        )
        assert other.n_vehicles == serial.n_vehicles
        assert other.service.cache_misses == serial.service.cache_misses, (
            f"{name} ran a different number of solves than serial"
        )
    assert dispatched.dispatch is not None
    assert dispatched.dispatch.coalesced > 0, "dispatcher never coalesced"
    assert dispatched.dispatch.in_flight == 0

    report = {
        "bench": "pr5-serving-stack",
        "grid": {"v_step_ms": 1.0, "s_step_m": 25.0, "t_bin_s": 2.0},
        "fleet": {
            "rate_vph": FLEET_RATE_VPH,
            "duration_s": DURATION_S,
            "seed": SEED,
            "vehicles": serial.n_vehicles,
        },
        "serial_wall_s": round(serial_s, 4),
        "dispatched_wall_s": round(dispatched_s, 4),
        "wire_wall_s": round(wired_s, 4),
        "dispatched_vs_serial": round(serial_s / dispatched_s, 2),
        "workers": WORKERS,
        "identical_to_serial": True,
        "planned_energy_mah": round(serial.planned_energy_mah, 3),
        "savings_pct": round(serial.savings_pct, 2),
        "service": {
            "requests": serial.service.requests,
            "cache_hits": serial.service.cache_hits,
            "cache_misses": serial.service.cache_misses,
            "hit_rate": round(serial.service.hit_rate, 3),
        },
        "plan_cache": {
            "hits": serial.cache.hits,
            "misses": serial.cache.misses,
            "evictions": serial.cache.evictions,
            "size": serial.cache.size,
            "capacity": serial.cache.capacity,
        },
        "dispatcher": {
            "submitted": dispatched.dispatch.submitted,
            "leaders": dispatched.dispatch.leaders,
            "coalesced": dispatched.dispatch.coalesced,
            "errors": dispatched.dispatch.errors,
        },
        "rounds": ROUNDS,
    }
    with open(destination, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(*sys.argv[1:2]))
