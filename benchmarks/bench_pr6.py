"""Standalone PR 6 bench: writes the committed ``BENCH_pr6.json``.

PR 5's bench exposed a performance bug: the 4-worker threaded dispatcher
was *slower* than serial serving (``dispatched_vs_serial: 0.94``) because
the numpy stage kernels hold the GIL for most of a solve.  This bench
measures the two fixes on the same Poisson fleet (US-25, fast grid):

* ``serial_*`` — the plain in-thread request loop (the baseline);
* ``threaded_*`` — the PR 5 thread-pool dispatcher, 4 workers;
* ``batched_*`` — the dispatcher's micro-batching mode: same-corridor
  requests collected for a short window and solved as **one vectorized
  DP program** (``DpSolver.solve_batch``);
* ``process_*`` — the key-sharded process backend: worker processes
  mapping the corridor artifacts from shared memory.

Unlike ``bench_pr5.py``, the timer brackets *serving only* — requests
are built up front and the human-reference synthesis of the full fleet
study is out of scope — so the ratios measure the dispatcher, not the
simulator.  Two gates:

* **identity** — every mode must return bit-identical responses to
  serial serving (profile arrays, energies, trip times, and the
  cache-hit flag per vehicle);
* **throughput** — the best parallel mode must beat serial by the
  ``--gate`` factor (2.0 for the committed run, 1.0 for the reduced CI
  smoke: the bug was being *slower* than serial).

Usage::

    PYTHONPATH=src python benchmarks/bench_pr6.py [--out BENCH_pr6.json]
    PYTHONPATH=src python benchmarks/bench_pr6.py --reduced --gate 1.0
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import List, Optional

import numpy as np

from repro.cloud.dispatcher import PlanDispatcher
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

RATE = vehicles_per_hour_to_per_second(300.0)
CONFIG = PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0)
FLEET_RATE_VPH = 120.0
DURATION_S = 1800.0
START_S = 300.0
SEED = 5
WORKERS = 4
BATCH_WINDOW_S = 0.05


def _build_service() -> CloudPlannerService:
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road, arrival_rates=RATE, config=CONFIG, store=ArtifactStore()
    )
    return CloudPlannerService(planner)


def _requests(duration_s: float) -> List[PlanRequest]:
    """The same Poisson departures a ``FleetStudy(seed=SEED)`` would draw."""
    rng = np.random.default_rng(SEED)
    n = rng.poisson(FLEET_RATE_VPH * duration_s / 3600.0)
    departures = np.sort(rng.uniform(START_S, START_S + duration_s, size=n))
    return [
        PlanRequest(vehicle_id=f"ev{i}", depart_s=float(d))
        for i, d in enumerate(departures)
    ]


def _serve(
    requests: List[PlanRequest],
    workers: int,
    backend: str = "thread",
    batch_window_s: Optional[float] = None,
):
    """Serve one cold-cache pass; returns ``(outcomes, wall_s, dispatch)``."""
    service = _build_service()
    if workers == 0:
        t0 = time.perf_counter()
        outcomes = []
        for req in requests:
            try:
                outcomes.append(service.request(req))
            except Exception as exc:  # noqa: BLE001 - outcome, not a crash
                outcomes.append(exc)
        return outcomes, time.perf_counter() - t0, None
    dispatcher = PlanDispatcher(
        service, workers=workers, backend=backend, batch_window_s=batch_window_s
    )
    try:
        t0 = time.perf_counter()
        outcomes = dispatcher.submit_many(requests, return_exceptions=True)
        wall = time.perf_counter() - t0
    finally:
        dispatcher.shutdown()
    return outcomes, wall, dispatcher.stats()


def _timed(rounds: int, **kwargs):
    """Median serving wall over ``rounds`` cold passes (same outcomes)."""
    samples = []
    outcomes = dispatch = None
    for _ in range(rounds):
        outcomes, wall, dispatch = _serve(**kwargs)
        samples.append(wall)
    return outcomes, statistics.median(samples), dispatch


def _assert_identical(name: str, outcomes, reference) -> None:
    assert len(outcomes) == len(reference), f"{name}: fleet size diverged"
    for got, want in zip(outcomes, reference):
        if isinstance(want, Exception):
            assert isinstance(got, Exception), f"{name}: {want} became a plan"
            assert str(got) == str(want), f"{name}: error text diverged"
            continue
        assert isinstance(got, PlanResponse), f"{name}: {got!r} for {want.vehicle_id}"
        assert got.vehicle_id == want.vehicle_id
        assert got.energy_mah == want.energy_mah, f"{name}: energy diverged"
        assert got.trip_time_s == want.trip_time_s, f"{name}: trip time diverged"
        assert got.cache_hit == want.cache_hit, f"{name}: cache economics diverged"
        assert np.array_equal(got.profile.positions_m, want.profile.positions_m)
        assert np.array_equal(got.profile.speeds_ms, want.profile.speeds_ms)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="PR 6 serving-throughput bench (batched + process backends)."
    )
    parser.add_argument("--out", default="BENCH_pr6.json", help="report destination")
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="CI smoke: shorter fleet, one round, serial vs batched only",
    )
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--batch-window",
        type=float,
        default=BATCH_WINDOW_S,
        help="micro-batching collection window (s) for the batched mode",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail unless best-mode throughput >= gate x serial "
        "(default: 2.0 full, 1.0 reduced)",
    )
    args = parser.parse_args(argv)
    duration_s = 900.0 if args.reduced else DURATION_S
    rounds = 1 if args.reduced else args.rounds
    gate = args.gate if args.gate is not None else (1.0 if args.reduced else 2.0)

    requests = _requests(duration_s)
    print(f"fleet: {len(requests)} departures over {duration_s:.0f} s")

    serial, serial_s, _ = _timed(rounds, requests=requests, workers=0)
    batched, batched_s, batched_stats = _timed(
        rounds, requests=requests, workers=args.workers,
        batch_window_s=args.batch_window,
    )
    _assert_identical("batched", batched, serial)
    assert batched_stats.batches > 0, "micro-batching never formed a batch"
    assert batched_stats.batched == len(requests), (
        "not every request went through the batch path"
    )

    modes = {"batched": batched_s}
    report = {
        "bench": "pr6-parallel-serving",
        "grid": {"v_step_ms": 1.0, "s_step_m": 25.0, "t_bin_s": 2.0},
        "fleet": {
            "rate_vph": FLEET_RATE_VPH,
            "duration_s": duration_s,
            "seed": SEED,
            "vehicles": len(requests),
        },
        "workers": args.workers,
        "batch_window_s": args.batch_window,
        "rounds": rounds,
        "reduced": bool(args.reduced),
        "serial_wall_s": round(serial_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "batched_vs_serial": round(serial_s / batched_s, 2),
        "batcher": {
            "batches": batched_stats.batches,
            "batched": batched_stats.batched,
            "leaders": batched_stats.leaders,
            "coalesced": batched_stats.coalesced,
        },
        "identical_to_serial": True,
    }

    if not args.reduced:
        threaded, threaded_s, _ = _timed(
            rounds, requests=requests, workers=args.workers
        )
        _assert_identical("threaded", threaded, serial)
        process, process_s, _ = _timed(
            rounds, requests=requests, workers=args.workers, backend="process"
        )
        _assert_identical("process", process, serial)
        modes["threaded"] = threaded_s
        modes["process"] = process_s
        report["threaded_wall_s"] = round(threaded_s, 4)
        report["threaded_vs_serial"] = round(serial_s / threaded_s, 2)
        report["process_wall_s"] = round(process_s, 4)
        report["process_vs_serial"] = round(serial_s / process_s, 2)

    best = min(modes, key=modes.get)
    speedup = serial_s / modes[best]
    report["best_mode"] = best
    report["dispatched_vs_serial"] = round(speedup, 2)
    report["gate"] = gate

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    assert speedup >= gate, (
        f"best parallel mode ({best}) is only {speedup:.2f}x serial, "
        f"gate is {gate:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
