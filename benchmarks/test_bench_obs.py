"""Observability overhead: disabled-mode instrumentation must be free.

The ``repro.obs`` touch points inside ``DpSolver.solve`` (spans around
setup / per-segment expand / per-segment select / backtrack, plus their
field adds) all reduce to a single ``enabled`` check when the active
registry is disabled.  This bench bounds that cost: it measures the
per-touch-point price of a disabled span in isolation, multiplies by the
number of touch points one solve executes, and asserts the total is
under 2 % of the solve's wall time.  It also reports the enabled-mode
cost for reference.
"""

import time

from repro import obs
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second

#: Acceptance bound on disabled-mode instrumentation overhead.
MAX_DISABLED_OVERHEAD = 0.02


def _build_planner():
    return QueueAwareDpPlanner(
        us25_greenville_segment(),
        arrival_rates=vehicles_per_hour_to_per_second(300.0),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0, t_bin_s=2.0),
    )


def _median_solve_s(planner, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        planner.plan(start_time_s=0.0, max_trip_time_s=290.0)
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _disabled_touch_point_s(iterations: int = 50_000) -> float:
    """Median cost of one disabled span (open + enter + add + exit)."""
    registry = obs.MetricsRegistry(enabled=False)
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(iterations):
            with registry.span("bench") as span:
                span.add(value=1)
        samples.append((time.perf_counter() - t0) / iterations)
    return sorted(samples)[len(samples) // 2]


def test_bench_disabled_obs_overhead_on_dp_solve(benchmark):
    """Disabled-mode obs overhead on ``DpSolver.solve`` stays under 2 %."""
    planner = _build_planner()
    solve_s = benchmark.pedantic(
        lambda: _median_solve_s(planner, rounds=3), rounds=1, iterations=1
    )

    # Touch points per solve: the dp.solve wrapper + setup + backtrack
    # spans, plus an expand and a select span per route segment.
    n_segments = planner.solver.positions.size - 1
    touch_points = 3 + 2 * n_segments
    touch_s = _disabled_touch_point_s()
    overhead = touch_points * touch_s / solve_s

    benchmark.extra_info["solve_s"] = solve_s
    benchmark.extra_info["touch_points"] = touch_points
    benchmark.extra_info["per_touch_ns"] = touch_s * 1e9
    benchmark.extra_info["disabled_overhead_frac"] = overhead
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-mode obs overhead {overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} ({touch_points} touch points x "
        f"{touch_s * 1e9:.0f} ns vs {solve_s * 1e3:.1f} ms solve)"
    )


def test_bench_enabled_obs_records_dp_phases(benchmark):
    """Enabled-mode solve records every DP phase span (cost reported)."""
    planner = _build_planner()
    baseline_s = _median_solve_s(planner, rounds=3)

    registry = obs.MetricsRegistry(enabled=True)

    def instrumented():
        registry.reset()
        with obs.use_registry(registry):
            return _median_solve_s(planner, rounds=3)

    enabled_s = benchmark.pedantic(instrumented, rounds=1, iterations=1)
    for path in ("dp.solve", "dp.solve.expand", "dp.solve.select",
                 "dp.solve.backtrack", "dp.solve.setup"):
        assert registry.span_stats(path) is not None, f"missing span {path}"
    benchmark.extra_info["enabled_overhead_frac"] = enabled_s / baseline_s - 1.0
