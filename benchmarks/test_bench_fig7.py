"""Bench FIG7: total energy across driving profiles (the headline result)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_energy


def test_bench_fig7_energy_comparison(benchmark):
    config = fig7_energy.Fig7Config(n_departures=4, depart_step_s=15.0)
    result = run_once(benchmark, fig7_energy.run, config)
    print()
    print(fig7_energy.report(result))

    energy = result.mean_energy_mah
    # Paper ordering: proposed <= baseline DP < mild < fast.
    assert energy["proposed"] <= energy["baseline_dp"] + 1e-9
    assert energy["proposed"] < energy["mild"]
    assert energy["proposed"] < energy["fast"]
    # Factors: ~17.5% vs fast and ~8.4% vs mild in the paper; accept the
    # same direction within a generous band on our synthetic substrate.
    assert 8.0 <= result.savings_vs["fast"] <= 30.0
    assert 2.0 <= result.savings_vs["mild"] <= 15.0
    for name, value in result.savings_vs.items():
        benchmark.extra_info[f"savings_vs_{name}_pct"] = round(value, 2)
