"""Ablation benches for the design choices called out in DESIGN.md.

Each bench varies one knob of the proposed system and reports how the
plan's energy, timing fidelity or queue behaviour responds.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.tables import render_table
from repro.core.planner import BaselineDpPlanner, PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.sim.car_following import IdmModel, KraussModel
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second

RATE_VPH = 300.0
RATE = vehicles_per_hour_to_per_second(RATE_VPH)
CAP_S = 290.0


def _plan_with(config: PlannerConfig):
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(road, arrival_rates=RATE, config=config)
    return planner.plan(start_time_s=0.0, max_trip_time_s=CAP_S)


def test_bench_ablation_time_bin(benchmark):
    """Time-bin width: quality and runtime of the label-merging resolution."""

    def sweep():
        rows = []
        for t_bin in (0.5, 1.0, 2.0, 4.0):
            solution = _plan_with(PlannerConfig(t_bin_s=t_bin))
            rows.append(
                (
                    t_bin,
                    solution.energy_mah,
                    solution.trip_time_s,
                    solution.solve_time_s,
                    str(solution.all_windows_hit),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: DP time-bin width")
    print(
        render_table(
            ["t_bin (s)", "energy (mAh)", "trip (s)", "solve (s)", "windows hit"], rows
        )
    )
    energies = [r[1] for r in rows]
    assert all(r[4] == "True" for r in rows), "all resolutions must stay feasible"
    # Coarser bins may cost a little energy but never an order of magnitude.
    assert max(energies) < 1.25 * min(energies)


def test_bench_ablation_velocity_grid(benchmark):
    """Velocity-grid resolution versus plan energy.

    Distance steps are paired with velocity steps so decelerations remain
    representable: a segment must allow at least one grid-step speed drop,
    i.e. ``2 |a_min| ds >= (v_max^2 - (v_max - v_step)^2)``.
    """

    def sweep():
        rows = []
        for v_step, s_step in ((0.25, 10.0), (0.5, 10.0), (1.0, 15.0), (2.0, 30.0)):
            solution = _plan_with(PlannerConfig(v_step_ms=v_step, s_step_m=s_step))
            rows.append((v_step, s_step, solution.energy_mah, solution.solve_time_s))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: velocity-grid resolution")
    print(render_table(["v_step (m/s)", "s_step (m)", "energy (mAh)", "solve (s)"], rows))
    energies = [r[2] for r in rows]
    assert max(energies) < 1.25 * min(energies), "plan quality must degrade gracefully"


def test_bench_ablation_penalty_vs_hard(benchmark):
    """Eq. 12's penalty formulation versus hard window pruning."""

    def sweep():
        rows = []
        for mode in ("hard", "penalty"):
            solution = _plan_with(PlannerConfig(constraint_mode=mode))
            rows.append(
                (mode, solution.energy_mah, solution.trip_time_s, str(solution.all_windows_hit))
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: hard windows vs additive penalty (Eq. 12)")
    print(render_table(["mode", "energy (mAh)", "trip (s)", "windows hit"], rows))
    # When the windows are attainable, both formulations find in-window
    # plans of equal quality.
    assert rows[0][3] == "True" and rows[1][3] == "True"
    assert rows[0][1] == benchmark.extra_info.setdefault("hard_energy", rows[0][1])
    assert abs(rows[0][1] - rows[1][1]) < 0.05 * rows[0][1]


def test_bench_ablation_queue_model_fidelity(benchmark):
    """End-to-end value of queue awareness: T_q windows vs green windows.

    Both planners get the same tight trip budget; their derived simulator
    trajectories show who gets caught behind discharging queues.
    """

    def sweep():
        road = us25_greenville_segment()
        proposed = QueueAwareDpPlanner(
            road, arrival_rates=RATE, config=PlannerConfig(window_margin_s=2.0)
        )
        baseline = BaselineDpPlanner(road, config=PlannerConfig(window_margin_s=0.0))
        rows = []
        for name, planner in (("green-window", baseline), ("queue-aware", proposed)):
            slow_events = 0
            energy = []
            for depart in (300.0, 320.0, 340.0):
                cap = max(
                    proposed.min_trip_time(depart) + 1.0,
                    baseline.min_trip_time(depart) + 1.0,
                )
                solution = planner.plan(start_time_s=depart, max_trip_time_s=cap)
                scenario = Us25Scenario(
                    road=road, arrival_rate_vph=RATE_VPH, warmup_s=depart, seed=11
                )
                result = scenario.drive(solution.profile, depart_s=depart)
                trace = result.ev_trace
                energy.append(trace.energy().net_mah)
                for pos in road.signal_positions():
                    near = (trace.positions_m > pos - 150.0) & (trace.positions_m <= pos)
                    if near.any() and trace.speeds_ms[near].min() < 5.0:
                        slow_events += 1
            rows.append((name, float(np.mean(energy)), slow_events))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: queue-model fidelity (derived trajectories, tight budget)")
    print(render_table(["windows", "mean energy (mAh)", "deep slowdowns at signals"], rows))
    base_row, prop_row = rows
    assert prop_row[2] <= base_row[2], "queue awareness must not add signal slowdowns"


def test_bench_ablation_car_following(benchmark):
    """Krauss vs IDM backgrounds: queue build-up at the first signal."""

    def sweep():
        road = us25_greenville_segment()
        rows = []
        for name, model in (("krauss", KraussModel()), ("idm", IdmModel())):
            scenario = Us25Scenario(
                road=road, arrival_rate_vph=400.0, seed=5, car_following=model
            )
            result = scenario.observe_queues(900.0)
            _, counts = result.queue_counts[1820.0]
            rows.append((name, int(counts.max()), float(counts.mean())))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: car-following model (background traffic)")
    print(render_table(["model", "max queue (veh)", "mean queue (veh)"], rows))
    for name, max_queue, _ in rows:
        assert max_queue >= 1, f"{name}: queues must form at 400 vph"
