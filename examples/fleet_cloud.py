#!/usr/bin/env python3
"""Vehicular-cloud deployment: a fleet of EVs served by one planner.

The paper's introduction adopts the vehicular-cloud framework of its
references [6, 7]: vehicles upload (departure, route) and the cloud
returns optimal profiles.  Because fixed-cycle signals make the planning
problem periodic, the service caches plans by departure *phase* — fleet
cost grows with the number of distinct phases, not with fleet size.

Run:  python examples/fleet_cloud.py
"""

from repro import PlannerConfig, QueueAwareDpPlanner, us25_greenville_segment
from repro.cloud import CloudPlannerService, FleetStudy, PlanRequest
from repro.units import vehicles_per_hour_to_per_second


def main() -> None:
    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(300.0),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
    )
    service = CloudPlannerService(planner, phase_quantum_s=2.0)
    print(f"phase cache: enabled={service.cache_enabled}, period={service._period_s:.0f} s")

    # A few individual requests show the cache mechanics.
    for vid, depart in (("ev-a", 310.0), ("ev-b", 370.0), ("ev-c", 312.0)):
        response = service.request(
            PlanRequest(vehicle_id=vid, depart_s=depart, max_trip_time_s=300.0)
        )
        print(
            f"{vid} departing {depart:5.0f} s: {response.energy_mah:7.1f} mAh, "
            f"{'cache hit' if response.cache_hit else f'computed in {response.compute_time_s:.2f} s'}"
        )

    # Fleet-scale: an hour of EV departures.
    study = FleetStudy(service, road, fleet_rate_vph=60.0, mild_fraction=0.5, seed=7)
    result = study.run(duration_s=3600.0, human_reference_sample=2)
    print(
        f"\nfleet of {result.n_vehicles} EVs over one hour:"
        f"\n  planned energy : {result.planned_energy_mah:10.0f} mAh"
        f"\n  human reference: {result.human_energy_mah:10.0f} mAh"
        f"\n  fleet saving   : {result.savings_pct:10.1f} %"
        f"\n  cache hit rate : {result.service.hit_rate:10.2f}"
        f"\n  total compute  : {result.service.total_compute_s:10.1f} s server-side"
    )


if __name__ == "__main__":
    main()
