#!/usr/bin/env python3
"""Online replanning: recover window targeting after traffic interference.

One plan per trip (the paper's deployment) can be knocked off schedule by
a slow platoon or a longer-than-predicted queue.  This example drives the
same departure twice through heavy traffic — open-loop and closed-loop
(replanning every 15 s from the EV's actual state) — and compares the
derived trips.

Run:  python examples/closed_loop_replanning.py
"""

from repro import PlannerConfig, QueueAwareDpPlanner, us25_greenville_segment
from repro.sim import ClosedLoopDriver, Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


def main() -> None:
    road = us25_greenville_segment()
    traffic_vph = 500.0
    depart = 300.0
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(traffic_vph),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
    )
    cap = max(280.0, planner.min_trip_time(depart) + 1.0)
    scenario = Us25Scenario(
        road=road, arrival_rate_vph=traffic_vph, warmup_s=depart, seed=13
    )

    solution = planner.plan(depart, max_trip_time_s=cap)
    open_result = scenario.drive(solution.profile, depart_s=depart)
    open_trace = open_result.ev_trace
    print(
        f"open-loop : {open_trace.duration_s:6.1f} s, "
        f"{open_trace.energy().net_mah:7.1f} mAh, "
        f"{open_result.ev_signal_stops(road)} signal stop(s)"
    )

    driver = ClosedLoopDriver(scenario, planner, replan_interval_s=15.0)
    closed = driver.run(depart_s=depart, max_trip_time_s=cap)
    trace = closed.ev_trace
    print(
        f"closed-loop: {trace.duration_s:6.1f} s, "
        f"{trace.energy().net_mah:7.1f} mAh, "
        f"{closed.sim.ev_signal_stops(road)} signal stop(s), "
        f"{closed.replans_applied}/{closed.replans_attempted} replans applied"
    )


if __name__ == "__main__":
    main()
