#!/usr/bin/env python3
"""Queue-aware green-wave planning over a five-signal urban corridor.

The paper evaluates a two-signal highway section; this example shows the
system generalizing to a longer arterial with staggered offsets and
per-intersection traffic levels — the GLOSA-style setting its related
work (Seredynski et al.) studies.  The corridor and its demand profile
ship with the library (:mod:`repro.route.arterial`).

Run:  python examples/corridor_glosa.py
"""

from repro import BaselineDpPlanner, PlannerConfig, QueueAwareDpPlanner
from repro.route.arterial import arterial_arrival_rates, urban_arterial


def main() -> None:
    road = urban_arterial()
    rates = arterial_arrival_rates()
    config = PlannerConfig(horizon_s=900.0, window_margin_s=2.0)
    proposed = QueueAwareDpPlanner(road, arrival_rates=rates, config=config)
    baseline = BaselineDpPlanner(road, config=PlannerConfig(horizon_s=900.0))

    # Budget: the fastest trip either planner can thread, plus slack.
    cap = max(proposed.min_trip_time(0.0), baseline.min_trip_time(0.0)) + 10.0

    print(f"corridor: {road.length_m / 1000:.1f} km, {len(road.signals)} signals, cap {cap:.0f} s")
    for name, planner in (("baseline DP", baseline), ("queue-aware", proposed)):
        solution = planner.plan(start_time_s=0.0, max_trip_time_s=cap)
        windows = "all inside" if solution.all_windows_hit else "SOME MISSED"
        print(
            f"{name:>12}: {solution.energy_mah:7.1f} mAh, "
            f"{solution.trip_time_s:5.1f} s, arrival windows {windows}"
        )
        for pos in sorted(solution.signal_arrivals):
            note = ""
            if name == "queue-aware":
                t_star = proposed.queue_model(pos).clear_time(rates[pos])
                note = f" (queue clears {t_star:.1f} s into each cycle)"
            print(
                f"              signal {pos:6.0f} m: "
                f"arrive {solution.signal_arrivals[pos]:6.1f} s{note}"
            )


if __name__ == "__main__":
    main()
