#!/usr/bin/env python3
"""End-to-end pipeline: SAE volume forecast -> queue windows -> DP plan.

This mirrors the paper's deployed loop (Section II): historical detector
volumes train the SAE; at departure time the model forecasts the current
arrival rate; the QL model converts it into queue-free windows; the DP
plans against them.  Compares plans driven by the SAE forecast versus the
true (synthetic ground-truth) rate to show forecast error barely moves
the plan.

Run:  python examples/live_prediction.py
"""

import numpy as np

from repro import QueueAwareDpPlanner, us25_greenville_segment
from repro.traffic import (
    SAEPredictor,
    VolumeGenerator,
    build_dataset,
    train_test_split_by_hour,
)
from repro.units import SECONDS_PER_HOUR, vehicles_per_hour_to_per_second


def main() -> None:
    # Three months of history; the EV departs during the final week.
    series = VolumeGenerator(seed=7).generate(n_days=91)
    train, test = train_test_split_by_hour(series, test_hours=7 * 24, window=12)
    sae = SAEPredictor(seed=1).fit(train.features, train.targets)

    # Departure: Wednesday 17:00 of the held-out week.
    depart_hour = int(test.target_hours[0]) + 2 * 24 + 17
    sample = np.flatnonzero(test.target_hours == depart_hour)[0]
    predicted_vph = float(test.denormalize(sae.predict(test.features[sample]))[0])
    true_vph = float(test.denormalize(np.asarray([test.targets[sample]]))[0])
    print(f"departure hour {depart_hour} (Wed 17:00): "
          f"SAE forecast {predicted_vph:.0f} veh/h, truth {true_vph:.0f} veh/h")

    road = us25_greenville_segment()
    depart_s = 0.0
    for label, vph in (("SAE forecast", predicted_vph), ("ground truth", true_vph)):
        planner = QueueAwareDpPlanner(
            road, arrival_rates=vehicles_per_hour_to_per_second(vph)
        )
        solution = planner.plan(start_time_s=depart_s, max_trip_time_s=280.0)
        t_star = planner.queue_model(1820.0).clear_time(
            vehicles_per_hour_to_per_second(vph)
        )
        print(
            f"{label:>13}: plan {solution.energy_mah:.1f} mAh / "
            f"{solution.trip_time_s:.1f} s; queue clears {t_star:.2f} s into the cycle; "
            f"windows {'hit' if solution.all_windows_hit else 'missed'}"
        )


if __name__ == "__main__":
    main()
