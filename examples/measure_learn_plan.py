#!/usr/bin/env python3
"""The full measure → predict → plan loop, entirely in simulation.

The paper's deployment measures arrival rates with roadside loop
detectors, predicts them, and plans against the prediction.  This example
closes that loop inside the library: a detector embedded in the
microsimulator measures the corridor's real (simulated) flow; the
measured rate drives the QL model's queue-free windows; the planned trip
is then verified in the same simulated traffic.

Run:  python examples/measure_learn_plan.py
"""

import numpy as np

from repro import PlannerConfig, QueueAwareDpPlanner, us25_greenville_segment
from repro.sim import CorridorSimulator, DetectorBank, LoopDetector, Us25Scenario
from repro.traffic.arrival import PoissonArrivalProcess
from repro.traffic.volume import VolumeSeries
from repro.units import vehicles_per_hour_to_per_second


def main() -> None:
    road = us25_greenville_segment()
    true_demand_vph = 340.0

    # --- Measure: 30 minutes of loop-detector counts upstream of signal 1.
    series = VolumeSeries(np.full(1, true_demand_vph))
    arrivals = PoissonArrivalProcess(series, seed=11).sample(0.0, 1800.0)
    sim = CorridorSimulator(road, arrivals_s=arrivals, seed=12)
    bank = DetectorBank([LoopDetector(position_m=1500.0, window_s=300.0)])
    while sim.time_s < 1800.0:
        sim.step()
        bank.sample(sim)
    measured_vph = bank.detectors[0].mean_flow_vph(6)
    print(f"true demand    : {true_demand_vph:.0f} veh/h")
    print(f"measured flow  : {measured_vph:.0f} veh/h (loop detector @ 1500 m)")

    # --- Plan against the measured rate.
    planner = QueueAwareDpPlanner(
        road,
        arrival_rates=vehicles_per_hour_to_per_second(measured_vph),
        config=PlannerConfig(v_step_ms=1.0, s_step_m=25.0),
    )
    solution = planner.plan(start_time_s=0.0, max_trip_time_s=290.0)
    print(
        f"plan           : {solution.energy_mah:.1f} mAh / {solution.trip_time_s:.1f} s, "
        f"windows {'hit' if solution.all_windows_hit else 'missed'}"
    )

    # --- Verify in the same (true-demand) traffic.
    scenario = Us25Scenario(road=road, arrival_rate_vph=true_demand_vph, warmup_s=0.0, seed=13)
    result = scenario.drive(solution.profile, depart_s=0.0)
    trace = result.ev_trace
    print(
        f"derived in sim : {trace.energy().net_mah:.1f} mAh / {trace.duration_s:.1f} s, "
        f"{result.ev_signal_stops(road)} signal stop(s)"
    )


if __name__ == "__main__":
    main()
