#!/usr/bin/env python3
"""Infrastructure-side counterpart: coordinate signal offsets for EVs.

The in-vehicle optimizer can only use the queue-free green that the
corridor's signal offsets leave available.  This example measures the
US-25 corridor's queue-aware green-wave bandwidth under its default
offsets and searches for offsets that maximize it, then shows the effect
on the planner's fastest feasible trip.

Run:  python examples/offset_coordination.py
"""

from repro import PlannerConfig, QueueAwareDpPlanner, us25_greenville_segment
from repro.signal.coordination import (
    _with_offsets,
    evaluate_progression,
    optimize_offsets,
)
from repro.units import kmh_to_ms, vehicles_per_hour_to_per_second


def main() -> None:
    rate = vehicles_per_hour_to_per_second(300.0)
    cruise = kmh_to_ms(65.0)
    road = us25_greenville_segment()

    current = evaluate_progression(road, cruise, rate)
    print(f"current offsets {current.offsets_s}:")
    print(f"  usable queue-free green per signal: "
          f"{tuple(round(u, 1) for u in current.usable_green_s)} s")
    print(f"  green-wave bandwidth: {current.bandwidth_s:.1f} s per {60:.0f} s cycle")

    best_offsets, best = optimize_offsets(road, cruise, rate, offset_step_s=2.0)
    print(f"\noptimized offsets {best_offsets}:")
    print(f"  bandwidth: {best.bandwidth_s:.1f} s per cycle")

    config = PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
    for label, offsets in (("default", current.offsets_s), ("optimized", best_offsets)):
        candidate = _with_offsets(road, offsets)
        planner = QueueAwareDpPlanner(candidate, arrival_rates=rate, config=config)
        fastest = min(planner.min_trip_time(d) for d in (0.0, 15.0, 30.0, 45.0))
        print(f"  {label:>9} offsets: best-phase fastest trip {fastest:.1f} s")


if __name__ == "__main__":
    main()
