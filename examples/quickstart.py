#!/usr/bin/env python3
"""Quickstart: plan one queue-aware EV trip over the US-25 corridor.

Builds the paper's road section, predicts the queue-free windows at both
signals for a measured arrival rate, runs the DP optimizer, and verifies
the plan in the microsimulator.

Run:  python examples/quickstart.py
"""

from repro import (
    BaselineDpPlanner,
    QueueAwareDpPlanner,
    check_profile,
    us25_greenville_segment,
)
from repro.sim import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


def main() -> None:
    road = us25_greenville_segment()
    arrival_rate = vehicles_per_hour_to_per_second(153.0)  # the paper's 1 pm count

    planner = QueueAwareDpPlanner(road, arrival_rates=arrival_rate)
    solution = planner.plan(start_time_s=0.0, max_trip_time_s=280.0)

    print(f"route: {road.name} ({road.length_m / 1000:.1f} km)")
    print(f"planned trip time : {solution.trip_time_s:.1f} s")
    print(f"planned energy    : {solution.energy_mah:.1f} mAh")
    for position, arrival in sorted(solution.signal_arrivals.items()):
        hit = "inside T_q" if solution.windows_hit[position] else "OUTSIDE T_q"
        print(f"signal @ {position:.0f} m: arrival {arrival:.1f} s ({hit})")

    audit = check_profile(solution.profile, road)
    print(f"constraint audit  : {'OK' if audit.ok else audit}")

    # Compare with the green-window baseline [2].
    baseline = BaselineDpPlanner(road)
    base = baseline.plan(start_time_s=0.0, max_trip_time_s=280.0)
    print(f"baseline DP energy: {base.energy_mah:.1f} mAh")

    # Verify in the microsimulator (the paper's SUMO step).
    scenario = Us25Scenario(road=road, arrival_rate_vph=153.0, warmup_s=0.0, seed=1)
    result = scenario.drive(solution.profile, depart_s=0.0)
    trace = result.ev_trace
    print(
        f"derived in sim    : {trace.duration_s:.1f} s, "
        f"{trace.energy().net_mah:.1f} mAh, "
        f"{result.ev_signal_stops(road)} stop(s) at signals"
    )


if __name__ == "__main__":
    main()
