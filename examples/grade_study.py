#!/usr/bin/env python3
"""Road-grade extension: the paper's declared future work, implemented.

Section V defers "the effect of road gradient on the proposed system" to
future work.  The energy model (Eq. 1) already carries the grade terms,
and the DP evaluates per-segment grades, so this example quantifies the
effect: the same US-25 trip planned over flat, rolling and hilly grade
profiles, with and without queue awareness.

Run:  python examples/grade_study.py
"""

import numpy as np

from repro import QueueAwareDpPlanner, us25_greenville_segment
from repro.route.road import GradeProfile
from repro.units import vehicles_per_hour_to_per_second


def rolling_profile(length_m: float, amplitude_rad: float, period_m: float) -> GradeProfile:
    """A sinusoidal grade profile (net elevation change zero)."""
    positions = np.linspace(0.0, length_m, 85)
    grades = amplitude_rad * np.sin(2.0 * np.pi * positions / period_m)
    return GradeProfile(positions, grades)


def climb_profile(length_m: float, grade_rad: float) -> GradeProfile:
    """A steady climb over the whole section."""
    return GradeProfile([0.0, length_m], [grade_rad, grade_rad])


def main() -> None:
    rate = vehicles_per_hour_to_per_second(153.0)
    cases = {
        "flat": None,
        "rolling +-2%": rolling_profile(4200.0, np.arctan(0.02), 1400.0),
        "rolling +-4%": rolling_profile(4200.0, np.arctan(0.04), 1400.0),
        "steady +1.5% climb": climb_profile(4200.0, np.arctan(0.015)),
    }
    print(f"{'grade profile':>20} | {'energy (mAh)':>12} | {'trip time (s)':>13} | windows")
    for name, grade in cases.items():
        road = us25_greenville_segment(grade=grade)
        planner = QueueAwareDpPlanner(road, arrival_rates=rate)
        solution = planner.plan(start_time_s=0.0, max_trip_time_s=290.0)
        windows = "hit" if solution.all_windows_hit else "missed"
        print(
            f"{name:>20} | {solution.energy_mah:12.1f} | "
            f"{solution.trip_time_s:13.1f} | {windows}"
        )
    print(
        "\nExpected shape: rolling terrain costs little extra (regeneration"
        "\nrecovers downhill energy), a steady climb costs the potential-energy"
        "\ndelta m*g*h on top of the flat-road consumption."
    )


if __name__ == "__main__":
    main()
