"""ASCII line plots for terminal-only environments.

The benchmark harness runs where no plotting stack exists; these helpers
render velocity profiles and queue curves as fixed-width character plots
so the figure reproductions remain *visually* checkable from a shell.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: Glyph used per series, cycled in insertion order.
_SERIES_GLYPHS = "*o+x#@"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Args:
        series: Name -> (x values, y values).  All series share the axes.
        width: Plot area width in characters.
        height: Plot area height in rows.
        x_label: Caption under the x axis.
        y_label: Caption on the y axis line.

    Returns:
        A multi-line string: the plot, an axis rule and a legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for glyph, (name, (x, y)) in zip(
        _SERIES_GLYPHS * (1 + len(series) // len(_SERIES_GLYPHS)), series.items()
    ):
        xv = np.asarray(x, dtype=float)
        yv = np.asarray(y, dtype=float)
        cols = ((xv - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int)
        rows = ((yv - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph
        legend.append(f"{glyph} = {name}")

    lines = []
    if y_label:
        lines.append(f"{y_label[:10]:>10}")
    lines.append(f"{y_hi:10.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.1f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    footer = f"{x_lo:<12.1f}{x_label:^{max(width - 24, 0)}}{x_hi:>12.1f}"
    lines.append(footer)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def plot_speed_profiles(
    traces: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 14,
    max_points: int = 140,
) -> str:
    """Speed-vs-distance chart for one or more driving profiles.

    Args:
        traces: Name -> (positions in metres, speeds in m/s).
        width: Chart width.
        height: Chart height.
        max_points: Downsampling cap per series (keeps plots readable).
    """
    thinned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, (positions, speeds) in traces.items():
        pos = np.asarray(positions, dtype=float)
        spd = np.asarray(speeds, dtype=float) * 3.6  # km/h for readability
        if pos.size > max_points:
            idx = np.linspace(0, pos.size - 1, max_points).astype(int)
            pos, spd = pos[idx], spd[idx]
        thinned[name] = (pos, spd)
    return ascii_plot(
        thinned, width=width, height=height, x_label="position (m)", y_label="km/h"
    )
