"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's figures plot; this
module keeps that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule.

    Floats are shown with two decimals; everything else via ``str``.
    """
    materialized: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.2f}")
            else:
                cells.append(str(value))
        materialized.append(cells)
    widths = [len(h) for h in headers]
    for cells in materialized:
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(cells) for cells in materialized)
    return "\n".join(lines)
