"""Resampling statistics for experiment summaries.

The paper reports point estimates; over a departure sweep the honest
summary carries uncertainty.  These helpers provide seeded bootstrap
confidence intervals for means and for paired relative savings, used by
the Fig. 7 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval.

    Attributes:
        estimate: The statistic on the full sample.
        lower: Lower confidence bound.
        upper: Upper confidence bound.
        confidence: The interval's nominal coverage (e.g. 0.9).
    """

    estimate: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.estimate:.1f} [{self.lower:.1f}, {self.upper:.1f}]"


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.9,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile-bootstrap CI for the mean of a sample.

    Raises:
        ValueError: On empty input or nonsensical confidence levels.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return Interval(
        estimate=float(data.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_paired_savings(
    candidate: Sequence[float],
    reference: Sequence[float],
    confidence: float = 0.9,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """CI for the paired percentage saving ``100 * (1 - cand/ref)``.

    Pairs are resampled together (both series come from the same
    departures), which is what makes the comparison honest when departure
    phase drives most of the variance.
    """
    cand = np.asarray(candidate, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if cand.shape != ref.shape or cand.size == 0:
        raise ValueError("need equal-length, non-empty paired samples")
    if np.any(ref <= 0):
        raise ValueError("reference values must be positive")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, cand.size, size=(n_resamples, cand.size))
    savings = 100.0 * (1.0 - cand[idx].sum(axis=1) / ref[idx].sum(axis=1))
    alpha = (1.0 - confidence) / 2.0
    return Interval(
        estimate=float(100.0 * (1.0 - cand.sum() / ref.sum())),
        lower=float(np.quantile(savings, alpha)),
        upper=float(np.quantile(savings, 1.0 - alpha)),
        confidence=confidence,
    )
