"""Evaluation metrics and report-table rendering."""

from repro.analysis.metrics import (
    mean_relative_error,
    per_day_prediction_errors,
    root_mean_squared_error,
    savings_percent,
)
from repro.analysis.tables import render_table
from repro.analysis.stats import Interval, bootstrap_mean, bootstrap_paired_savings

__all__ = [
    "Interval",
    "bootstrap_mean",
    "bootstrap_paired_savings",
    "mean_relative_error",
    "per_day_prediction_errors",
    "render_table",
    "root_mean_squared_error",
    "savings_percent",
]
