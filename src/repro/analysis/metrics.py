"""Evaluation metrics used throughout the paper's Section III.

MRE and RMSE follow the paper's Fig. 4b definitions for traffic-volume
prediction; :func:`savings_percent` renders the headline energy-saving
comparisons of Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.traffic.volume import HOURS_PER_DAY


def mean_relative_error(
    predicted: Sequence[float], actual: Sequence[float], floor: float = 1.0
) -> float:
    """Mean relative error ``mean(|pred - real| / real)`` as a fraction.

    Samples whose actual value falls below ``floor`` are excluded — the
    relative error of a near-zero overnight volume is noise, and the
    paper's per-day MREs clearly exclude such hours (all below 10 %).
    """
    pred = np.asarray(predicted, dtype=float)
    real = np.asarray(actual, dtype=float)
    if pred.shape != real.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {real.shape}")
    mask = real >= floor
    if not mask.any():
        raise ValueError("no samples above the relative-error floor")
    return float(np.mean(np.abs(pred[mask] - real[mask]) / real[mask]))


def root_mean_squared_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Root mean squared error in the inputs' units."""
    pred = np.asarray(predicted, dtype=float)
    real = np.asarray(actual, dtype=float)
    if pred.shape != real.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {real.shape}")
    return float(np.sqrt(np.mean(np.square(pred - real))))


def per_day_prediction_errors(
    predicted: Sequence[float],
    actual: Sequence[float],
    target_hours: Sequence[int],
    floor: float = 20.0,
) -> List[Tuple[str, float, float]]:
    """Per-day (label, MRE, RMSE) rows — the content of Fig. 4b.

    Args:
        predicted: Predicted volumes (vehicles/hour).
        actual: True volumes, aligned.
        target_hours: Absolute hour index of each sample (0 = a Monday
            midnight), used to group by day.
        floor: Relative-error exclusion floor (vehicles/hour).
    """
    pred = np.asarray(predicted, dtype=float)
    real = np.asarray(actual, dtype=float)
    hours = np.asarray(target_hours, dtype=int)
    if not (pred.shape == real.shape == hours.shape):
        raise ValueError("inputs must be aligned")
    day_names = ["Mon.", "Tue.", "Wed.", "Thu.", "Fri.", "Sat.", "Sun."]
    rows: List[Tuple[str, float, float]] = []
    days = hours // HOURS_PER_DAY
    for day in np.unique(days):
        sel = days == day
        label = day_names[int(day) % 7]
        rows.append(
            (
                label,
                mean_relative_error(pred[sel], real[sel], floor=floor),
                root_mean_squared_error(pred[sel], real[sel]),
            )
        )
    return rows


def savings_percent(candidate: float, reference: float) -> float:
    """Energy saving of ``candidate`` versus ``reference`` in percent.

    Positive means the candidate consumes less.
    """
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return 100.0 * (1.0 - candidate / reference)
