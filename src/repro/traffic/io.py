"""CSV persistence for hourly traffic-volume series.

The format mirrors public DOT hourly-count exports (the paper's SCDOT
source): one row per hour with the absolute hour index and the volume.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.volume import VolumeSeries

_HEADER = ["hour", "volume_vph"]


def save_volume_csv(series: VolumeSeries, path: Union[str, Path]) -> None:
    """Write a series to CSV (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for hour, volume in zip(series.hours, series.volumes_vph):
            writer.writerow([int(hour), f"{volume:.3f}"])


def load_volume_csv(path: Union[str, Path]) -> VolumeSeries:
    """Read a series written by :func:`save_volume_csv`.

    Raises:
        ConfigurationError: On a malformed header, gaps in the hour index
            or an empty file.
    """
    source = Path(path)
    with source.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ConfigurationError(f"unexpected volume header {header!r} in {source}")
        rows = [(int(r[0]), float(r[1])) for r in reader]
    if not rows:
        raise ConfigurationError(f"volume file {source} is empty")
    hours = np.asarray([r[0] for r in rows])
    if np.any(np.diff(hours) != 1):
        raise ConfigurationError(f"volume file {source} has gaps in its hour index")
    volumes = np.asarray([r[1] for r in rows])
    return VolumeSeries(volumes, start_hour=int(hours[0]))
