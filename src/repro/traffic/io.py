"""CSV persistence for hourly traffic-volume series.

The format mirrors public DOT hourly-count exports (the paper's SCDOT
source): one row per hour with the absolute hour index and the volume.
Loading validates the rows against the volume contract (consecutive hour
index, finite non-negative volumes) and reports malformed input with
file/row context instead of a bare ``ValueError`` from an ``int()`` call.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.errors import InputValidationError
from repro.guard.contracts import RepairReport, validate_volume_rows
from repro.traffic.volume import VolumeSeries

_HEADER = ["hour", "volume_vph"]


def save_volume_csv(series: VolumeSeries, path: Union[str, Path]) -> None:
    """Write a series to CSV (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for hour, volume in zip(series.hours, series.volumes_vph):
            writer.writerow([int(hour), f"{volume:.3f}"])


def _read_rows(path: Union[str, Path]):
    source = str(path)
    try:
        handle = Path(path).open()
    except OSError as exc:
        raise InputValidationError(f"cannot read file: {exc}", source=source) from exc
    with handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise InputValidationError(
                f"unexpected volume header {header!r} (want {_HEADER})",
                source=source,
                field="header",
            )
        rows = []
        for i, raw in enumerate(reader):
            if len(raw) != 2:
                raise InputValidationError(
                    f"expected 2 columns, got {len(raw)}", source=source, row=i
                )
            try:
                rows.append((int(raw[0]), float(raw[1])))
            except ValueError as exc:
                raise InputValidationError(
                    f"non-numeric row {raw!r}", source=source, row=i
                ) from exc
    return rows, source


def load_volume_csv(path: Union[str, Path], repair: bool = False) -> VolumeSeries:
    """Read a series written by :func:`save_volume_csv`.

    Args:
        path: The CSV file.
        repair: Clamp salvageable defects (negative or missing volumes)
            instead of rejecting; hour-index gaps are never repaired.

    Raises:
        InputValidationError: On a missing file, malformed header,
            non-numeric cell, hour-index gap or any other volume-contract
            violation — the error carries the file and the offending row.
    """
    rows, source = _read_rows(path)
    rows, _report = validate_volume_rows(rows, source=source, repair=repair)
    volumes = np.asarray([r[1] for r in rows])
    return VolumeSeries(volumes, start_hour=int(rows[0][0]))


def load_volume_csv_repaired(
    path: Union[str, Path],
) -> Tuple[VolumeSeries, RepairReport]:
    """Like :func:`load_volume_csv` with repairs on, returning the report."""
    rows, source = _read_rows(path)
    rows, report = validate_volume_rows(rows, source=source, repair=True)
    volumes = np.asarray([r[1] for r in rows])
    return VolumeSeries(volumes, start_hour=int(rows[0][0])), report
