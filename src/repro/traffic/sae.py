"""Stacked-autoencoder (SAE) traffic-volume predictor, in pure numpy.

Reimplements the model class the paper adopts from [Huang et al. 2014]:

1. **Greedy layer-wise pretraining** — each hidden layer is trained as a
   sigmoid autoencoder reconstructing its input (mean-squared error),
   using the previous layer's codes as data.
2. **Supervised fine-tuning** — a linear regression head is stacked on the
   deepest code and the whole network is trained end-to-end on next-hour
   volume targets.

Optimization is mini-batch Adam; everything is deterministic under the
constructor seed.  The model is intentionally small (the paper's detector
feed is one station) and trains in seconds on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import CheckpointError, ConfigurationError, PredictionError

#: Checkpoint arrays that carry the calibration state (fitted
#: normalization bounds and held-out residuals); ``load`` with
#: ``require_calibration=True`` demands all of them.
CALIBRATION_KEYS = ("norm_min", "norm_max", "residuals_vph")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass
class _Adam:
    """Minimal Adam optimizer state for a list of parameter arrays."""

    lr: float = 1e-2
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8

    def init(self, params: Sequence[np.ndarray]) -> None:
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        self._t += 1
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * np.square(g)
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SAEPredictor:
    """Stacked sigmoid autoencoders with a linear regression head.

    Args:
        hidden_sizes: Width of each stacked autoencoder layer.
        pretrain_epochs: Epochs of unsupervised reconstruction per layer.
        finetune_epochs: Epochs of end-to-end supervised training.
        batch_size: Mini-batch size.
        learning_rate: Adam step size (shared by both phases).
        l2: Weight decay applied during fine-tuning.
        relative_loss: Weight squared errors by ``1 / (target + 0.05)^2``
            during fine-tuning, optimizing relative rather than absolute
            error — the paper evaluates with MRE, which this targets.
        seed: RNG seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32, 16),
        pretrain_epochs: int = 30,
        finetune_epochs: int = 300,
        batch_size: int = 64,
        learning_rate: float = 3e-3,
        l2: float = 1e-5,
        relative_loss: bool = True,
        seed: int = 0,
    ) -> None:
        if not hidden_sizes or any(h <= 0 for h in hidden_sizes):
            raise ConfigurationError(f"hidden sizes must be positive, got {hidden_sizes}")
        if pretrain_epochs < 0 or finetune_epochs <= 0:
            raise ConfigurationError("epoch counts must be sensible")
        if batch_size <= 0 or learning_rate <= 0 or l2 < 0:
            raise ConfigurationError("batch size / learning rate / l2 invalid")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.pretrain_epochs = pretrain_epochs
        self.finetune_epochs = finetune_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.relative_loss = relative_loss
        self.seed = seed
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._w_out: Optional[np.ndarray] = None
        self._b_out: Optional[np.ndarray] = None
        self.training_loss_: List[float] = []
        self.norm_min_: Optional[float] = None
        self.norm_max_: Optional[float] = None
        self.residuals_vph_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SAEPredictor":
        """Pretrain layer-wise, then fine-tune end-to-end.

        Args:
            features: ``(n, d)`` normalized feature matrix.
            targets: ``(n,)`` normalized regression targets.
        """
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float).reshape(-1)
        if x.ndim != 2 or y.shape[0] != x.shape[0]:
            raise ConfigurationError(
                f"features {x.shape} and targets {y.shape} are inconsistent"
            )
        rng = np.random.default_rng(self.seed)
        registry = obs.get_registry()
        with registry.span("sae.fit", samples=int(x.shape[0])):
            self._weights, self._biases = [], []
            layer_input = x
            for width in self.hidden_sizes:
                w, b = self._pretrain_layer(layer_input, width, rng)
                self._weights.append(w)
                self._biases.append(b)
                layer_input = _sigmoid(layer_input @ w + b)
            self._w_out = rng.normal(0.0, 0.1, size=(self.hidden_sizes[-1], 1))
            self._b_out = np.zeros(1)
            self._finetune(x, y, rng)
        return self

    def _pretrain_layer(
        self, data: np.ndarray, width: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Train one sigmoid autoencoder; return its encoder parameters."""
        d = data.shape[1]
        scale = 1.0 / np.sqrt(d)
        w_enc = rng.normal(0.0, scale, size=(d, width))
        b_enc = np.zeros(width)
        w_dec = rng.normal(0.0, scale, size=(width, d))
        b_dec = np.zeros(d)
        params = [w_enc, b_enc, w_dec, b_dec]
        adam = _Adam(lr=self.learning_rate)
        adam.init(params)
        n = data.shape[0]
        registry = obs.get_registry()
        with registry.span("pretrain_layer", width=int(width)) as layer_span:
            recon_mse = 0.0
            for _ in range(self.pretrain_epochs):
                order = rng.permutation(n)
                recon_sse = 0.0
                for lo in range(0, n, self.batch_size):
                    batch = data[order[lo: lo + self.batch_size]]
                    h = _sigmoid(batch @ w_enc + b_enc)
                    recon = h @ w_dec + b_dec
                    err = recon - batch
                    m = batch.shape[0]
                    if registry.enabled:
                        recon_sse += float(np.sum(np.square(err)))
                    g_wdec = h.T @ err / m
                    g_bdec = err.mean(axis=0)
                    dh = (err @ w_dec.T) * h * (1 - h)
                    g_wenc = batch.T @ dh / m
                    g_benc = dh.mean(axis=0)
                    adam.step(params, [g_wenc, g_benc, g_wdec, g_bdec])
                if registry.enabled and n:
                    recon_mse = recon_sse / (n * d)
                    registry.observe("sae.pretrain.recon_mse", recon_mse)
            layer_span.add(epochs=self.pretrain_epochs, final_recon_mse=recon_mse)
        return w_enc, b_enc

    def _finetune(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> None:
        """Supervised end-to-end training of encoder stack + linear head."""
        params = []
        for w, b in zip(self._weights, self._biases):
            params.extend([w, b])
        params.extend([self._w_out, self._b_out])
        adam = _Adam(lr=self.learning_rate)
        adam.init(params)
        n = x.shape[0]
        self.training_loss_ = []
        registry = obs.get_registry()
        for _ in range(self.finetune_epochs):
            with registry.span("finetune_epoch") as epoch_span:
                order = rng.permutation(n)
                epoch_loss = 0.0
                for lo in range(0, n, self.batch_size):
                    batch = x[order[lo: lo + self.batch_size]]
                    target = y[order[lo: lo + self.batch_size]]
                    acts = [batch]
                    for w, b in zip(self._weights, self._biases):
                        acts.append(_sigmoid(acts[-1] @ w + b))
                    pred = (acts[-1] @ self._w_out).ravel() + self._b_out[0]
                    err = pred - target
                    if self.relative_loss:
                        err = err / np.square(target + 0.05)
                    m = batch.shape[0]
                    epoch_loss += float(np.sum(np.square(pred - target)))

                    grads: List[np.ndarray] = []
                    d_out = err[:, None] / m
                    g_wout = acts[-1].T @ d_out + self.l2 * self._w_out
                    g_bout = np.asarray([d_out.sum()])
                    delta = d_out @ self._w_out.T * acts[-1] * (1 - acts[-1])
                    layer_grads = []
                    for li in range(len(self._weights) - 1, -1, -1):
                        g_w = acts[li].T @ delta + self.l2 * self._weights[li]
                        g_b = delta.sum(axis=0)
                        layer_grads.append((g_w, g_b))
                        if li > 0:
                            delta = delta @ self._weights[li].T * acts[li] * (1 - acts[li])
                    for g_w, g_b in reversed(layer_grads):
                        grads.extend([g_w, g_b])
                    grads.extend([g_wout, g_bout])
                    adam.step(params, grads)
                self.training_loss_.append(epoch_loss / n)
                epoch_span.add(loss=epoch_loss / n)
                registry.observe("sae.finetune.loss", epoch_loss / n)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._w_out is not None

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict normalized next-hour volumes for a feature matrix."""
        if not self.is_fitted:
            raise PredictionError("SAEPredictor.predict called before fit")
        h = np.asarray(features, dtype=float)
        if h.ndim == 1:
            h = h[None, :]
        for w, b in zip(self._weights, self._biases):
            h = _sigmoid(h @ w + b)
        return (h @ self._w_out).ravel() + self._b_out[0]

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Deepest-layer codes (the learned hierarchical features)."""
        if not self.is_fitted:
            raise PredictionError("SAEPredictor.encode called before fit")
        h = np.asarray(features, dtype=float)
        if h.ndim == 1:
            h = h[None, :]
        for w, b in zip(self._weights, self._biases):
            h = _sigmoid(h @ w + b)
        return h

    # ------------------------------------------------------------------
    # Calibration (held-out residuals + normalization state)
    # ------------------------------------------------------------------
    @property
    def is_calibrated(self) -> bool:
        """Whether :meth:`calibrate` has recorded residuals and scales."""
        return self.residuals_vph_ is not None

    def calibrate(self, dataset) -> np.ndarray:
        """Record held-out forecast residuals and the normalization state.

        Args:
            dataset: A held-out
                :class:`~repro.traffic.dataset.SlidingWindowDataset`
                (e.g. the test split of
                :func:`~repro.traffic.dataset.train_test_split_by_hour`).
                Its ``scale_min``/``scale_max`` become the model's fitted
                normalization state; predictions on its features are
                compared against its targets in vehicles/hour.

        Returns:
            The signed residuals ``predicted − actual`` (vehicles/hour),
            also stored as :attr:`residuals_vph_`.  These feed
            :class:`repro.core.uncertainty.ResidualModel`, which turns
            the point forecast into a distribution for the
            chance-constrained planner.

        Raises:
            PredictionError: If called before :meth:`fit`.
        """
        if not self.is_fitted:
            raise PredictionError("SAEPredictor.calibrate called before fit")
        predicted = dataset.denormalize(self.predict(dataset.features))
        actual = dataset.denormalize(np.asarray(dataset.targets, dtype=float))
        self.norm_min_ = float(dataset.scale_min)
        self.norm_max_ = float(dataset.scale_max)
        self.residuals_vph_ = np.asarray(predicted - actual, dtype=float)
        return self.residuals_vph_

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the fitted model to an ``.npz`` archive.

        Training happens offline on months of detector data; deployments
        load the weights at startup.  When the model has been
        :meth:`calibrate`-d, the fitted normalization bounds and the
        held-out residuals round-trip too.

        Raises:
            PredictionError: If called before :meth:`fit`.
        """
        if not self.is_fitted:
            raise PredictionError("SAEPredictor.save called before fit")
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        arrays = {"w_out": self._w_out, "b_out": self._b_out}
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            arrays[f"w{i}"] = w
            arrays[f"b{i}"] = b
        arrays["hidden_sizes"] = np.asarray(self.hidden_sizes, dtype=np.int64)
        if self.is_calibrated:
            arrays["norm_min"] = np.asarray(self.norm_min_)
            arrays["norm_max"] = np.asarray(self.norm_max_)
            arrays["residuals_vph"] = self.residuals_vph_
        np.savez(target, **arrays)

    @classmethod
    def load(
        cls, path: Union[str, Path], require_calibration: bool = False
    ) -> "SAEPredictor":
        """Load a model saved by :meth:`save`, ready for prediction.

        Args:
            path: The ``.npz`` checkpoint.
            require_calibration: Demand the fitted normalization state and
                held-out residual statistics.  Deployments that build an
                uncertainty model from the checkpoint pass ``True`` so a
                weights-only archive fails loudly instead of planning
                with no residual distribution.

        Raises:
            CheckpointError: ``require_calibration`` is set and the
                checkpoint is missing any of :data:`CALIBRATION_KEYS`.
        """
        source = Path(path)
        with np.load(source) as data:
            missing = [k for k in CALIBRATION_KEYS if k not in data]
            if require_calibration and missing:
                raise CheckpointError(
                    f"checkpoint {source} is missing calibration state "
                    f"({', '.join(missing)}); re-save after "
                    "SAEPredictor.calibrate on the held-out split",
                    path=str(source),
                    missing=missing,
                )
            hidden = tuple(int(h) for h in data["hidden_sizes"])
            model = cls(hidden_sizes=hidden)
            model._weights = [data[f"w{i}"].copy() for i in range(len(hidden))]
            model._biases = [data[f"b{i}"].copy() for i in range(len(hidden))]
            model._w_out = data["w_out"].copy()
            model._b_out = data["b_out"].copy()
            if not missing:
                model.norm_min_ = float(data["norm_min"])
                model.norm_max_ = float(data["norm_max"])
                model.residuals_vph_ = data["residuals_vph"].copy()
        return model
