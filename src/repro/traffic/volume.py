"""Synthetic hourly traffic-volume ground truth.

Substitutes the paper's SCDOT loop-detector feed (Section III-A-2) with a
seeded generator reproducing the qualitative structure of arterial volume
data visible in Fig. 4a:

* weekday double peak (morning and evening commutes),
* weekend single broad midday peak with lower totals,
* smooth day-to-day amplitude modulation,
* multiplicative noise,
* occasional incident spikes/dips (accidents, events).

Volumes are vehicles/hour at one observation station.  Hour 0 is midnight
on a Monday.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7


@dataclass(frozen=True)
class VolumeSeries:
    """An hourly traffic-volume series.

    Attributes:
        volumes_vph: Volume per hour (vehicles/hour), one entry per hour.
        start_hour: Absolute hour index of the first entry (0 = Monday
            00:00 of week zero).
    """

    volumes_vph: np.ndarray
    start_hour: int = 0

    def __post_init__(self) -> None:
        if self.volumes_vph.ndim != 1 or self.volumes_vph.size == 0:
            raise ConfigurationError("a volume series needs a non-empty 1-D array")
        if np.any(self.volumes_vph < 0):
            raise ConfigurationError("volumes must be non-negative")

    def __len__(self) -> int:
        return int(self.volumes_vph.size)

    @property
    def hours(self) -> np.ndarray:
        """Absolute hour index of each entry."""
        return self.start_hour + np.arange(self.volumes_vph.size)

    def hour_of_day(self) -> np.ndarray:
        """Hour-of-day (0-23) of each entry."""
        return self.hours % HOURS_PER_DAY

    def day_of_week(self) -> np.ndarray:
        """Day-of-week (0 = Monday) of each entry."""
        return (self.hours // HOURS_PER_DAY) % DAYS_PER_WEEK

    def split(self, at_hour: int) -> Tuple["VolumeSeries", "VolumeSeries"]:
        """Split into (before, from) an absolute hour boundary."""
        offset = at_hour - self.start_hour
        if not 0 < offset < self.volumes_vph.size:
            raise ValueError(f"split hour {at_hour} outside the series")
        return (
            VolumeSeries(self.volumes_vph[:offset], self.start_hour),
            VolumeSeries(self.volumes_vph[offset:], at_hour),
        )

    def day(self, day_index: int) -> np.ndarray:
        """The 24 volumes of one day (0-based from the series start).

        The series must start at midnight for day slicing to be aligned.
        """
        if self.start_hour % HOURS_PER_DAY != 0:
            raise ValueError("day slicing requires a midnight-aligned series")
        lo = day_index * HOURS_PER_DAY
        hi = lo + HOURS_PER_DAY
        if lo < 0 or hi > self.volumes_vph.size:
            raise ValueError(f"day {day_index} outside the series")
        return self.volumes_vph[lo:hi]


class VolumeGenerator:
    """Seeded generator of realistic hourly arterial volumes.

    Args:
        seed: RNG seed; fixed seed gives a reproducible series.
        base_vph: Overnight base volume (vehicles/hour).
        weekday_peak_vph: Amplitude of each weekday commute peak.
        weekend_peak_vph: Amplitude of the weekend midday peak.
        noise_std: Multiplicative log-normal noise sigma.
        incident_rate_per_day: Expected incidents per day; an incident
            scales a few consecutive hours by a random factor.
        weekly_modulation: Peak-to-peak fractional drift across weeks.
    """

    def __init__(
        self,
        seed: int = 7,
        base_vph: float = 60.0,
        weekday_peak_vph: float = 520.0,
        weekend_peak_vph: float = 260.0,
        noise_std: float = 0.08,
        incident_rate_per_day: float = 0.12,
        weekly_modulation: float = 0.10,
    ) -> None:
        if base_vph < 0 or weekday_peak_vph < 0 or weekend_peak_vph < 0:
            raise ConfigurationError("volumes must be non-negative")
        if noise_std < 0 or incident_rate_per_day < 0 or weekly_modulation < 0:
            raise ConfigurationError("noise, incident rate and modulation must be >= 0")
        self.seed = seed
        self.base_vph = base_vph
        self.weekday_peak_vph = weekday_peak_vph
        self.weekend_peak_vph = weekend_peak_vph
        self.noise_std = noise_std
        self.incident_rate_per_day = incident_rate_per_day
        self.weekly_modulation = weekly_modulation

    @staticmethod
    def _gaussian_bump(hour: np.ndarray, centre: float, width: float) -> np.ndarray:
        return np.exp(-0.5 * np.square((hour - centre) / width))

    def _diurnal_shape(self, hour_of_day: np.ndarray, is_weekend: np.ndarray) -> np.ndarray:
        """Mean volume for each hour before noise/modulation."""
        morning = self._gaussian_bump(hour_of_day, 7.8, 1.6)
        evening = self._gaussian_bump(hour_of_day, 17.2, 1.9)
        midday_floor = 0.42 * self._gaussian_bump(hour_of_day, 12.5, 3.5)
        weekday = self.base_vph + self.weekday_peak_vph * np.maximum(
            np.maximum(morning, evening), midday_floor
        )
        weekend_bump = self._gaussian_bump(hour_of_day, 13.0, 3.8)
        weekend = self.base_vph + self.weekend_peak_vph * weekend_bump
        return np.where(is_weekend, weekend, weekday)

    def generate(self, n_days: int, start_hour: int = 0) -> VolumeSeries:
        """Generate ``n_days`` of hourly volumes starting at ``start_hour``.

        Deterministic for a given ``(seed, n_days, start_hour)`` and
        consistent across overlapping calls sharing a start hour.
        """
        if n_days <= 0:
            raise ValueError(f"n_days must be positive, got {n_days}")
        rng = np.random.default_rng(self.seed)
        hours = start_hour + np.arange(n_days * HOURS_PER_DAY)
        hod = hours % HOURS_PER_DAY
        dow = (hours // HOURS_PER_DAY) % DAYS_PER_WEEK
        is_weekend = dow >= 5
        mean = self._diurnal_shape(hod.astype(float), is_weekend)

        week = hours / (HOURS_PER_DAY * DAYS_PER_WEEK)
        modulation = 1.0 + self.weekly_modulation * np.sin(2.0 * np.pi * week / 4.3)
        noise = rng.lognormal(mean=0.0, sigma=self.noise_std, size=hours.size)
        volumes = mean * modulation * noise

        n_incidents = rng.poisson(self.incident_rate_per_day * n_days)
        for _ in range(n_incidents):
            at = rng.integers(0, hours.size)
            span = int(rng.integers(2, 6))
            factor = rng.uniform(0.35, 0.75) if rng.random() < 0.5 else rng.uniform(1.3, 1.8)
            volumes[at: at + span] *= factor

        return VolumeSeries(np.maximum(volumes, 0.0), start_hour=start_hour)
