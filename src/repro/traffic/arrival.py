"""Vehicle arrival processes driven by hourly volumes.

The QL model and the microsimulator both need per-second arrival behaviour
at a signal approach.  :func:`hourly_rate_function` turns an hourly volume
series into a piecewise-constant rate ``lambda(t)`` in vehicles/second;
:class:`PoissonArrivalProcess` samples actual arrival instants from that
rate (a non-homogeneous Poisson process via per-hour thinning-free
inversion, exact for piecewise-constant rates).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.volume import VolumeSeries
from repro.units import SECONDS_PER_HOUR


def hourly_rate_function(series: VolumeSeries) -> Callable[[float], float]:
    """A piecewise-constant rate ``lambda(t)`` (vehicles/s) from a series.

    ``t`` is absolute seconds with ``t = 0`` at the series' first hour.
    Times outside the series clamp to its ends, so planners probing
    slightly beyond the horizon stay well-defined.
    """
    volumes = series.volumes_vph / SECONDS_PER_HOUR

    def rate(t_s: float) -> float:
        index = int(t_s // SECONDS_PER_HOUR)
        index = min(max(index, 0), volumes.size - 1)
        return float(volumes[index])

    return rate


class PoissonArrivalProcess:
    """Samples vehicle arrival times from a piecewise-constant hourly rate.

    Args:
        series: Hourly volumes; hour ``i`` covers seconds
            ``[i * 3600, (i + 1) * 3600)`` relative to the series start.
        seed: RNG seed; sampling is deterministic per seed.
    """

    def __init__(self, series: VolumeSeries, seed: int = 0) -> None:
        self.series = series
        self.seed = seed

    def sample(self, start_s: float, duration_s: float) -> np.ndarray:
        """Arrival instants (absolute seconds) in ``[start_s, start_s + duration_s)``.

        Exact non-homogeneous Poisson sampling: within each hour the rate
        is constant, so arrivals are a homogeneous Poisson process there.
        """
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        if start_s < 0:
            raise ConfigurationError(f"start must be >= 0, got {start_s}")
        rng = np.random.default_rng(self.seed)
        end_s = start_s + duration_s
        arrivals: List[np.ndarray] = []
        hour = int(start_s // SECONDS_PER_HOUR)
        while hour * SECONDS_PER_HOUR < end_s:
            lo = max(start_s, hour * SECONDS_PER_HOUR)
            hi = min(end_s, (hour + 1) * SECONDS_PER_HOUR)
            index = min(max(hour, 0), len(self.series) - 1)
            rate_vps = self.series.volumes_vph[index] / SECONDS_PER_HOUR
            count = rng.poisson(rate_vps * (hi - lo))
            if count:
                arrivals.append(np.sort(rng.uniform(lo, hi, size=count)))
            hour += 1
        if not arrivals:
            return np.empty(0)
        return np.concatenate(arrivals)
