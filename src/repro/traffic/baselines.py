"""Reference volume predictors the SAE is compared against.

These are the standard yardsticks in the traffic-flow-prediction
literature: the historical (day-of-week, hour-of-day) average, and the
last observed value (random-walk forecast).  Both operate on the same
normalized sliding-window datasets as :class:`~repro.traffic.sae.SAEPredictor`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError
from repro.traffic.dataset import SlidingWindowDataset
from repro.traffic.volume import DAYS_PER_WEEK, HOURS_PER_DAY


class HistoricalAveragePredictor:
    """Predict the mean normalized volume of each (day-of-week, hour) slot."""

    def __init__(self) -> None:
        self._table: np.ndarray | None = None
        self._fallback = 0.0

    def fit(self, dataset: SlidingWindowDataset) -> "HistoricalAveragePredictor":
        """Tabulate slot means from a training dataset."""
        table = np.zeros((DAYS_PER_WEEK, HOURS_PER_DAY))
        counts = np.zeros((DAYS_PER_WEEK, HOURS_PER_DAY))
        dow = (dataset.target_hours // HOURS_PER_DAY) % DAYS_PER_WEEK
        hod = dataset.target_hours % HOURS_PER_DAY
        np.add.at(table, (dow, hod), dataset.targets)
        np.add.at(counts, (dow, hod), 1.0)
        self._fallback = float(np.mean(dataset.targets))
        with np.errstate(invalid="ignore"):
            self._table = np.where(counts > 0, table / np.maximum(counts, 1.0), self._fallback)
        return self

    def predict(self, dataset: SlidingWindowDataset) -> np.ndarray:
        """Slot-mean prediction for every example in a dataset."""
        if self._table is None:
            raise PredictionError("HistoricalAveragePredictor.predict called before fit")
        dow = (dataset.target_hours // HOURS_PER_DAY) % DAYS_PER_WEEK
        hod = dataset.target_hours % HOURS_PER_DAY
        return self._table[dow, hod]


class LastValuePredictor:
    """Random-walk forecast: the next hour equals the last observed hour.

    The most recent volume is the final entry of each example's feature
    window, so no fitting is required.
    """

    def fit(self, dataset: SlidingWindowDataset) -> "LastValuePredictor":
        """No-op; present for interface symmetry."""
        return self

    def predict(self, dataset: SlidingWindowDataset) -> np.ndarray:
        """Return the last windowed volume of every example."""
        return dataset.features[:, dataset.window - 1]
