"""Supervised dataset construction for the traffic-volume predictors.

The SAE model of [Huang et al. 2014] predicts the volume at ``t + delta``
from a window of recent volumes plus the time of day (Section II-B-1).  We
follow that recipe: each example's features are the previous ``window``
hourly volumes and sine/cosine encodings of hour-of-day and day-of-week;
the label is the next hour's volume.  Volumes are min-max normalized with
statistics from the *training* portion only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.volume import DAYS_PER_WEEK, HOURS_PER_DAY, VolumeSeries


#: Lagged volumes included as features: same hour yesterday and last week.
DAILY_LAGS = (24, 168)


@dataclass(frozen=True)
class SlidingWindowDataset:
    """A supervised (features, target) view of an hourly volume series.

    Attributes:
        features: Matrix ``(n_examples, n_features)`` — the window of past
            normalized volumes, lagged same-hour volumes (yesterday, last
            week), harmonic clock encodings and a weekend flag.
        targets: Normalized next-hour volumes ``(n_examples,)``.
        target_hours: Absolute hour index of each target.
        scale_min: Normalization minimum (vehicles/hour).
        scale_max: Normalization maximum (vehicles/hour).
        window: Number of past hours per example.
    """

    features: np.ndarray
    targets: np.ndarray
    target_hours: np.ndarray
    scale_min: float
    scale_max: float
    window: int

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to vehicles/hour."""
        return np.asarray(values) * (self.scale_max - self.scale_min) + self.scale_min

    def normalize(self, volumes_vph: np.ndarray) -> np.ndarray:
        """Map raw volumes onto the dataset's [0, 1] scale."""
        return (np.asarray(volumes_vph) - self.scale_min) / (self.scale_max - self.scale_min)

    @property
    def n_examples(self) -> int:
        """Number of supervised examples."""
        return int(self.targets.size)


def build_dataset(
    series: VolumeSeries,
    window: int = 12,
    scale_min: float | None = None,
    scale_max: float | None = None,
) -> SlidingWindowDataset:
    """Build a sliding-window dataset from an hourly series.

    Args:
        series: Source volumes.
        window: Number of past hours in each feature vector.
        scale_min: Normalization minimum; computed from ``series`` when
            ``None``.  Pass the training set's statistics when building a
            test set.
        scale_max: Normalization maximum (same convention).

    Raises:
        ConfigurationError: If the series is shorter than ``window + 1``.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    volumes = series.volumes_vph
    history = max(window, max(DAILY_LAGS))
    if volumes.size <= history:
        raise ConfigurationError(
            f"series of {volumes.size} hours is too short for {history} hours of history"
        )
    lo = float(np.min(volumes)) if scale_min is None else float(scale_min)
    hi = float(np.max(volumes)) if scale_max is None else float(scale_max)
    if hi <= lo:
        raise ConfigurationError(f"degenerate normalization range [{lo}, {hi}]")
    norm = (volumes - lo) / (hi - lo)

    n = volumes.size - history
    target_idx = history + np.arange(n)
    idx = target_idx[:, None] - window + np.arange(window)
    past = norm[idx]
    lags = np.stack([norm[target_idx - lag] for lag in DAILY_LAGS], axis=1)
    target_hours = series.hours[target_idx]
    hod = (target_hours % HOURS_PER_DAY) / HOURS_PER_DAY
    dow = ((target_hours // HOURS_PER_DAY) % DAYS_PER_WEEK) / DAYS_PER_WEEK
    weekend = ((target_hours // HOURS_PER_DAY) % DAYS_PER_WEEK >= 5).astype(float)
    harmonics = []
    for k in (1, 2, 3):
        harmonics.append(np.sin(2 * np.pi * k * hod))
        harmonics.append(np.cos(2 * np.pi * k * hod))
    clock = np.stack(
        harmonics + [np.sin(2 * np.pi * dow), np.cos(2 * np.pi * dow), weekend],
        axis=1,
    )
    features = np.concatenate([past, lags, clock], axis=1)
    targets = norm[target_idx]
    return SlidingWindowDataset(
        features=features,
        targets=targets,
        target_hours=target_hours,
        scale_min=lo,
        scale_max=hi,
        window=window,
    )


def train_test_split_by_hour(
    series: VolumeSeries, test_hours: int, window: int = 12
) -> Tuple[SlidingWindowDataset, SlidingWindowDataset]:
    """Chronological train/test datasets with shared normalization.

    The last ``test_hours`` entries form the test period (the paper holds
    out one week).  Test examples may look back into training hours for
    their feature windows, mirroring online deployment.
    """
    if test_hours <= 0 or test_hours >= len(series):
        raise ConfigurationError(
            f"test_hours must be in (0, {len(series)}), got {test_hours}"
        )
    split_hour = int(series.hours[-1]) + 1 - test_hours
    train_series, _ = series.split(split_hour)
    train = build_dataset(train_series, window=window)
    # Test features may span the boundary: build over the full series and
    # keep targets inside the test period, normalized with train stats.
    full = build_dataset(
        series, window=window, scale_min=train.scale_min, scale_max=train.scale_max
    )
    mask = full.target_hours >= split_hour
    test = SlidingWindowDataset(
        features=full.features[mask],
        targets=full.targets[mask],
        target_hours=full.target_hours[mask],
        scale_min=train.scale_min,
        scale_max=train.scale_max,
        window=window,
    )
    return train, test
