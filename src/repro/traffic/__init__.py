"""Traffic-volume modelling: synthesis, prediction (SAE) and arrivals.

The paper trains a stacked-autoencoder (SAE) volume predictor on three
months of SCDOT loop-detector data and uses its output as the signal-area
vehicle arrival rate ``V_in``.  The detector feed is not public, so
:mod:`repro.traffic.volume` synthesizes a statistically similar hourly
series (documented in DESIGN.md); everything downstream is faithful to the
paper: sliding-window supervision, SAE with greedy layer-wise pretraining,
MRE/RMSE evaluation, and a Poisson arrival process driven by the hourly
volumes.
"""

from repro.traffic.volume import VolumeGenerator, VolumeSeries
from repro.traffic.dataset import SlidingWindowDataset, build_dataset, train_test_split_by_hour
from repro.traffic.sae import SAEPredictor
from repro.traffic.baselines import HistoricalAveragePredictor, LastValuePredictor
from repro.traffic.arrival import PoissonArrivalProcess, hourly_rate_function
from repro.traffic.io import load_volume_csv, save_volume_csv

__all__ = [
    "HistoricalAveragePredictor",
    "LastValuePredictor",
    "PoissonArrivalProcess",
    "SAEPredictor",
    "SlidingWindowDataset",
    "VolumeGenerator",
    "VolumeSeries",
    "build_dataset",
    "hourly_rate_function",
    "load_volume_csv",
    "save_volume_csv",
    "train_test_split_by_hour",
]
