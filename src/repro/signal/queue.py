"""Queue-length (QL) model: Eq. 6 and the queue-empty window ``T_q``.

The queue in front of a signal grows with the arrival rate ``V_in`` while
the light is red and shrinks with the leaving rate ``V_out`` (from the VM
model) once it turns green.  The paper's Eq. 6 gives the queue trajectory
over one cycle; its zero-crossing ``t_star`` defines the window
``T_q = [t_star, cycle_end)`` during which an arriving EV meets no queue —
the window the DP optimizer targets (Eq. 11).

Two discharge behaviours are supported:

* :class:`~repro.signal.vm.VehicleMovementModel` — the paper's VM model
  with the acceleration transient (proposed).
* :class:`~repro.signal.vm.InstantDischargeModel` — the prior-art model [9]
  where the queue moves at ``v_min`` from the first green instant
  (baseline, Fig. 5).

Both an exact closed-form single-cycle solution (constant arrivals, empty
queue at red onset — the paper's setting) and a discrete-time multi-cycle
integrator with residual-queue carry-over and time-varying arrivals are
provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight
from repro.signal.vm import InstantDischargeModel, VehicleMovementModel

DischargeModel = Union[VehicleMovementModel, InstantDischargeModel]
ArrivalRate = Union[float, Callable[[float], float]]


@dataclass(frozen=True)
class QueueWindow:
    """An absolute-time interval during which the queue is empty and green.

    Attributes:
        start_s: Window start (absolute seconds).
        end_s: Window end (absolute seconds, exclusive).
    """

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"window end {self.end_s} must exceed start {self.start_s}"
            )

    @property
    def duration_s(self) -> float:
        """Window length (s)."""
        return self.end_s - self.start_s

    def contains(self, t: float) -> bool:
        """Whether an absolute time falls inside the window."""
        return self.start_s <= t < self.end_s


class QueueLengthModel:
    """The paper's QL model (Eq. 6) over one signal.

    Args:
        discharge: Queue-discharge model (VM for the proposed system,
            instant discharge for the [9] baseline).
    """

    def __init__(self, discharge: DischargeModel) -> None:
        self.discharge = discharge
        self.light: TrafficLight = discharge.light

    # ------------------------------------------------------------------
    # Single-cycle closed form (the paper's Eq. 6 setting)
    # ------------------------------------------------------------------
    def queue_vehicles(self, cycle_time_s: float, arrival_rate_vps: float) -> float:
        """Queue size (vehicles) at a time within one cycle (Eq. 6).

        Assumes the queue is empty at the red onset and arrivals are a
        constant ``V_in`` (vehicles/s).  After the zero-crossing the queue
        stays empty for the rest of the green: arrivals roll through.
        """
        if arrival_rate_vps < 0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_vps}")
        if cycle_time_s < 0:
            raise ValueError(f"cycle time must be >= 0, got {cycle_time_s}")
        t_star = self.clear_time(arrival_rate_vps)
        if t_star is not None and cycle_time_s >= t_star:
            return 0.0
        arrived = arrival_rate_vps * cycle_time_s
        discharged = self.discharge.discharged_vehicles(cycle_time_s)
        return max(arrived - discharged, 0.0)

    def queue_length_m(self, cycle_time_s: float, arrival_rate_vps: float) -> float:
        """Queue length in metres: spacing ``d`` times the vehicle count."""
        return self.discharge.spacing_m * self.queue_vehicles(cycle_time_s, arrival_rate_vps)

    def clear_time(self, arrival_rate_vps: float) -> Optional[float]:
        """Cycle time ``t_star`` at which the queue first empties on green.

        Returns ``None`` when the green phase cannot absorb the red-phase
        accumulation plus in-green arrivals (oversaturation), in which case
        there is no queue-free window this cycle.
        """
        if arrival_rate_vps < 0:
            raise ValueError(f"arrival rate must be >= 0, got {arrival_rate_vps}")
        light = self.light
        lam = arrival_rate_vps
        k = 1.0 / (self.discharge.spacing_m * self.discharge.turn_ratio)
        v_min = self.discharge.v_min_ms
        if lam == 0.0:
            return light.red_s

        if isinstance(self.discharge, VehicleMovementModel):
            a = self.discharge.a_max_ms2
            ramp_s = v_min / a
            # Ramp phase: lam * t = k * a * (t - red)^2 / 2, u = t - red.
            disc = lam * lam + 2.0 * k * a * lam * light.red_s
            u = (lam + math.sqrt(disc)) / (k * a)
            if u <= ramp_s:
                t_star = light.red_s + u
                return t_star if t_star <= light.cycle_s else None
            ramp_vehicles = k * 0.5 * v_min * ramp_s
            t1 = light.red_s + ramp_s
        else:
            ramp_vehicles = 0.0
            t1 = light.red_s

        # Constant-speed phase: lam * t = ramp_vehicles + k*v_min*(t - t1).
        service = k * v_min
        if service <= lam:
            return None
        t_star = (service * t1 - ramp_vehicles) / (service - lam)
        t_star = max(t_star, t1)
        return t_star if t_star <= light.cycle_s else None

    def empty_window(self, arrival_rate_vps: float) -> Optional[Tuple[float, float]]:
        """The in-cycle queue-free window ``[t_star, cycle_end)`` or ``None``."""
        t_star = self.clear_time(arrival_rate_vps)
        if t_star is None or t_star >= self.light.cycle_s:
            return None
        return (t_star, self.light.cycle_s)

    def empty_windows(
        self, start_s: float, horizon_s: float, arrival_rate: ArrivalRate
    ) -> List[QueueWindow]:
        """Absolute queue-free windows over ``[start_s, start_s + horizon_s]``.

        Each cycle is treated independently with the queue empty at its red
        onset — the paper's periodic steady-state assumption.  A callable
        ``arrival_rate`` is sampled at each cycle start, which lets the
        SAE-predicted hourly volumes drive the window placement.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        end_s = start_s + horizon_s
        windows: List[QueueWindow] = []
        cycle_start = self.light.cycle_start(start_s)
        while cycle_start < end_s:
            rate = arrival_rate(cycle_start) if callable(arrival_rate) else arrival_rate
            in_cycle = self.empty_window(rate)
            if in_cycle is not None:
                lo = cycle_start + in_cycle[0]
                hi = cycle_start + in_cycle[1]
                lo, hi = max(lo, start_s), min(hi, end_s)
                if hi > lo:
                    windows.append(QueueWindow(lo, hi))
            cycle_start += self.light.cycle_s
        return windows

    # ------------------------------------------------------------------
    # Multi-cycle discrete-time integration (residual queues, varying V_in)
    # ------------------------------------------------------------------
    def simulate(
        self,
        duration_s: float,
        arrival_rate: ArrivalRate,
        dt_s: float = 0.1,
        initial_queue: float = 0.0,
    ) -> "QueueTrace":
        """Integrate the queue forward in time with residual carry-over.

        Unlike the closed form, this handles queues that survive a green
        phase and time-varying arrival rates.  Arrivals during green with
        an empty queue pass through without joining.

        Args:
            duration_s: Simulated horizon (s), starting at absolute t=0.
            arrival_rate: Constant rate (vehicles/s) or callable of time.
            dt_s: Integration step (s).
            initial_queue: Vehicles queued at t=0.

        Returns:
            A :class:`QueueTrace` of sampled times and queue sizes.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("duration and dt must be positive")
        if initial_queue < 0:
            raise ValueError(f"initial queue must be >= 0, got {initial_queue}")
        steps = int(round(duration_s / dt_s))
        times = np.arange(steps + 1) * dt_s
        queue = np.empty(steps + 1)
        queue[0] = initial_queue
        q = initial_queue
        for i in range(steps):
            t = times[i]
            rate = arrival_rate(t) if callable(arrival_rate) else arrival_rate
            if rate < 0:
                raise ValueError(f"arrival rate must be >= 0, got {rate} at t={t}")
            green = self.light.is_green(t)
            if green:
                out = self.discharge.leaving_rate(self.light.time_in_cycle(t)) * dt_s
                if q <= 0.0:
                    q = 0.0  # free flow: arrivals roll through
                else:
                    q = max(q + rate * dt_s - out, 0.0)
            else:
                q += rate * dt_s
            queue[i + 1] = q
        return QueueTrace(times=times, vehicles=queue, spacing_m=self.discharge.spacing_m)


@dataclass(frozen=True)
class QueueTrace:
    """A sampled queue trajectory from :meth:`QueueLengthModel.simulate`.

    Attributes:
        times: Sample times (s).
        vehicles: Queue size at each sample (vehicles, fractional).
        spacing_m: Intra-queue spacing used to convert to metres.
    """

    times: np.ndarray
    vehicles: np.ndarray
    spacing_m: float

    @property
    def length_m(self) -> np.ndarray:
        """Queue length in metres at each sample."""
        return self.vehicles * self.spacing_m

    def empty_windows(self, min_duration_s: float = 0.0) -> List[QueueWindow]:
        """Maximal intervals with a zero queue, at the trace resolution."""
        is_empty = self.vehicles <= 1e-9
        windows: List[QueueWindow] = []
        start: Optional[float] = None
        for t, empty in zip(self.times, is_empty):
            if empty and start is None:
                start = float(t)
            elif not empty and start is not None:
                if t - start >= min_duration_s and t > start:
                    windows.append(QueueWindow(start, float(t)))
                start = None
        if start is not None and self.times[-1] > start:
            if self.times[-1] - start >= min_duration_s:
                windows.append(QueueWindow(start, float(self.times[-1])))
        return windows


class BaselineQueueModel(QueueLengthModel):
    """The prior-art QL model [9]: instant queue discharge at ``v_min``.

    Assumes a pre-known arrival rate and no acceleration transient; used as
    the comparison curve in Fig. 5b.
    """

    def __init__(
        self,
        light: TrafficLight,
        v_min_ms: float,
        spacing_m: float = 8.5,
        turn_ratio: float = 1.0,
    ) -> None:
        super().__init__(
            InstantDischargeModel(
                light=light, v_min_ms=v_min_ms, spacing_m=spacing_m, turn_ratio=turn_ratio
            )
        )
