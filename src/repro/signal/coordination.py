"""Signal-offset coordination analysis for a corridor.

A corridor's signal offsets decide whether an EV can glide through every
intersection at all — badly staggered lights force even an optimal planner
to brake.  This module measures a corridor's *progression quality* for the
queue-aware setting (how much queue-free green a vehicle travelling at a
target speed can use at every signal) and searches offsets that maximize
it.  It is the infrastructure-side counterpart of the paper's in-vehicle
optimization, in the spirit of the GLOSA literature its related work
cites (Seredynski et al.).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment, SignalSite
from repro.signal.light import TrafficLight
from repro.signal.queue import QueueLengthModel
from repro.signal.vm import VehicleMovementModel

ArrivalRates = Union[float, Dict[float, float]]


@dataclass(frozen=True)
class ProgressionReport:
    """How well a corridor's offsets serve a cruise speed.

    Attributes:
        cruise_speed_ms: The evaluated progression speed.
        offsets_s: Signal offsets evaluated (by position order).
        usable_green_s: Per-signal length of the queue-free window around
            the nominal arrival time of a vehicle cruising from the start.
        bandwidth_s: The corridor's green-wave bandwidth — the overlap of
            all usable windows after travel-time alignment (0 when some
            signal cannot be crossed queue-free at this speed).
    """

    cruise_speed_ms: float
    offsets_s: Tuple[float, ...]
    usable_green_s: Tuple[float, ...]
    bandwidth_s: float


def _queue_model_for(site: SignalSite, v_min_ms: float, a_max_ms2: float) -> QueueLengthModel:
    vm = VehicleMovementModel(
        light=site.light,
        v_min_ms=v_min_ms,
        a_max_ms2=a_max_ms2,
        spacing_m=site.queue_spacing_m,
        turn_ratio=site.turn_ratio,
    )
    return QueueLengthModel(vm)


def _rate_for(site: SignalSite, rates: ArrivalRates) -> float:
    if isinstance(rates, dict):
        try:
            return rates[site.position_m]
        except KeyError as exc:
            raise ConfigurationError(
                f"no arrival rate for signal at {site.position_m} m"
            ) from exc
    return float(rates)


def evaluate_progression(
    road: RoadSegment,
    cruise_speed_ms: float,
    arrival_rates: ArrivalRates,
    a_max_ms2: float = 2.5,
) -> ProgressionReport:
    """Progression quality of the road's current offsets.

    A virtual vehicle departs at the start of some cycle and cruises at
    ``cruise_speed_ms``; at each signal its nominal arrival phase is
    checked against the queue-free window.  The *bandwidth* is the size of
    the departure-time interval (within one period) for which every signal
    is crossed inside its queue-free window — the classic green-wave
    bandwidth, queue-adjusted.
    """
    if cruise_speed_ms <= 0:
        raise ConfigurationError(f"cruise speed must be positive, got {cruise_speed_ms}")
    if not road.signals:
        raise ConfigurationError("the corridor has no signals to coordinate")
    period = road.signals[0].light.cycle_s
    for site in road.signals:
        if abs(site.light.cycle_s - period) > 1e-9:
            raise ConfigurationError(
                "progression analysis requires a common signal cycle"
            )

    usable: List[float] = []
    # Departure times (mod period) that clear each signal, intersected.
    feasible_departures: Optional[np.ndarray] = None
    probe = np.linspace(0.0, period, 241, endpoint=False)
    for site in road.signals:
        model = _queue_model_for(site, road.v_min_at(site.position_m), a_max_ms2)
        rate = _rate_for(site, arrival_rates)
        window = model.empty_window(rate)
        if window is None:
            usable.append(0.0)
            feasible_departures = np.zeros_like(probe, dtype=bool)
            continue
        start, end = window
        usable.append(end - start)
        travel = site.position_m / cruise_speed_ms
        arrival_phase = (probe + travel - site.light.offset_s) % period
        ok = (arrival_phase >= start) & (arrival_phase < end)
        feasible_departures = ok if feasible_departures is None else feasible_departures & ok

    assert feasible_departures is not None
    bandwidth = float(np.mean(feasible_departures) * period)
    return ProgressionReport(
        cruise_speed_ms=cruise_speed_ms,
        offsets_s=tuple(site.light.offset_s for site in road.signals),
        usable_green_s=tuple(usable),
        bandwidth_s=bandwidth,
    )


def optimize_offsets(
    road: RoadSegment,
    cruise_speed_ms: float,
    arrival_rates: ArrivalRates,
    offset_step_s: float = 5.0,
    a_max_ms2: float = 2.5,
) -> Tuple[Tuple[float, ...], ProgressionReport]:
    """Grid-search signal offsets maximizing queue-aware bandwidth.

    The first signal's offset is pinned at zero (only relative offsets
    matter); the rest scan ``[0, period)`` at ``offset_step_s``.  The
    search is exhaustive — corridors have few signals, and the objective
    is cheap — returning the best offsets and their progression report.
    """
    if offset_step_s <= 0:
        raise ConfigurationError("offset step must be positive")
    if not road.signals:
        raise ConfigurationError("the corridor has no signals to coordinate")
    period = road.signals[0].light.cycle_s
    choices = np.arange(0.0, period, offset_step_s)
    n_free = len(road.signals) - 1

    best_offsets: Optional[Tuple[float, ...]] = None
    best_report: Optional[ProgressionReport] = None
    for combo in itertools.product(choices, repeat=n_free):
        offsets = (0.0,) + tuple(float(c) for c in combo)
        candidate = _with_offsets(road, offsets)
        report = evaluate_progression(candidate, cruise_speed_ms, arrival_rates, a_max_ms2)
        if best_report is None or report.bandwidth_s > best_report.bandwidth_s:
            best_offsets, best_report = offsets, report
    assert best_offsets is not None and best_report is not None
    return best_offsets, best_report


def _with_offsets(road: RoadSegment, offsets: Sequence[float]) -> RoadSegment:
    """A copy of the road with replaced signal offsets."""
    if len(offsets) != len(road.signals):
        raise ConfigurationError(
            f"need {len(road.signals)} offsets, got {len(offsets)}"
        )
    new_signals = [
        SignalSite(
            position_m=site.position_m,
            light=TrafficLight(
                red_s=site.light.red_s, green_s=site.light.green_s, offset_s=offset
            ),
            turn_ratio=site.turn_ratio,
            queue_spacing_m=site.queue_spacing_m,
        )
        for site, offset in zip(road.signals, offsets)
    ]
    return RoadSegment(
        name=road.name,
        length_m=road.length_m,
        zones=list(road.zones),
        stop_signs=list(road.stop_signs),
        signals=new_signals,
        grade=road.grade,
    )
