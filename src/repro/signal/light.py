"""Fixed-time traffic-light model.

The paper considers a two-phase fixed cycle: red for ``t_red`` seconds from
the cycle start, then green until the cycle ends (Section II-B-2).  An
``offset`` shifts the cycle relative to absolute time so corridors with
several lights can be staggered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrafficLight:
    """A fixed-time two-phase signal.

    Attributes:
        red_s: Red-phase duration ``t_red`` (s); the cycle starts red.
        green_s: Green-phase duration (s).
        offset_s: Absolute time at which a cycle begins (s).
    """

    red_s: float
    green_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.red_s < 0 or self.green_s <= 0:
            raise ConfigurationError(
                f"phases must satisfy red >= 0 and green > 0, got {self.red_s}/{self.green_s}"
            )

    @property
    def cycle_s(self) -> float:
        """Full cycle duration ``t2 = t_red + t_green`` (s)."""
        return self.red_s + self.green_s

    def time_in_cycle(self, t: float) -> float:
        """Phase time in ``[0, cycle)`` for an absolute time ``t``."""
        return (t - self.offset_s) % self.cycle_s

    def is_green(self, t: float) -> bool:
        """Whether the light shows green at absolute time ``t``."""
        return self.time_in_cycle(t) >= self.red_s

    def is_red(self, t: float) -> bool:
        """Whether the light shows red at absolute time ``t``."""
        return not self.is_green(t)

    def cycle_index(self, t: float) -> int:
        """Index of the cycle containing absolute time ``t`` (0-based)."""
        return int((t - self.offset_s) // self.cycle_s)

    def cycle_start(self, t: float) -> float:
        """Absolute start time of the cycle containing ``t``."""
        return self.offset_s + self.cycle_index(t) * self.cycle_s

    def _snap_to_green(self, t: float, limit: float) -> float:
        """Nudge ``t`` forward by ulps until ``is_green`` holds.

        ``cycle_start + red_s`` rounds independently of the modulo in
        :meth:`time_in_cycle`, so a computed green onset can land a few
        ulps on the red side of the phase test.  Snapping keeps every
        published green instant green by the predicate itself.
        """
        while not self.is_green(t) and t < limit:
            t = math.nextafter(t, limit)
        return t

    def next_green_start(self, t: float) -> float:
        """Earliest absolute time >= ``t`` at which the light is green."""
        if self.is_green(t):
            return t
        cycle_start = self.cycle_start(t)
        return self._snap_to_green(
            cycle_start + self.red_s, cycle_start + self.cycle_s
        )

    def next_red_start(self, t: float) -> float:
        """Earliest absolute time >= ``t`` at which the light turns red."""
        if self.is_red(t):
            return t
        return self.cycle_start(t) + self.cycle_s

    def green_windows(self, horizon_s: float, start_s: float = 0.0) -> List[Tuple[float, float]]:
        """Green intervals ``[(start, end), ...]`` overlapping ``[start_s, start_s+horizon_s]``."""
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        end_s = start_s + horizon_s
        windows: List[Tuple[float, float]] = []
        cycle_start = self.cycle_start(start_s)
        while cycle_start < end_s:
            g1 = cycle_start + self.cycle_s
            g0 = self._snap_to_green(cycle_start + self.red_s, g1)
            lo, hi = max(g0, start_s), min(g1, end_s)
            if hi > lo:
                windows.append((lo, hi))
            cycle_start += self.cycle_s
        return windows
