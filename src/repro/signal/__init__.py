"""Traffic-signal models: light timing, queue discharge (VM) and queue length (QL)."""

from repro.signal.light import TrafficLight
from repro.signal.vm import VehicleMovementModel, InstantDischargeModel
from repro.signal.queue import QueueLengthModel, BaselineQueueModel, QueueWindow

# NOTE: repro.signal.coordination is intentionally not re-exported here —
# it depends on repro.route, which itself imports this package; import it
# as `from repro.signal.coordination import ...` directly.

__all__ = [
    "BaselineQueueModel",
    "InstantDischargeModel",
    "QueueLengthModel",
    "QueueWindow",
    "TrafficLight",
    "VehicleMovementModel",
]
