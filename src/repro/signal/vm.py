"""Vehicle-movement (VM) model: queue discharge speed and leaving rate.

Implements Eq. 4 and Eq. 5 of the paper.  When the light turns green the
standing queue accelerates from rest to the minimum speed limit ``v_min``
at the maximum comfortable acceleration ``a_max`` and then rolls through
the stop line at ``v_min``:

    v(t) = 0                          for 0      < t <= t_red       (red)
    v(t) = a_max * (t - t_red)        for t_red  < t <= t1          (ramp)
    v(t) = v_min                      for t1     < t <= t_star      (discharge)
    v(t) = v_opt                      for t_star < t                (queue empty)

with ``t1 = t_red + v_min / a_max``.  The leaving rate follows Eq. 5:

    V_out(t) = v(t) / (d * gamma)

where ``d`` is the constant intra-queue spacing and ``gamma`` the fraction
of queued vehicles that go straight (turning vehicles clear through turn
movements, so a smaller ``gamma`` empties the through queue faster).

The prior art the paper compares against [Kang 2000] assumes the queue
reaches ``v_min`` instantly at the green onset; that variant is provided as
:class:`InstantDischargeModel` for the Fig. 5 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class VehicleMovementModel:
    """Queue-discharge kinematics behind one signal (Eq. 4 / Eq. 5).

    Attributes:
        light: Signal timing; phase times below are relative to a cycle
            start (red onset).
        v_min_ms: Minimum speed limit the queue accelerates to (m/s).
        a_max_ms2: Maximum acceleration used by discharging vehicles (m/s^2).
        spacing_m: Constant intra-queue spacing ``d`` (m).
        turn_ratio: Fraction ``gamma`` of queued vehicles going straight.
    """

    light: TrafficLight
    v_min_ms: float
    a_max_ms2: float = 2.5
    spacing_m: float = 8.5
    turn_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.v_min_ms <= 0:
            raise ConfigurationError(f"v_min must be positive, got {self.v_min_ms}")
        if self.a_max_ms2 <= 0:
            raise ConfigurationError(f"a_max must be positive, got {self.a_max_ms2}")
        if self.spacing_m <= 0:
            raise ConfigurationError(f"spacing must be positive, got {self.spacing_m}")
        if not 0.0 < self.turn_ratio <= 1.0:
            raise ConfigurationError(f"turn ratio must be in (0, 1], got {self.turn_ratio}")

    @property
    def ramp_end_s(self) -> float:
        """Cycle time ``t1`` at which discharging vehicles reach ``v_min``."""
        return self.light.red_s + self.v_min_ms / self.a_max_ms2

    def queue_speed(self, cycle_time_s: ArrayLike) -> ArrayLike:
        """Queue-head speed ``v(t)`` (m/s) at a time within the cycle (Eq. 4).

        ``cycle_time_s`` is measured from the red onset; values beyond one
        cycle are *not* wrapped — use :meth:`TrafficLight.time_in_cycle`.
        The fourth branch of Eq. 4 (free flow at ``v_opt`` once the queue is
        gone) belongs to the optimizer, not the queue: this function keeps
        reporting the discharge speed ``v_min``, which is what the leaving
        rate needs.
        """
        t = np.asarray(cycle_time_s, dtype=float)
        ramp = self.a_max_ms2 * (t - self.light.red_s)
        speed = np.where(t <= self.light.red_s, 0.0, np.minimum(ramp, self.v_min_ms))
        if np.ndim(speed) == 0:
            return float(speed)
        return speed

    def leaving_rate(self, cycle_time_s: ArrayLike) -> ArrayLike:
        """Queue leaving rate ``V_out(t)`` (vehicles/s) from Eq. 5."""
        speed = np.asarray(self.queue_speed(cycle_time_s), dtype=float)
        rate = speed / (self.spacing_m * self.turn_ratio)
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    def discharged_vehicles(self, cycle_time_s: float) -> float:
        """Vehicles discharged since the cycle start (integral of Eq. 5).

        Closed-form integral of the ramp-then-constant speed profile.
        """
        if cycle_time_s <= self.light.red_s:
            return 0.0
        t_green = cycle_time_s - self.light.red_s
        ramp_duration = self.v_min_ms / self.a_max_ms2
        if t_green <= ramp_duration:
            distance = 0.5 * self.a_max_ms2 * t_green * t_green
        else:
            ramp_distance = 0.5 * self.v_min_ms * ramp_duration
            distance = ramp_distance + self.v_min_ms * (t_green - ramp_duration)
        return distance / (self.spacing_m * self.turn_ratio)


@dataclass(frozen=True)
class InstantDischargeModel:
    """Baseline discharge model [9]: the queue moves at ``v_min`` from the
    first instant of green (no acceleration transient).

    Used as the Fig. 5 comparison (``V_out = v_min / d``); exposes the same
    interface as :class:`VehicleMovementModel`.
    """

    light: TrafficLight
    v_min_ms: float
    spacing_m: float = 8.5
    turn_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.v_min_ms <= 0:
            raise ConfigurationError(f"v_min must be positive, got {self.v_min_ms}")
        if self.spacing_m <= 0:
            raise ConfigurationError(f"spacing must be positive, got {self.spacing_m}")
        if not 0.0 < self.turn_ratio <= 1.0:
            raise ConfigurationError(f"turn ratio must be in (0, 1], got {self.turn_ratio}")

    def queue_speed(self, cycle_time_s: ArrayLike) -> ArrayLike:
        """Queue speed: a step from 0 to ``v_min`` at the green onset."""
        t = np.asarray(cycle_time_s, dtype=float)
        speed = np.where(t <= self.light.red_s, 0.0, self.v_min_ms)
        if np.ndim(speed) == 0:
            return float(speed)
        return speed

    def leaving_rate(self, cycle_time_s: ArrayLike) -> ArrayLike:
        """Leaving rate: a step from 0 to ``v_min / (d * gamma)``."""
        speed = np.asarray(self.queue_speed(cycle_time_s), dtype=float)
        rate = speed / (self.spacing_m * self.turn_ratio)
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    def discharged_vehicles(self, cycle_time_s: float) -> float:
        """Vehicles discharged since the cycle start."""
        if cycle_time_s <= self.light.red_s:
            return 0.0
        t_green = cycle_time_s - self.light.red_s
        return self.v_min_ms * t_green / (self.spacing_m * self.turn_ratio)
