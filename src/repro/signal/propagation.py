"""Platoon propagation between signals: Robertson dispersion.

The QL model (Eq. 6) assumes a constant arrival rate ``V_in`` — valid at
an isolated intersection fed by random traffic, but the *second* signal
of a corridor is fed by whatever the first releases: platoons at
saturation flow during green, nothing during red.  This module models
that coupling with the classic Robertson platoon-dispersion recursion
(TRANSYT, 1969):

    q_out(t) = F * q_in(t - t_min) + (1 - F) * q_out(t - dt)
    F = 1 / (1 + alpha * beta * T),    t_min = beta * T

where ``T`` is the cruise travel time between the signals.  The result is
a *periodic, phase-dependent* arrival profile at the downstream signal,
which plugs into :meth:`QueueLengthModel.simulate` to produce
platoon-aware queue predictions and queue-free windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight
from repro.signal.queue import QueueLengthModel, QueueWindow


@dataclass(frozen=True)
class PeriodicRateProfile:
    """A cycle-periodic flow profile ``q(t)`` in vehicles/second.

    Attributes:
        rates_vps: Sampled rates over one cycle.
        dt_s: Sample spacing.
        offset_s: Absolute time of the cycle's first sample (the owning
            light's red onset).
    """

    rates_vps: np.ndarray
    dt_s: float
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rates_vps.ndim != 1 or self.rates_vps.size == 0:
            raise ConfigurationError("profile needs a non-empty 1-D rate array")
        if self.dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt_s}")
        if np.any(self.rates_vps < -1e-12):
            raise ConfigurationError("rates must be non-negative")

    @property
    def cycle_s(self) -> float:
        """The profile's period."""
        return self.rates_vps.size * self.dt_s

    def __call__(self, t_abs: float) -> float:
        """Rate at an absolute time (periodic lookup)."""
        phase = (t_abs - self.offset_s) % self.cycle_s
        return float(self.rates_vps[int(phase / self.dt_s) % self.rates_vps.size])

    def mean_vps(self) -> float:
        """Cycle-average flow (vehicles/second)."""
        return float(self.rates_vps.mean())


def upstream_departure_profile(
    model: QueueLengthModel, arrival_rate_vps: float, dt_s: float = 0.5
) -> PeriodicRateProfile:
    """The flow an intersection releases over one cycle.

    During red nothing leaves.  During green the standing queue discharges
    at the VM model's leaving rate until it empties at ``t_star``; after
    that, arrivals pass straight through at ``V_in``.

    Args:
        model: The upstream signal's QL model (carries light + VM).
        arrival_rate_vps: Upstream arrival rate (vehicles/second).
        dt_s: Output sample spacing.
    """
    if arrival_rate_vps < 0:
        raise ConfigurationError("arrival rate must be >= 0")
    light = model.light
    # Snap the sample spacing so the cycle divides exactly — otherwise the
    # periodic profile's length drifts from the true cycle and flow
    # conservation breaks.
    n = max(int(round(light.cycle_s / dt_s)), 4)
    dt_s = light.cycle_s / n
    t_star = model.clear_time(arrival_rate_vps)
    rates = np.zeros(n)
    for i in range(n):
        t = (i + 0.5) * dt_s
        if light.is_red(light.offset_s + t):
            continue
        if t_star is not None and t >= t_star:
            rates[i] = arrival_rate_vps
        else:
            # Queue still discharging: flow is the (capped) leaving rate.
            discharge = float(model.discharge.leaving_rate(t))
            rates[i] = discharge
    # Conservation: scale so one cycle releases exactly one cycle of
    # arrivals (undersaturated signals store nothing long-term).
    released = rates.sum() * dt_s
    expected = arrival_rate_vps * light.cycle_s
    if released > 0 and expected > 0:
        rates *= expected / released
    return PeriodicRateProfile(rates_vps=rates, dt_s=dt_s, offset_s=light.offset_s)


def robertson_dispersion(
    profile: PeriodicRateProfile,
    travel_time_s: float,
    alpha: float = 0.35,
    beta: float = 0.8,
) -> PeriodicRateProfile:
    """Disperse a departure profile over a downstream link (Robertson).

    Args:
        profile: Upstream departure profile (periodic).
        travel_time_s: Cruise travel time ``T`` over the link.
        alpha: Platoon-dispersion factor (0.35 is the TRANSYT default).
        beta: Travel-time factor (0.8 default).

    Returns:
        The periodic arrival profile at the link's downstream end, in the
        same clock as the input (absolute times; callers index it with
        absolute arrival times, so the travel shift is applied here).
    """
    if travel_time_s <= 0:
        raise ConfigurationError("travel time must be positive")
    if alpha < 0 or beta <= 0:
        raise ConfigurationError("alpha must be >= 0 and beta > 0")
    n = profile.rates_vps.size
    dt = profile.dt_s
    # Classic form: F = 1 / (1 + alpha*beta*T) on one-second steps.  For a
    # dt-sampled profile, keep the impulse response's decay-per-second
    # identical: (1 - f_step) = (1 - F)^dt.
    f_second = 1.0 / (1.0 + alpha * beta * travel_time_s)
    f = 1.0 - (1.0 - f_second) ** dt
    shift = int(round(beta * travel_time_s / dt))
    out = np.zeros(n)
    shifted = np.roll(profile.rates_vps, shift)
    # Periodic steady state: iterate the recursion until it converges.
    for _ in range(200):
        previous = out.copy()
        for i in range(n):
            out[i] = f * shifted[i] + (1.0 - f) * out[i - 1]
        if np.max(np.abs(out - previous)) < 1e-12:
            break
    return PeriodicRateProfile(rates_vps=out, dt_s=dt, offset_s=profile.offset_s)


def thinned(profile: PeriodicRateProfile, fraction: float) -> PeriodicRateProfile:
    """A profile scaled by a survival fraction (turn-off thinning)."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    return PeriodicRateProfile(
        rates_vps=profile.rates_vps * fraction,
        dt_s=profile.dt_s,
        offset_s=profile.offset_s,
    )


def platoon_aware_windows(
    downstream: QueueLengthModel,
    arrival_profile: Callable[[float], float],
    start_s: float,
    horizon_s: float,
    dt_s: float = 0.25,
    settle_cycles: int = 3,
) -> List[QueueWindow]:
    """Queue-free *green* windows under a phase-dependent arrival profile.

    Integrates the downstream queue numerically (the closed form assumes
    constant arrivals), discards the transient settle-in cycles, and
    intersects the zero-queue intervals with the green phases.
    """
    if horizon_s <= 0:
        raise ConfigurationError("horizon must be positive")
    light = downstream.light
    settle = settle_cycles * light.cycle_s
    trace = downstream.simulate(
        settle + horizon_s, lambda t: arrival_profile(start_s - settle + t), dt_s=dt_s
    )
    raw = trace.empty_windows()
    windows: List[QueueWindow] = []
    for window in raw:
        lo_abs = start_s - settle + window.start_s
        hi_abs = start_s - settle + window.end_s
        if hi_abs <= start_s:
            continue
        lo_abs = max(lo_abs, start_s)
        for g_lo, g_hi in light.green_windows(hi_abs - lo_abs + light.cycle_s, lo_abs):
            a, b = max(lo_abs, g_lo), min(hi_abs, g_hi)
            if b - a > dt_s:
                windows.append(QueueWindow(a, b))
    windows.sort(key=lambda w: w.start_s)
    return windows
