"""Microscopic traffic simulation: the SUMO substitute.

The paper validates its plans in SUMO via TraCI; SUMO is not available in
this environment, so this subpackage implements the pieces the evaluation
actually exercises: a single-lane corridor, Krauss/IDM car-following,
signal logic with queue formation and discharge, stop-sign behaviour, a
turning ratio at intersections, and a TraCI-style control facade that
plays a planned velocity profile through a controlled EV subject to
collision avoidance.
"""

from repro.sim.car_following import IdmModel, KraussModel
from repro.sim.vehicle_agent import VehicleAgent
from repro.sim.network import SimNetwork
from repro.sim.simulator import CorridorSimulator, SimulationResult
from repro.sim.traci import TraciFacade
from repro.sim.scenario import Us25Scenario, drive_profile, profile_speed_command
from repro.sim.closed_loop import ClosedLoopDriver, ClosedLoopResult
from repro.sim.detectors import DetectorBank, LoopDetector

__all__ = [
    "ClosedLoopDriver",
    "ClosedLoopResult",
    "CorridorSimulator",
    "DetectorBank",
    "LoopDetector",
    "IdmModel",
    "KraussModel",
    "SimNetwork",
    "SimulationResult",
    "TraciFacade",
    "Us25Scenario",
    "VehicleAgent",
    "drive_profile",
    "profile_speed_command",
]
