"""Fixed-step single-lane corridor simulator.

This is the evaluation substrate standing in for SUMO: background vehicles
enter the corridor according to an arrival process, follow a car-following
model, queue at red lights and at stop signs, and turn off at
intersections with probability ``1 - gamma``.  A controlled EV can be
inserted with a planned velocity profile as its speed command; the
car-following layer overrides the command whenever collision avoidance or
a red light demands it — exactly the interaction the paper reports when
feeding DP profiles into SUMO through TraCI (Fig. 6).

Invariants maintained each step (checked, raising
:class:`~repro.errors.SimulationError` on breach):

* vehicles never overlap (net gap >= 0),
* vehicle order on the lane never changes (no overtaking),
* no vehicle crosses a stop line while its light is red.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.profile import TimedTrace
from repro.errors import ConfigurationError, SimulationError
from repro.sim.car_following import OPEN_ROAD_GAP_M, KraussModel
from repro.sim.events import SimEvent
from repro.sim.network import SimNetwork
from repro.sim.vehicle_agent import VEHICLE_LENGTH_M, VehicleAgent
from repro.route.road import RoadSegment

#: A vehicle is considered queued below this speed (m/s).
QUEUE_SPEED_THRESHOLD = 0.5
#: Gap that still counts as "in the same queue" (m); generous enough to
#: keep a discharging chain intact while gaps open up during acceleration.
QUEUE_CHAIN_GAP_M = 20.0
#: Offset before a stop line where vehicles come to rest (m).
STOP_LINE_OFFSET_M = 1.0


@dataclass
class _EvTracker:
    """Per-controlled-EV bookkeeping during a run."""

    agent: VehicleAgent
    log: List[Tuple[float, float, float]] = field(default_factory=list)
    stops: int = 0
    stop_positions: List[float] = field(default_factory=list)
    was_moving: bool = False


@dataclass
class SimulationResult:
    """Everything recorded during one simulation run.

    Attributes:
        ev_trace: Time-sampled trace of the controlled EV (``None`` when no
            EV was inserted or it never entered).
        queue_counts: Per-signal queue sizes: position -> (times, counts).
        events: Chronological event log.
        vehicles_entered: Number of vehicles inserted.
        vehicles_exited: Number of vehicles that left (end or turned off).
        ev_entered_at_s: EV insertion time (``None`` if not inserted).
        ev_exited_at_s: EV exit time (``None`` if it never finished).
        ev_stops: Number of distinct full stops the EV made while enroute.
        ev_stop_positions: Route position of each stop, in order.
        ev_traces: Per-EV derived traces for multi-EV runs.
        ev_stops_by_id: Per-EV stop counts.
        ev_stop_positions_by_id: Per-EV stop positions.
    """

    ev_trace: Optional[TimedTrace]
    queue_counts: Dict[float, Tuple[np.ndarray, np.ndarray]]
    events: List[SimEvent]
    vehicles_entered: int
    vehicles_exited: int
    ev_entered_at_s: Optional[float]
    ev_exited_at_s: Optional[float]
    ev_stops: int
    ev_stop_positions: List[float] = field(default_factory=list)
    ev_traces: Dict[str, TimedTrace] = field(default_factory=dict)
    ev_stops_by_id: Dict[str, int] = field(default_factory=dict)
    ev_stop_positions_by_id: Dict[str, List[float]] = field(default_factory=dict)

    def ev_signal_stops(
        self,
        road: RoadSegment,
        upstream_m: float = 150.0,
        vehicle_id: Optional[str] = None,
    ) -> int:
        """Stops that happened within ``upstream_m`` of a signal stop line.

        Distinguishes queue/red stops (the ones the proposed system claims
        to eliminate) from the mandatory stop-sign stop.  ``vehicle_id``
        selects an EV in multi-EV runs (default: the primary EV).
        """
        positions = (
            self.ev_stop_positions
            if vehicle_id is None
            else self.ev_stop_positions_by_id.get(vehicle_id, [])
        )
        count = 0
        for pos in positions:
            for site in road.signals:
                if 0.0 <= site.position_m - pos <= upstream_m:
                    count += 1
                    break
        return count


class CorridorSimulator:
    """Single-lane microsimulation over a road corridor.

    Args:
        road: Corridor definition (limits, signs, signals).
        arrivals_s: Sorted background-vehicle arrival times at the corridor
            entrance (absolute seconds).
        car_following: Car-following model shared by background vehicles.
        ev_car_following: Optional distinct model for the controlled EV
            (e.g. a gentler acceleration for a mild human driver); falls
            back to the background model.
        dt_s: Simulation step (s).
        stop_sign_wait_s: Mandatory stop duration at stop signs (s).
        seed: RNG seed for desired-speed heterogeneity and turn decisions.
        desired_speed_mean_frac: Background desired speed as a fraction of
            the local limit (mean of the heterogeneity distribution).
        desired_speed_std_frac: Std-dev of that fraction.
        queue_speed_threshold_ms: A not-yet-crossed vehicle within the
            chain upstream of a stop line counts as queued while slower
            than this.  Matches the QL model's semantics, where vehicles
            remain "in the queue" through the sub-``v_min`` discharge ramp.
    """

    def __init__(
        self,
        road: RoadSegment,
        arrivals_s: Sequence[float],
        car_following: Optional[KraussModel] = None,
        ev_car_following: Optional[KraussModel] = None,
        dt_s: float = 0.5,
        stop_sign_wait_s: float = 2.0,
        seed: int = 0,
        desired_speed_mean_frac: float = 0.97,
        desired_speed_std_frac: float = 0.03,
        queue_speed_threshold_ms: float = 7.0,
    ) -> None:
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        if stop_sign_wait_s < 0:
            raise ConfigurationError("stop-sign wait must be >= 0")
        self.network = SimNetwork(road)
        self.model = car_following if car_following is not None else KraussModel()
        self.ev_model = ev_car_following if ev_car_following is not None else self.model
        self.dt_s = float(dt_s)
        self.stop_sign_wait_s = float(stop_sign_wait_s)
        self._rng = np.random.default_rng(seed)
        self._desired_mean = desired_speed_mean_frac
        self._desired_std = desired_speed_std_frac
        self._queue_speed_threshold = queue_speed_threshold_ms

        self._pending = sorted(float(t) for t in arrivals_s)
        self._pending_index = 0
        self._vehicles: List[VehicleAgent] = []  # sorted by position, descending
        self._time = 0.0
        self._next_id = 0
        self.events: List[SimEvent] = []
        self._entered = 0
        self._exited = 0

        self._queue_times: List[float] = []
        self._queue_counts: Dict[float, List[int]] = {
            site.position_m: [] for site in road.signals
        }

        self._ev_pending: List[Tuple[float, VehicleAgent]] = []
        self._trackers: Dict[str, _EvTracker] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Current simulation time."""
        return self._time

    def schedule_ev(
        self,
        depart_s: float,
        target_speed_at,
        vehicle_id: str = "ev",
    ) -> None:
        """Insert a controlled EV at a future time with a speed command.

        May be called multiple times with distinct ids to study several
        planned EVs sharing the corridor (penetration studies).

        Args:
            depart_s: Insertion time (s).
            target_speed_at: Map from route position (m) to commanded speed
                (m/s) — typically ``profile.speed_at``.
            vehicle_id: Identifier for the EV (must be unique).
        """
        if depart_s < self._time:
            raise ConfigurationError(
                f"EV departure {depart_s} s is in the past (now {self._time} s)"
            )
        if vehicle_id in self._trackers:
            raise ConfigurationError(f"EV id {vehicle_id!r} already scheduled")
        agent = VehicleAgent(
            vehicle_id=vehicle_id,
            position_m=0.0,
            speed_ms=0.0,
            desired_speed=self.network.speed_limit_at(0.0),
            target_speed_at=target_speed_at,
            is_controlled=True,
        )
        self._trackers[vehicle_id] = _EvTracker(agent=agent)
        self._ev_pending.append((float(depart_s), agent))
        self._ev_pending.sort(key=lambda item: item[0])

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def run(self, until_s: float) -> SimulationResult:
        """Advance the simulation until a given time and collect results."""
        while self._time < until_s:
            self.step()
        return self.result()

    def run_until_ev_done(self, hard_limit_s: float = 3600.0) -> SimulationResult:
        """Run until every scheduled controlled EV leaves the corridor."""
        if not self._trackers:
            raise ConfigurationError("no EV scheduled")
        while self._time < hard_limit_s:
            self.step()
            if all(
                tracker.agent.exited_at_s is not None
                for tracker in self._trackers.values()
            ):
                return self.result()
        raise SimulationError(f"EV did not finish within {hard_limit_s} s")

    def step(self) -> None:
        """Advance the world by one time step.

        When the active metrics registry is enabled, each step records its
        wall time into the ``sim.step_s`` histogram and refreshes the
        ``sim.vehicles`` / ``sim.queued`` gauges.
        """
        registry = obs.get_registry()
        if not registry.enabled:
            self._insert_vehicles()
            self._advance_vehicles()
            self._record_queues()
            self._time += self.dt_s
            return
        t0 = _time.perf_counter()
        self._insert_vehicles()
        self._advance_vehicles()
        self._record_queues()
        self._time += self.dt_s
        registry.observe("sim.step_s", _time.perf_counter() - t0)
        registry.inc("sim.steps")
        registry.gauge("sim.vehicles", len(self._vehicles))
        registry.gauge(
            "sim.queued",
            sum(counts[-1] for counts in self._queue_counts.values() if counts),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert_vehicles(self) -> None:
        while self._ev_pending and self._time >= self._ev_pending[0][0]:
            if not self._entry_clear():
                break
            _, agent = self._ev_pending.pop(0)
            agent.entered_at_s = self._time
            self._insert_sorted(agent)
            self._entered += 1
            self.events.append(SimEvent(self._time, agent.vehicle_id, "enter", 0.0))
            # EV insertion has priority: hold background arrivals back this
            # step so EVs are not boxed out at their own departure times.

        while (
            self._pending_index < len(self._pending)
            and self._pending[self._pending_index] <= self._time
        ):
            if not self._entry_clear():
                # Entrance blocked; retry next step (arrival backlog).
                break
            limit = self.network.speed_limit_at(0.0)
            frac = float(
                np.clip(
                    self._rng.normal(self._desired_mean, self._desired_std), 0.3, 1.0
                )
            )
            entry_speed = min(frac * limit, self._safe_entry_speed())
            agent = VehicleAgent(
                vehicle_id=f"veh{self._next_id}",
                position_m=0.0,
                speed_ms=max(entry_speed, 0.0),
                desired_speed=frac * limit,
                entered_at_s=self._time,
            )
            self._next_id += 1
            self._insert_sorted(agent)
            self._entered += 1
            self._pending_index += 1
            self.events.append(SimEvent(self._time, agent.vehicle_id, "enter", 0.0))

    def _entry_clear(self) -> bool:
        if not self._vehicles:
            return True
        last = self._vehicles[-1]
        return last.rear_m > 2.0

    def _safe_entry_speed(self) -> float:
        if not self._vehicles:
            return float("inf")
        last = self._vehicles[-1]
        gap = last.rear_m - 0.0
        return self.model.safe_speed(last.speed_ms, max(gap, 0.0))

    def _insert_sorted(self, agent: VehicleAgent) -> None:
        # New vehicles enter at position 0, i.e. behind everyone.
        self._vehicles.append(agent)

    def _advance_vehicles(self) -> None:
        # Leader-first sequential update: each vehicle reacts to its
        # leader's already-updated state, which (with tau >= dt) keeps the
        # lane collision-free by construction; a final clamp catches
        # residual integration overshoot.
        survivors: List[VehicleAgent] = []
        leader: Optional[VehicleAgent] = None
        for veh in self._vehicles:
            v_next = self._next_speed(veh, leader)
            old_pos = veh.position_m
            new_pos = old_pos + 0.5 * (veh.speed_ms + v_next) * self.dt_s
            if leader is not None:
                max_pos = leader.rear_m - 0.1
                if new_pos > max_pos:
                    if new_pos - max_pos > 1.0:
                        raise SimulationError(
                            f"vehicle {veh.vehicle_id} overlaps its leader by "
                            f"{new_pos - max_pos:.2f} m (t={self._time:.1f} s)"
                        )
                    new_pos = max(max_pos, old_pos)
                    v_next = max(0.0, 2.0 * (new_pos - old_pos) / self.dt_s - veh.speed_ms)
            veh.speed_ms = v_next
            veh.position_m = new_pos
            if veh.is_controlled:
                self._log_ev(veh)

            if not self._handle_crossings(veh, old_pos):
                self._exited += 1
                continue
            if veh.position_m >= self.network.length_m:
                veh.exited_at_s = self._time + self.dt_s
                self._exited += 1
                self.events.append(
                    SimEvent(self._time + self.dt_s, veh.vehicle_id, "exit", veh.position_m)
                )
                continue
            survivors.append(veh)
            leader = veh
        self._vehicles = survivors

    def _emergency_stopping_distance(self, speed: float) -> float:
        """Distance needed to stop under emergency braking.

        Twice the comfortable deceleration (the hard floor inside
        :meth:`KraussModel.next_speed`), with an 8 m/s^2 floor so models
        with gentle *comfortable* braking (IDM) — whose interaction term
        still brakes arbitrarily hard when close — do not commit to
        crossing long before they actually need to.
        """
        decel = max(2.0 * getattr(self.model, "decel_ms2", 4.5), 8.0)
        return speed * speed / (2.0 * decel)

    def _next_speed(self, veh: VehicleAgent, leader: Optional[VehicleAgent]) -> float:
        # Mandatory stop-sign dwell in progress: stay put.
        if veh.stop_sign_wait_s > 0.0:
            veh.stop_sign_wait_s -= self.dt_s
            if veh.stop_sign_wait_s <= 0.0:
                sign = self.network.next_stop_sign_ahead(
                    veh.position_m - 5.0, veh.cleared_stop_signs
                )
                if sign is not None and sign - veh.position_m < 5.0:
                    veh.cleared_stop_signs.add(sign)
                    self.events.append(
                        SimEvent(self._time, veh.vehicle_id, "serve_stop_sign", sign)
                    )
            return 0.0

        desired = min(veh.commanded_speed(), self.network.speed_limit_at(veh.position_m))
        candidates: List[Tuple[float, float]] = []  # (leader speed, gap)

        if leader is not None:
            gap = leader.rear_m - veh.position_m
            candidates.append((leader.speed_ms, gap))

        signal = self.network.next_signal_ahead(veh.position_m, veh.crossed_signals)
        if signal is not None and signal.light.is_red(self._time):
            gap = signal.position_m - STOP_LINE_OFFSET_M - veh.position_m
            if gap < self._emergency_stopping_distance(veh.speed_ms) and veh.speed_ms > 2.0:
                # Dilemma zone: braking cannot make the line, so commit to
                # crossing (the light was green/yellow when this became
                # unavoidable) — mirrors SUMO's behaviour at phase flips.
                veh.crossed_signals.add(signal.position_m)
            else:
                candidates.append((0.0, gap))

        sign_pos = self.network.next_stop_sign_ahead(veh.position_m, veh.cleared_stop_signs)
        if sign_pos is not None:
            gap = sign_pos - STOP_LINE_OFFSET_M - veh.position_m
            # The trigger distance must exceed any model's standstill gap
            # (IDM parks a full jam-gap short of the obstacle).
            if gap < 3.0 and veh.speed_ms < QUEUE_SPEED_THRESHOLD:
                # Arrived at the sign: begin the mandatory dwell.
                veh.stop_sign_wait_s = self.stop_sign_wait_s
                return 0.0
            candidates.append((0.0, gap))

        if not candidates:
            candidates.append((0.0, OPEN_ROAD_GAP_M))
        model = self.ev_model if veh.is_controlled else self.model
        sigma = getattr(model, "sigma", 0.0)
        imperfection = float(self._rng.random()) if sigma > 0 else 0.0
        return min(
            model.next_speed(veh.speed_ms, desired, ls, g, self.dt_s, imperfection)
            for ls, g in candidates
        )

    def _handle_crossings(self, veh: VehicleAgent, old_pos: float) -> bool:
        """Process signal crossings; returns False when the vehicle turned off."""
        for site in self.network.road.signals:
            pos = site.position_m
            if old_pos < pos <= veh.position_m:
                already_committed = pos in veh.crossed_signals
                if not already_committed and site.light.is_red(self._time):
                    raise SimulationError(
                        f"vehicle {veh.vehicle_id} ran the red at {pos:.0f} m "
                        f"(t={self._time:.1f} s)"
                    )
                veh.crossed_signals.add(pos)
                self.events.append(
                    SimEvent(self._time, veh.vehicle_id, "cross_signal", pos)
                )
                if not veh.is_controlled and self._rng.random() > site.turn_ratio:
                    veh.exited_at_s = self._time
                    self.events.append(
                        SimEvent(self._time, veh.vehicle_id, "turn_off", pos)
                    )
                    return False
        return True

    def _log_ev(self, veh: VehicleAgent) -> None:
        tracker = self._trackers[veh.vehicle_id]
        tracker.log.append((self._time + self.dt_s, veh.position_m, veh.speed_ms))
        moving = veh.speed_ms > QUEUE_SPEED_THRESHOLD
        at_terminal = veh.position_m >= self.network.length_m - 15.0
        if tracker.was_moving and not moving and not at_terminal:
            tracker.stops += 1
            tracker.stop_positions.append(veh.position_m)
        tracker.was_moving = moving

    def _record_queues(self) -> None:
        self._queue_times.append(self._time)
        for site in self.network.road.signals:
            pos = site.position_m
            count = 0
            chain_front = pos
            for veh in self._vehicles:
                if veh.position_m > pos or pos in veh.crossed_signals:
                    continue
                if (
                    chain_front - veh.position_m <= QUEUE_CHAIN_GAP_M + veh.length_m
                    and veh.speed_ms < self._queue_speed_threshold
                ):
                    count += 1
                    chain_front = veh.rear_m
                elif veh.position_m < pos - 400.0:
                    break
            self._queue_counts[pos].append(count)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> SimulationResult:
        """Snapshot the collected measurements.

        The legacy single-EV fields describe the *primary* EV (id ``"ev"``
        when present, otherwise the first scheduled); per-EV data for
        multi-EV runs lives in ``ev_traces`` / ``ev_stops_by_id``.
        """
        traces: Dict[str, TimedTrace] = {}
        stops_by_id: Dict[str, int] = {}
        stop_positions_by_id: Dict[str, List[float]] = {}
        for vehicle_id, tracker in self._trackers.items():
            stops_by_id[vehicle_id] = tracker.stops
            stop_positions_by_id[vehicle_id] = list(tracker.stop_positions)
            if len(tracker.log) >= 2:
                log = np.asarray(tracker.log)
                traces[vehicle_id] = TimedTrace(
                    times_s=log[:, 0],
                    speeds_ms=np.maximum(log[:, 2], 0.0),
                    positions_m=log[:, 1],
                )
        primary_id = "ev" if "ev" in self._trackers else next(iter(self._trackers), None)
        primary = self._trackers.get(primary_id) if primary_id is not None else None
        times = np.asarray(self._queue_times)
        queues = {
            pos: (times, np.asarray(counts))
            for pos, counts in self._queue_counts.items()
        }
        return SimulationResult(
            ev_trace=traces.get(primary_id) if primary_id is not None else None,
            queue_counts=queues,
            events=list(self.events),
            vehicles_entered=self._entered,
            vehicles_exited=self._exited,
            ev_entered_at_s=(
                primary.agent.entered_at_s
                if primary is not None and primary.log
                else None
            ),
            ev_exited_at_s=primary.agent.exited_at_s if primary is not None else None,
            ev_stops=primary.stops if primary is not None else 0,
            ev_stop_positions=list(primary.stop_positions) if primary is not None else [],
            ev_traces=traces,
            ev_stops_by_id=stops_by_id,
            ev_stop_positions_by_id=stop_positions_by_id,
        )
