"""Closed-loop driving: replan mid-route when traffic disturbs the plan.

The paper's deployment loop computes one profile per trip; in the
simulator (as in its SUMO runs) the derived trajectory drifts from the
plan whenever car-following or a residual queue interferes.  This module
closes the loop: the EV periodically reports ``(position, speed, time)``
and receives a fresh profile for the remainder of the route, restoring
queue-free window targeting at the signals still ahead — the same
receding-horizon pattern a production TraCI controller would run.

The driver can plan through either a local planner (the original path)
or a :class:`~repro.resilience.ladder.DegradationLadder`, which fronts
the cloud service with a fault-tolerant client and falls back through
cheaper planning tiers when the cloud is unreachable.  With a
fault-free ladder the two paths issue identical solver calls, so their
results are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.planner import DpPlannerBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ArtifactStore
    from repro.resilience.ladder import DegradationLadder
from repro.core.profile import TimedTrace, VelocityProfile
from repro.errors import (
    ConfigurationError,
    InfeasibleProblemError,
    PlanRejectedError,
    PlanningFailedError,
    SimulationTimeoutError,
)
from repro.guard.supervisor import GuardStats, SafetySupervisor
from repro.sim.scenario import Us25Scenario, profile_speed_command
from repro.sim.simulator import SimulationResult

#: Tier label recorded when a plain planner (no ladder) serves a replan.
PLANNER_TIER = "planner"


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop drive.

    Attributes:
        sim: The underlying simulation result (trace, stops, queues).
        replans_attempted: Number of mid-route replanning rounds.
        replans_applied: Rounds that produced a fresh command (at any
            ladder tier).
        replans_infeasible: Rounds where the planner was reachable but
            no feasible plan existed; the previous command was kept.
        replans_failed: Rounds where a service-backed planner failed
            (:class:`~repro.errors.PlanningFailedError` without a
            ladder to absorb it); the previous command was kept.
        replans_rejected: Rounds where the safety supervisor refused the
            fresh plan (direct path only — a ladder absorbs rejections
            by falling to its next tier); the previous command was kept.
        initial_tier: Ladder tier that served the departure plan.
        replan_tiers: Serving tier of every applied replan, in order.
        tier_counts: Applied replans per serving tier.
        guard: Supervisor activity during this drive (``None`` when the
            loop ran unsupervised).
    """

    sim: SimulationResult
    replans_attempted: int
    replans_applied: int
    replans_infeasible: int
    replans_failed: int = 0
    replans_rejected: int = 0
    initial_tier: str = PLANNER_TIER
    replan_tiers: Tuple[str, ...] = ()
    tier_counts: Dict[str, int] = field(default_factory=dict)
    guard: Optional[GuardStats] = None

    @property
    def ev_trace(self) -> Optional[TimedTrace]:
        """The EV's derived trace."""
        return self.sim.ev_trace

    @property
    def degraded_replans(self) -> int:
        """Applied replans served below the primary tier."""
        primary = {PLANNER_TIER, "queue_dp", "queue_dp_mpc"}
        return sum(n for tier, n in self.tier_counts.items() if tier not in primary)

    @property
    def plans_repaired(self) -> int:
        """Plans served after supervisor repair (0 when unsupervised)."""
        return self.guard.plans_repaired if self.guard is not None else 0

    @property
    def plans_rejected(self) -> int:
        """Plans the supervisor refused (0 when unsupervised)."""
        return self.guard.plans_rejected if self.guard is not None else 0

    @property
    def early_replans(self) -> int:
        """Replans forced by divergence monitoring (0 when unsupervised)."""
        return self.guard.early_replans if self.guard is not None else 0

    @property
    def safe_stops(self) -> int:
        """Safe-stop engagements (0 when unsupervised)."""
        return self.guard.safe_stops if self.guard is not None else 0


class ClosedLoopDriver:
    """Drives one EV with periodic mid-route replanning.

    Args:
        scenario: Corridor scenario (traffic, seed, step size).
        planner: Planner used for both the initial plan and replans.
            Mutually exclusive with ``ladder``.
        replan_interval_s: Seconds of simulated time between replans.
        deadline_slack_s: The trip deadline is the initial plan's arrival
            plus this slack; replans must respect the remaining budget.
        ladder: A :class:`~repro.resilience.ladder.DegradationLadder`
            planning through the resilient cloud path with tiered
            fallback; when given, ``planner`` must be ``None``.
        supervisor: A :class:`~repro.guard.supervisor.SafetySupervisor`
            screening every plan before it becomes a vehicle command.
            On the direct path it audits planner output itself; on the
            ladder path it is installed into the ladder (which screens
            each tier) and the driver adds divergence monitoring.  With
            valid inputs and zero faults a supervised drive is
            bit-identical to an unsupervised one.
        store: A shared :class:`~repro.core.engine.ArtifactStore` to
            install into the ladder (mirroring the supervisor pattern),
            so the ladder's local fallback tiers reuse the cloud
            planner's corridor build instead of repeating it.  On the
            direct path the planner already carries its own store (set
            at planner construction), so passing one here is rejected.
    """

    def __init__(
        self,
        scenario: Us25Scenario,
        planner: Optional[DpPlannerBase] = None,
        replan_interval_s: float = 15.0,
        deadline_slack_s: float = 20.0,
        *,
        ladder: Optional["DegradationLadder"] = None,
        supervisor: Optional[SafetySupervisor] = None,
        store: Optional["ArtifactStore"] = None,
    ) -> None:
        if replan_interval_s <= 0:
            raise ConfigurationError("replan interval must be positive")
        if deadline_slack_s < 0:
            raise ConfigurationError("deadline slack must be >= 0")
        if (planner is None) == (ladder is None):
            raise ConfigurationError(
                "provide exactly one of planner (direct) or ladder (resilient)"
            )
        self.scenario = scenario
        self.planner = planner
        self.ladder = ladder
        if supervisor is not None and ladder is not None:
            if ladder.supervisor is None:
                ladder.supervisor = supervisor
            elif ladder.supervisor is not supervisor:
                raise ConfigurationError(
                    "ladder already carries a different supervisor"
                )
        if supervisor is None and ladder is not None:
            supervisor = ladder.supervisor
        self.supervisor = supervisor
        if store is not None:
            if ladder is None:
                raise ConfigurationError(
                    "store= applies to the ladder path; build the direct "
                    "planner with its own store instead"
                )
            if ladder.store is None:
                ladder.store = store
            elif ladder.store is not store:
                raise ConfigurationError("ladder already carries a different store")
        self.store = store if store is not None else (
            ladder.store if ladder is not None else getattr(planner, "store", None)
        )
        self.replan_interval_s = float(replan_interval_s)
        self.deadline_slack_s = float(deadline_slack_s)

    # ------------------------------------------------------------------
    # Planning rounds
    # ------------------------------------------------------------------
    def _screen(self, profile: VelocityProfile, time_s: float) -> VelocityProfile:
        """Audit a direct-path profile before it becomes a command.

        A valid profile is returned as the very same object (keeping
        supervised fault-free drives bit-identical to unsupervised
        ones); a repairable one comes back clamped.

        Raises:
            PlanRejectedError: The profile is irreparable.
        """
        if self.supervisor is None:
            return profile
        constraints = self.planner.signal_constraints(time_s)
        screened, _verdict, _repaired = self.supervisor.screen_profile(
            profile, constraints, tier=PLANNER_TIER
        )
        return screened

    def _initial_plan(self, depart_s: float, cap: Optional[float]):
        """(command, trip_time_s, tier, profile) for the departure plan."""
        if self.ladder is not None:
            tier_plan = self.ladder.plan(depart_s, max_trip_time_s=cap)
            return (
                tier_plan.command,
                tier_plan.trip_time_s,
                tier_plan.tier,
                tier_plan.profile,
            )
        solution = self.planner.plan(start_time_s=depart_s, max_trip_time_s=cap)
        profile = self._screen(solution.profile, depart_s)
        return (
            profile_speed_command(profile),
            solution.trip_time_s,
            PLANNER_TIER,
            profile,
        )

    def _replan_direct(self, position_m, speed_ms, time_s, budget_s):
        """Pre-ladder replanning: energy, then the min-time fallback."""
        try:
            solution = self.planner.replan(
                position_m=position_m,
                speed_ms=speed_ms,
                time_s=time_s,
                max_trip_time_s=budget_s,
            )
        except InfeasibleProblemError:
            solution = self.planner.replan(
                position_m=position_m,
                speed_ms=speed_ms,
                time_s=time_s,
                minimize="time",
            )
        profile = self._screen(solution.profile, time_s)
        return profile_speed_command(profile), PLANNER_TIER, profile

    def run(
        self,
        depart_s: float,
        max_trip_time_s: Optional[float] = None,
        horizon_s: float = 1800.0,
    ) -> ClosedLoopResult:
        """Plan, drive and replan until the EV finishes the corridor.

        Raises:
            SimulationTimeoutError: The EV did not finish within
                ``horizon_s`` of simulated time.
        """
        registry = obs.get_registry()
        baseline = (
            self.supervisor.stats.snapshot() if self.supervisor is not None else None
        )
        cap = max_trip_time_s
        command, trip_time, initial_tier, current_profile = self._initial_plan(
            depart_s, cap
        )
        deadline = depart_s + trip_time + self.deadline_slack_s

        sim = self.scenario._build_simulator(horizon_s)
        sim.schedule_ev(depart_s=depart_s, target_speed_at=command)

        attempted = applied = infeasible = failed = rejected = 0
        tiers: List[str] = []
        route_end = self.scenario.road.length_m
        next_replan = depart_s + self.replan_interval_s
        last_forced = -np.inf
        ev = sim._trackers["ev"].agent
        while sim.time_s < horizon_s:
            sim.step()
            if ev.exited_at_s is not None:
                break
            inserted = bool(sim._trackers["ev"].log)
            if (
                inserted
                and self.supervisor is not None
                and sim.time_s < next_replan
                and sim.time_s - last_forced >= self.replan_interval_s
                and ev.position_m < route_end - 50.0
                and self.supervisor.should_replan(
                    current_profile, ev.position_m, sim.time_s
                )
            ):
                # The trip has drifted past the divergence threshold:
                # pull the next replanning round forward to right now.
                next_replan = sim.time_s
                last_forced = sim.time_s
            if not inserted or sim.time_s < next_replan:
                continue
            next_replan += self.replan_interval_s
            if ev.position_m >= route_end - 50.0 or ev.stop_sign_wait_s > 0:
                continue  # nothing useful left to replan
            attempted += 1
            budget = max(deadline - sim.time_s, 1.0)
            try:
                if self.ladder is not None:
                    tier_plan = self.ladder.replan(
                        position_m=ev.position_m,
                        speed_ms=ev.speed_ms,
                        time_s=sim.time_s,
                        max_trip_time_s=budget,
                    )
                    fresh_command, tier = tier_plan.command, tier_plan.tier
                    fresh_profile = tier_plan.profile
                else:
                    fresh_command, tier, fresh_profile = self._replan_direct(
                        ev.position_m, ev.speed_ms, sim.time_s, budget
                    )
            except InfeasibleProblemError:
                infeasible += 1
                continue
            except PlanRejectedError:
                # The supervisor refused the fresh plan and there is no
                # ladder tier to fall to; the previous (already audited)
                # command stays in force.
                rejected += 1
                registry.inc("closed_loop.replans_rejected")
                continue
            except PlanningFailedError:
                # A reachable service answered "infeasible" (or a
                # service-backed planner failed); keep the previous
                # command and carry on — never abort the drive.
                if self.ladder is not None:
                    infeasible += 1
                else:
                    failed += 1
                    registry.inc("closed_loop.replans_failed")
                continue
            ev.target_speed_at = fresh_command
            current_profile = fresh_profile
            applied += 1
            tiers.append(tier)

        result = sim.result()
        if result.ev_exited_at_s is None:
            raise SimulationTimeoutError(
                f"closed-loop EV did not finish within {horizon_s} s",
                horizon_s=horizon_s,
            )
        counts: Dict[str, int] = {}
        for tier in tiers:
            counts[tier] = counts.get(tier, 0) + 1
        return ClosedLoopResult(
            sim=result,
            replans_attempted=attempted,
            replans_applied=applied,
            replans_infeasible=infeasible,
            replans_failed=failed,
            replans_rejected=rejected,
            initial_tier=initial_tier,
            replan_tiers=tuple(tiers),
            tier_counts=counts,
            guard=(
                self.supervisor.stats.since(baseline)
                if self.supervisor is not None
                else None
            ),
        )
