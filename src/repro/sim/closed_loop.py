"""Closed-loop driving: replan mid-route when traffic disturbs the plan.

The paper's deployment loop computes one profile per trip; in the
simulator (as in its SUMO runs) the derived trajectory drifts from the
plan whenever car-following or a residual queue interferes.  This module
closes the loop: the EV periodically reports ``(position, speed, time)``
and receives a fresh profile for the remainder of the route, restoring
queue-free window targeting at the signals still ahead — the same
receding-horizon pattern a production TraCI controller would run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.planner import DpPlannerBase
from repro.core.profile import TimedTrace
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.sim.scenario import Us25Scenario, profile_speed_command
from repro.sim.simulator import SimulationResult


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop drive.

    Attributes:
        sim: The underlying simulation result (trace, stops, queues).
        replans_attempted: Number of mid-route replanning rounds.
        replans_applied: Rounds that produced a feasible fresh plan.
        replans_infeasible: Rounds where no feasible plan existed and the
            previous command was kept.
    """

    sim: SimulationResult
    replans_attempted: int
    replans_applied: int
    replans_infeasible: int

    @property
    def ev_trace(self) -> Optional[TimedTrace]:
        """The EV's derived trace."""
        return self.sim.ev_trace


class ClosedLoopDriver:
    """Drives one EV with periodic mid-route replanning.

    Args:
        scenario: Corridor scenario (traffic, seed, step size).
        planner: Planner used for both the initial plan and replans.
        replan_interval_s: Seconds of simulated time between replans.
        deadline_slack_s: The trip deadline is the initial plan's arrival
            plus this slack; replans must respect the remaining budget.
    """

    def __init__(
        self,
        scenario: Us25Scenario,
        planner: DpPlannerBase,
        replan_interval_s: float = 15.0,
        deadline_slack_s: float = 20.0,
    ) -> None:
        if replan_interval_s <= 0:
            raise ConfigurationError("replan interval must be positive")
        if deadline_slack_s < 0:
            raise ConfigurationError("deadline slack must be >= 0")
        self.scenario = scenario
        self.planner = planner
        self.replan_interval_s = float(replan_interval_s)
        self.deadline_slack_s = float(deadline_slack_s)

    def run(
        self,
        depart_s: float,
        max_trip_time_s: Optional[float] = None,
        horizon_s: float = 1800.0,
    ) -> ClosedLoopResult:
        """Plan, drive and replan until the EV finishes the corridor."""
        cap = max_trip_time_s
        initial = self.planner.plan(start_time_s=depart_s, max_trip_time_s=cap)
        deadline = depart_s + initial.trip_time_s + self.deadline_slack_s

        sim = self.scenario._build_simulator(horizon_s)
        sim.schedule_ev(
            depart_s=depart_s, target_speed_at=profile_speed_command(initial.profile)
        )

        attempted = applied = infeasible = 0
        route_end = self.scenario.road.length_m
        next_replan = depart_s + self.replan_interval_s
        ev = sim._trackers["ev"].agent
        while sim.time_s < horizon_s:
            sim.step()
            if ev.exited_at_s is not None:
                break
            inserted = bool(sim._trackers["ev"].log)
            if not inserted or sim.time_s < next_replan:
                continue
            next_replan += self.replan_interval_s
            if ev.position_m >= route_end - 50.0 or ev.stop_sign_wait_s > 0:
                continue  # nothing useful left to replan
            attempted += 1
            remaining = deadline - sim.time_s
            try:
                solution = self.planner.replan(
                    position_m=ev.position_m,
                    speed_ms=ev.speed_ms,
                    time_s=sim.time_s,
                    max_trip_time_s=max(remaining, 1.0),
                )
            except InfeasibleProblemError:
                try:
                    solution = self.planner.replan(
                        position_m=ev.position_m,
                        speed_ms=ev.speed_ms,
                        time_s=sim.time_s,
                        minimize="time",
                    )
                except InfeasibleProblemError:
                    infeasible += 1
                    continue
            ev.target_speed_at = profile_speed_command(solution.profile)
            applied += 1

        result = sim.result()
        if result.ev_exited_at_s is None:
            raise InfeasibleProblemError(
                f"closed-loop EV did not finish within {horizon_s} s"
            )
        return ClosedLoopResult(
            sim=result,
            replans_attempted=attempted,
            replans_applied=applied,
            replans_infeasible=infeasible,
        )
