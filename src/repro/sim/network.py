"""Simulation-facing view of a road corridor.

Wraps a :class:`~repro.route.road.RoadSegment` with the bookkeeping the
step loop needs: fast lookup of the next signal or stop sign ahead of a
position, and speed limits along the way.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.route.road import RoadSegment, SignalSite


class SimNetwork:
    """Lookup helpers over a corridor for the simulation step loop."""

    def __init__(self, road: RoadSegment) -> None:
        self.road = road
        self._signal_positions = [site.position_m for site in road.signals]
        self._stop_positions = [sign.position_m for sign in road.stop_signs]

    @property
    def length_m(self) -> float:
        """Corridor length."""
        return self.road.length_m

    def speed_limit_at(self, position_m: float) -> float:
        """Posted maximum speed at a clamped position."""
        clamped = min(max(position_m, 0.0), self.road.length_m)
        return self.road.v_max_at(clamped)

    def next_signal_ahead(
        self, position_m: float, ignore: set
    ) -> Optional[SignalSite]:
        """The first signal strictly ahead whose stop line was not crossed."""
        index = bisect.bisect_right(self._signal_positions, position_m)
        for site in self.road.signals[index:]:
            if site.position_m not in ignore:
                return site
        return None

    def next_stop_sign_ahead(self, position_m: float, ignore: set) -> Optional[float]:
        """The first unserved stop-sign position strictly ahead."""
        index = bisect.bisect_right(self._stop_positions, position_m)
        for pos in self._stop_positions[index:]:
            if pos not in ignore:
                return pos
        return None

    def signal_site(self, position_m: float) -> SignalSite:
        """The signal site at an exact position."""
        for site in self.road.signals:
            if site.position_m == position_m:
                return site
        raise KeyError(f"no signal at {position_m} m")
