"""Ready-made US-25 simulation scenario.

Builds the corridor of Section III-A with volume-driven background traffic
and provides the one-call workflow the evaluation uses: *play a planned
velocity profile through the simulator and observe the derived profile*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.core.profile import TimedTrace, VelocityProfile
from repro.errors import ConfigurationError
from repro.route.road import RoadSegment
from repro.sim.car_following import KraussModel
from repro.sim.simulator import CorridorSimulator, SimulationResult
from repro.traffic.arrival import PoissonArrivalProcess
from repro.traffic.volume import VolumeSeries
from repro.units import SECONDS_PER_HOUR

SpeedCommand = Union[VelocityProfile, Callable[[float], float]]


@dataclass
class Us25Scenario:
    """A reproducible corridor simulation around one EV trip.

    Args:
        road: The corridor (typically
            :func:`~repro.route.us25.us25_greenville_segment`).
        arrival_rate_vph: Background entry volume (vehicles/hour), constant
            over the run.  Matches the paper's measured ``V_in``.
        warmup_s: Simulated time before the EV departs, letting queues
            reach their periodic regime.
        seed: Seed for arrivals, desired speeds and turn decisions.
        dt_s: Simulation step.
        car_following: Car-following model (Krauss by default).
    """

    road: RoadSegment
    arrival_rate_vph: float = 153.0
    warmup_s: float = 300.0
    seed: int = 0
    dt_s: float = 0.5
    car_following: Optional[KraussModel] = None
    ev_car_following: Optional[KraussModel] = None

    def __post_init__(self) -> None:
        if self.arrival_rate_vph < 0:
            raise ConfigurationError("arrival rate must be >= 0")
        if self.warmup_s < 0:
            raise ConfigurationError("warmup must be >= 0")

    def _build_simulator(self, horizon_s: float) -> CorridorSimulator:
        hours = int(np.ceil(horizon_s / SECONDS_PER_HOUR)) + 1
        series = VolumeSeries(np.full(hours, self.arrival_rate_vph))
        arrivals = PoissonArrivalProcess(series, seed=self.seed).sample(0.0, horizon_s)
        return CorridorSimulator(
            road=self.road,
            arrivals_s=arrivals,
            car_following=self.car_following,
            ev_car_following=self.ev_car_following,
            dt_s=self.dt_s,
            seed=self.seed + 1,
        )

    def drive(
        self,
        command: SpeedCommand,
        depart_s: Optional[float] = None,
        horizon_s: float = 1800.0,
    ) -> SimulationResult:
        """Play a speed command through the corridor and record the trip.

        Args:
            command: A :class:`VelocityProfile` (its ``speed_at`` drives
                the EV) or a raw position->speed callable.
            depart_s: EV departure time; defaults to the warmup length.
            horizon_s: Hard simulation cutoff.

        Returns:
            The :class:`SimulationResult`, whose ``ev_trace`` is the
            *derived* profile after car-following and signal interference.
        """
        depart = self.warmup_s if depart_s is None else float(depart_s)
        if isinstance(command, VelocityProfile):
            target = profile_speed_command(command)
        else:
            target = command
        sim = self._build_simulator(horizon_s)
        sim.schedule_ev(depart_s=depart, target_speed_at=target)
        return sim.run_until_ev_done(hard_limit_s=horizon_s)

    def observe_queues(self, duration_s: float) -> SimulationResult:
        """Run without an EV to measure background queue dynamics."""
        sim = self._build_simulator(duration_s)
        return sim.run(duration_s)


def profile_speed_command(
    profile: VelocityProfile, launch_lookahead_m: float = 4.0
) -> Callable[[float], float]:
    """Adapt a planned profile into a position-indexed speed command.

    The raw plan has ``v = 0`` exactly at the source and at stop signs, so
    commanding ``speed_at(position)`` verbatim would leave a stopped EV
    stopped forever.  The command therefore takes the *maximum* of the plan
    speed here and a few metres ahead: during planned decelerations the
    local (higher) speed wins, so tracking is unchanged, while at planned
    stops the positive speed just beyond the stop line re-launches the
    vehicle.  Stop-sign dwells themselves are enforced by the simulator.
    """
    lo = float(profile.positions_m[0])
    hi = float(profile.positions_m[-1])

    def target(position_m: float) -> float:
        here = min(max(position_m, lo), hi)
        # The lookahead is taken from the clamped point, not the raw
        # position: a vehicle slightly *behind* a replanned profile that
        # begins at a stop must still see the positive speed beyond the
        # stop, or it would halt short of the stop line and deadlock.
        ahead = min(here + launch_lookahead_m, hi)
        return max(profile.speed_at(here), profile.speed_at(ahead))

    return target


def drive_profile(
    road: RoadSegment,
    profile: VelocityProfile,
    arrival_rate_vph: float = 153.0,
    depart_s: float = 300.0,
    seed: int = 0,
) -> TimedTrace:
    """One-call helper: derived EV trace for a planned profile.

    Raises:
        ConfigurationError: If the EV never completed the corridor.
    """
    scenario = Us25Scenario(
        road=road, arrival_rate_vph=arrival_rate_vph, warmup_s=depart_s, seed=seed
    )
    result = scenario.drive(profile)
    if result.ev_trace is None:
        raise ConfigurationError("EV never entered the corridor")
    return result.ev_trace
