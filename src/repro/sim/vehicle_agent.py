"""Simulated vehicles: background traffic and the controlled EV."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError

#: Standard simulated vehicle length (m), SUMO's passenger default.
VEHICLE_LENGTH_M = 5.0


@dataclass
class VehicleAgent:
    """One vehicle in the corridor simulation.

    Attributes:
        vehicle_id: Unique identifier.
        position_m: Front-bumper position along the corridor.
        speed_ms: Current speed.
        length_m: Vehicle length.
        desired_speed: Free-flow target speed used when uncontrolled.
        target_speed_at: Optional controller: a map from route position to
            commanded speed.  The car-following layer still caps it for
            safety — this is how the TraCI facade plays a planned profile.
        is_controlled: True for the EV under test.
        entered_at_s: Simulation time the vehicle was inserted.
        stop_sign_wait_s: Remaining mandatory stop-sign wait (s).
        cleared_stop_signs: Positions of stop signs already served.
        crossed_signals: Positions of signals already crossed.
        exited_at_s: Simulation time the vehicle left the corridor.
    """

    vehicle_id: str
    position_m: float
    speed_ms: float
    length_m: float = VEHICLE_LENGTH_M
    desired_speed: float = 16.0
    target_speed_at: Optional[Callable[[float], float]] = None
    is_controlled: bool = False
    entered_at_s: float = 0.0
    stop_sign_wait_s: float = 0.0
    cleared_stop_signs: set = field(default_factory=set)
    crossed_signals: set = field(default_factory=set)
    exited_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.speed_ms < 0:
            raise ConfigurationError(f"speed must be >= 0, got {self.speed_ms}")
        if self.length_m <= 0:
            raise ConfigurationError(f"length must be positive, got {self.length_m}")
        if self.desired_speed <= 0:
            raise ConfigurationError(
                f"desired speed must be positive, got {self.desired_speed}"
            )

    @property
    def rear_m(self) -> float:
        """Rear-bumper position."""
        return self.position_m - self.length_m

    def commanded_speed(self) -> float:
        """The speed this vehicle wants to drive right now."""
        if self.target_speed_at is not None:
            return max(float(self.target_speed_at(self.position_m)), 0.0)
        return self.desired_speed
