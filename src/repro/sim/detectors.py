"""Induction-loop detectors: measure traffic volumes inside the simulator.

The paper's arrival-rate data comes from SCDOT roadside loop detectors;
this module provides the equivalent instrument for the simulation world.
A detector at a route position counts vehicle crossings per aggregation
window and can emit its counts as a
:class:`~repro.traffic.volume.VolumeSeries`, which plugs straight into the
SAE dataset builders — closing the measure → learn → predict → plan loop
entirely inside the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.volume import VolumeSeries
from repro.units import SECONDS_PER_HOUR


@dataclass
class LoopDetector:
    """A point detector counting front-bumper crossings.

    Attributes:
        position_m: Detector location along the corridor.
        window_s: Aggregation window (e.g. 3600 for hourly counts,
            60 for per-minute flows).
    """

    position_m: float
    window_s: float = 60.0
    _counts: Dict[int, int] = field(default_factory=dict, repr=False)
    _last_positions: Dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.position_m < 0:
            raise ConfigurationError(f"position must be >= 0, got {self.position_m}")
        if self.window_s <= 0:
            raise ConfigurationError(f"window must be positive, got {self.window_s}")

    def observe(self, time_s: float, vehicle_id: str, position_m: float) -> None:
        """Feed one vehicle's position sample; detects crossings.

        Call once per vehicle per step (any order).  A crossing is counted
        when a vehicle's position passes the detector between consecutive
        observations.
        """
        previous = self._last_positions.get(vehicle_id)
        self._last_positions[vehicle_id] = position_m
        if previous is None:
            return
        if previous < self.position_m <= position_m:
            window = int(time_s // self.window_s)
            self._counts[window] = self._counts.get(window, 0) + 1

    def forget(self, vehicle_id: str) -> None:
        """Drop a vehicle that left the corridor."""
        self._last_positions.pop(vehicle_id, None)

    def count_in_window(self, window_index: int) -> int:
        """Crossings recorded in one aggregation window."""
        return self._counts.get(window_index, 0)

    def flow_series(self, n_windows: int) -> VolumeSeries:
        """The first ``n_windows`` counts as an hourly-volume series.

        Counts are scaled from the aggregation window to vehicles/hour.
        """
        if n_windows <= 0:
            raise ConfigurationError(f"n_windows must be positive, got {n_windows}")
        scale = SECONDS_PER_HOUR / self.window_s
        volumes = np.asarray(
            [self.count_in_window(i) * scale for i in range(n_windows)], dtype=float
        )
        return VolumeSeries(volumes)

    def mean_flow_vph(self, n_windows: int) -> float:
        """Mean measured flow (vehicles/hour) over the first windows."""
        return float(np.mean(self.flow_series(n_windows).volumes_vph))


class DetectorBank:
    """Attaches detectors to a :class:`~repro.sim.simulator.CorridorSimulator`.

    Usage::

        bank = DetectorBank([LoopDetector(1800.0, window_s=60.0)])
        for _ in range(steps):
            sim.step()
            bank.sample(sim)
    """

    def __init__(self, detectors: List[LoopDetector]) -> None:
        if not detectors:
            raise ConfigurationError("need at least one detector")
        self.detectors = list(detectors)

    def sample(self, simulator) -> None:
        """Observe every vehicle currently on the corridor."""
        t = simulator.time_s
        live = set()
        for vehicle in simulator._vehicles:
            live.add(vehicle.vehicle_id)
            for detector in self.detectors:
                detector.observe(t, vehicle.vehicle_id, vehicle.position_m)
        for detector in self.detectors:
            gone = set(detector._last_positions) - live
            for vehicle_id in gone:
                detector.forget(vehicle_id)
