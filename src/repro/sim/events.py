"""Typed event records emitted by the corridor simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimEvent:
    """A discrete simulation event.

    Attributes:
        time_s: Simulation time of the event.
        vehicle_id: Vehicle involved.
        kind: One of ``"enter"``, ``"exit"``, ``"turn_off"``,
            ``"cross_signal"``, ``"serve_stop_sign"``, ``"spawn_delayed"``.
        position_m: Where it happened.
    """

    time_s: float
    vehicle_id: str
    kind: str
    position_m: float

    def __str__(self) -> str:
        return f"[{self.time_s:8.1f}s] {self.kind:<15} {self.vehicle_id} @ {self.position_m:.1f} m"
