"""TraCI-style control facade over the corridor simulator.

The paper drives SUMO through TraCI: subscribe to the EV, command its
speed, observe the produced trajectory.  :class:`TraciFacade` offers the
same contract over :class:`~repro.sim.simulator.CorridorSimulator` with
TraCI's verb vocabulary, so experiment code reads like the original
workflow.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.simulator import CorridorSimulator, SimulationResult


class TraciFacade:
    """Imperative step/inspect/command interface over the simulator."""

    def __init__(self, simulator: CorridorSimulator) -> None:
        self._sim = simulator

    # ------------------------------------------------------------------
    # simulation.*
    # ------------------------------------------------------------------
    def simulation_step(self) -> float:
        """Advance one step; returns the new simulation time."""
        self._sim.step()
        return self._sim.time_s

    def simulation_time(self) -> float:
        """Current simulation time (s)."""
        return self._sim.time_s

    # ------------------------------------------------------------------
    # vehicle.*
    # ------------------------------------------------------------------
    def _find(self, vehicle_id: str):
        for veh in self._sim._vehicles:
            if veh.vehicle_id == vehicle_id:
                return veh
        raise SimulationError(f"vehicle {vehicle_id!r} is not in the simulation")

    def vehicle_id_list(self) -> Tuple[str, ...]:
        """Identifiers of all vehicles currently on the corridor."""
        return tuple(veh.vehicle_id for veh in self._sim._vehicles)

    def vehicle_get_speed(self, vehicle_id: str) -> float:
        """Current speed of a vehicle (m/s)."""
        return self._find(vehicle_id).speed_ms

    def vehicle_get_position(self, vehicle_id: str) -> float:
        """Current front-bumper position of a vehicle (m)."""
        return self._find(vehicle_id).position_m

    def vehicle_set_speed_profile(
        self, vehicle_id: str, target_speed_at: Callable[[float], float]
    ) -> None:
        """Attach a position-indexed speed command to a vehicle.

        The car-following layer still overrides the command for collision
        avoidance and red lights, exactly like a TraCI ``setSpeed`` on a
        vehicle with safety checks enabled.
        """
        self._find(vehicle_id).target_speed_at = target_speed_at

    # ------------------------------------------------------------------
    # trafficlight.*
    # ------------------------------------------------------------------
    def trafficlight_get_state(self, position_m: float) -> str:
        """``"r"`` or ``"g"`` for the signal at a stop-line position."""
        site = self._sim.network.signal_site(position_m)
        return "g" if site.light.is_green(self._sim.time_s) else "r"

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self) -> SimulationResult:
        """Collected measurements so far."""
        return self._sim.result()
