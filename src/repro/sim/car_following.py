"""Car-following models: Krauss (SUMO's default) and IDM.

Both models answer one question per step: given my speed, my desired
speed, and the gap/speed of the obstacle ahead (a leader vehicle, a red
signal's stop line, or nothing), what speed may I drive in the next step
without risking a collision?

The Krauss model is the default because the paper's SUMO runs used it;
IDM is provided for the car-following ablation bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Gap considered "no leader in sight".
OPEN_ROAD_GAP_M = 1.0e9


@dataclass(frozen=True)
class KraussModel:
    """Krauss 1998 stochastic-free car-following (SUMO's ``krauss`` core).

    Attributes:
        accel_ms2: Maximum acceleration ``a``.
        decel_ms2: Comfortable deceleration ``b`` (positive).
        tau_s: Driver reaction time.
        sigma: Driver imperfection in [0, 1]; 0 disables the random
            slow-down term (deterministic runs).
    """

    accel_ms2: float = 2.5
    decel_ms2: float = 4.5
    tau_s: float = 1.0
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.accel_ms2 <= 0 or self.decel_ms2 <= 0 or self.tau_s <= 0:
            raise ConfigurationError("accel, decel and tau must be positive")
        if not 0.0 <= self.sigma <= 1.0:
            raise ConfigurationError(f"sigma must be in [0, 1], got {self.sigma}")

    def safe_speed(self, leader_speed: float, gap_m: float) -> float:
        """Krauss safe speed for a gap to a leader moving at ``leader_speed``.

        The exact stopping-safe bound: driving at ``v_safe`` for the
        reaction time ``tau`` and then braking at ``b`` never closes more
        than the gap plus the leader's own stopping distance:

            v_safe = -b*tau + sqrt(b^2 tau^2 + v_l^2 + 2 b g)

        This is the collision-free core of SUMO's ``krauss`` model; it
        degrades to 0 as the gap closes on a stationary obstacle.
        """
        if gap_m >= OPEN_ROAD_GAP_M:
            return float("inf")
        gap_m = max(gap_m, 0.0)
        b, tau = self.decel_ms2, self.tau_s
        v_safe = -b * tau + math.sqrt(
            b * b * tau * tau + leader_speed * leader_speed + 2.0 * b * gap_m
        )
        return max(v_safe, 0.0)

    def next_speed(
        self,
        speed: float,
        desired_speed: float,
        leader_speed: float,
        gap_m: float,
        dt_s: float,
        imperfection: float = 0.0,
    ) -> float:
        """Speed for the next step.

        Args:
            speed: Current speed (m/s).
            desired_speed: Free-flow target (speed limit or plan).
            leader_speed: Speed of the obstacle ahead (m/s).
            gap_m: Net gap to the obstacle (m); ``OPEN_ROAD_GAP_M`` for none.
            dt_s: Step length (s).
            imperfection: A uniform [0, 1] sample for the sigma term; pass
                0 for deterministic behaviour.
        """
        v_des = min(speed + self.accel_ms2 * dt_s, desired_speed)
        v_next = min(v_des, self.safe_speed(leader_speed, gap_m))
        # Never require braking harder than the emergency bound.
        v_next = max(v_next, speed - self.decel_ms2 * dt_s * 2.0)
        if self.sigma > 0.0:
            v_next -= self.sigma * imperfection * self.accel_ms2 * dt_s
        return max(v_next, 0.0)


@dataclass(frozen=True)
class IdmModel:
    """Intelligent Driver Model (Treiber 2000).

    Attributes:
        accel_ms2: Maximum acceleration ``a``.
        decel_ms2: Comfortable deceleration ``b`` (positive).
        headway_s: Desired time headway ``T``.
        min_gap_m: Jam distance ``s0``.
        delta: Free-flow exponent.
    """

    accel_ms2: float = 2.5
    decel_ms2: float = 2.5
    headway_s: float = 1.2
    min_gap_m: float = 2.0
    delta: float = 4.0

    def __post_init__(self) -> None:
        if min(self.accel_ms2, self.decel_ms2, self.headway_s, self.min_gap_m) <= 0:
            raise ConfigurationError("IDM parameters must be positive")

    def safe_speed(self, leader_speed: float, gap_m: float) -> float:
        """Conservative stopping-safe speed for spawn checks.

        IDM regulates spacing through its acceleration term; this bound is
        only used when inserting vehicles, mirroring the Krauss formula
        with the IDM's own braking capability and headway.
        """
        if gap_m >= OPEN_ROAD_GAP_M:
            return float("inf")
        gap_m = max(gap_m, 0.0)
        b, tau = self.decel_ms2, self.headway_s
        v_safe = -b * tau + math.sqrt(
            b * b * tau * tau + leader_speed * leader_speed + 2.0 * b * gap_m
        )
        return max(v_safe, 0.0)

    def acceleration(
        self, speed: float, desired_speed: float, leader_speed: float, gap_m: float
    ) -> float:
        """IDM acceleration for the current situation."""
        if desired_speed <= 0:
            return -self.decel_ms2
        free = 1.0 - (speed / desired_speed) ** self.delta
        if gap_m >= OPEN_ROAD_GAP_M:
            return self.accel_ms2 * free
        gap_m = max(gap_m, 0.1)
        dv = speed - leader_speed
        s_star = self.min_gap_m + max(
            0.0,
            speed * self.headway_s
            + speed * dv / (2.0 * math.sqrt(self.accel_ms2 * self.decel_ms2)),
        )
        return self.accel_ms2 * (free - (s_star / gap_m) ** 2)

    def next_speed(
        self,
        speed: float,
        desired_speed: float,
        leader_speed: float,
        gap_m: float,
        dt_s: float,
        imperfection: float = 0.0,
    ) -> float:
        """Speed for the next step (Euler integration, floored at zero).

        The ``imperfection`` argument is accepted for interface parity
        with :class:`KraussModel` and ignored (IDM is deterministic).
        """
        accel = self.acceleration(speed, desired_speed, leader_speed, gap_m)
        return max(speed + accel * dt_s, 0.0)
