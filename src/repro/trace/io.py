"""CSV persistence for time-sampled driving traces.

Format: a header row then ``time_s,position_m,speed_ms`` per sample —
the shape GPS/CAN trace exports typically take.  Loading validates the
rows against the trace contract (finite values, strictly increasing
times, non-decreasing positions, sane speeds) and reports malformed
input with file/row context instead of a bare ``ValueError`` from a
``float()`` call.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.core.profile import TimedTrace
from repro.errors import InputValidationError
from repro.guard.contracts import RepairReport, validate_trace_rows

_HEADER = ["time_s", "position_m", "speed_ms"]


def save_trace_csv(trace: TimedTrace, path: Union[str, Path]) -> None:
    """Write a trace to CSV (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, s, v in zip(trace.times_s, trace.positions_m, trace.speeds_ms):
            writer.writerow([f"{t:.3f}", f"{s:.3f}", f"{v:.4f}"])


def _read_rows(path: Union[str, Path]):
    source = str(path)
    try:
        handle = Path(path).open()
    except OSError as exc:
        raise InputValidationError(f"cannot read file: {exc}", source=source) from exc
    with handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise InputValidationError(
                f"unexpected trace header {header!r} (want {_HEADER})",
                source=source,
                field="header",
            )
        rows = []
        for i, raw in enumerate(reader):
            if len(raw) != 3:
                raise InputValidationError(
                    f"expected 3 columns, got {len(raw)}", source=source, row=i
                )
            try:
                rows.append((float(raw[0]), float(raw[1]), float(raw[2])))
            except ValueError as exc:
                raise InputValidationError(
                    f"non-numeric sample {raw!r}", source=source, row=i
                ) from exc
    return rows, source


def load_trace_csv(path: Union[str, Path], repair: bool = False) -> TimedTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Args:
        path: The CSV file.
        repair: Drop/clamp salvageable rows instead of rejecting.

    Raises:
        InputValidationError: On a missing file, malformed header,
            non-numeric cell, or any trace-contract violation — the
            error carries the file and the offending row.
    """
    rows, source = _read_rows(path)
    rows, _report = validate_trace_rows(rows, source=source, repair=repair)
    data = np.asarray(rows)
    return TimedTrace(times_s=data[:, 0], speeds_ms=data[:, 2], positions_m=data[:, 1])


def load_trace_csv_repaired(
    path: Union[str, Path],
) -> Tuple[TimedTrace, RepairReport]:
    """Like :func:`load_trace_csv` with repairs on, returning the report."""
    rows, source = _read_rows(path)
    rows, report = validate_trace_rows(rows, source=source, repair=True)
    data = np.asarray(rows)
    trace = TimedTrace(times_s=data[:, 0], speeds_ms=data[:, 2], positions_m=data[:, 1])
    return trace, report
