"""CSV persistence for time-sampled driving traces.

Format: a header row then ``time_s,position_m,speed_ms`` per sample —
the shape GPS/CAN trace exports typically take.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.profile import TimedTrace

_HEADER = ["time_s", "position_m", "speed_ms"]


def save_trace_csv(trace: TimedTrace, path: Union[str, Path]) -> None:
    """Write a trace to CSV (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, s, v in zip(trace.times_s, trace.positions_m, trace.speeds_ms):
            writer.writerow([f"{t:.3f}", f"{s:.3f}", f"{v:.4f}"])


def load_trace_csv(path: Union[str, Path]) -> TimedTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Raises:
        ValueError: On a malformed header or empty file.
    """
    source = Path(path)
    with source.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unexpected trace header {header!r} in {source}")
        rows = [(float(r[0]), float(r[1]), float(r[2])) for r in reader]
    if len(rows) < 2:
        raise ValueError(f"trace {source} has fewer than two samples")
    data = np.asarray(rows)
    return TimedTrace(times_s=data[:, 0], speeds_ms=data[:, 2], positions_m=data[:, 1])
