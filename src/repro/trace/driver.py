"""Style-parameterized human driving profiles.

A :class:`DriverStyle` captures the handful of knobs that distinguish the
paper's two recorded drives: cruise speed relative to the posted limits
and acceleration aggressiveness.  :func:`synthesize_trace` plays such a
driver through the corridor simulator, so the resulting profile includes
everything a recorded trace would — launch ramps, the stop-sign dwell, and
red-light stops whenever the uninformed human hits a bad phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import TimedTrace
from repro.errors import ConfigurationError, SimulationError
from repro.route.road import RoadSegment
from repro.sim.car_following import KraussModel
from repro.sim.scenario import Us25Scenario


@dataclass(frozen=True)
class DriverStyle:
    """Human driving-style parameters.

    Attributes:
        name: Label used in reports.
        cruise_frac: Cruise target as a fraction of the local maximum
            limit.
        accel_ms2: Typical peak acceleration.
        decel_ms2: Comfortable braking deceleration.
        imperfection: Krauss sigma in [0, 1] — the pedal dither real
            drivers exhibit; it is what makes human traces measurably less
            efficient than a smooth planner at the same average speed.
    """

    name: str
    cruise_frac: float
    accel_ms2: float
    decel_ms2: float
    imperfection: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.cruise_frac <= 1.0:
            raise ConfigurationError(f"cruise_frac must be in (0, 1], got {self.cruise_frac}")
        if self.accel_ms2 <= 0 or self.decel_ms2 <= 0:
            raise ConfigurationError("accelerations must be positive")
        if not 0.0 <= self.imperfection <= 1.0:
            raise ConfigurationError(f"imperfection must be in [0, 1], got {self.imperfection}")


def mild_driver() -> DriverStyle:
    """The paper's *mild* profile: gentle pedal, unhurried cruise.

    Mild driving differs from fast driving primarily in acceleration
    aggressiveness and a moderately lower cruise speed (Fig. 7a shows both
    recorded profiles reaching highway speeds; the trip-time gap comes
    from the launch ramps and the cruise margin, not from crawling).
    """
    return DriverStyle(
        name="mild", cruise_frac=0.88, accel_ms2=1.0, decel_ms2=2.0, imperfection=0.60
    )


def fast_driver() -> DriverStyle:
    """The paper's *fast* profile: at the maximum limit, hard pedal."""
    return DriverStyle(
        name="fast", cruise_frac=1.0, accel_ms2=2.4, decel_ms2=4.0, imperfection=0.35
    )


def synthesize_trace(
    road: RoadSegment,
    style: DriverStyle,
    arrival_rate_vph: float = 153.0,
    depart_s: float = 300.0,
    seed: int = 0,
    horizon_s: float = 2400.0,
) -> TimedTrace:
    """Drive a styled human through the corridor; return the recorded trace.

    Args:
        road: Corridor to drive.
        style: Driving style.
        arrival_rate_vph: Background traffic volume.
        depart_s: Departure time (determines signal phasing en route).
        seed: Simulation seed.
        horizon_s: Hard simulation cutoff.

    Raises:
        SimulationError: If the drive does not complete in the horizon.
    """
    ev_model = KraussModel(
        accel_ms2=style.accel_ms2, decel_ms2=style.decel_ms2, sigma=style.imperfection
    )
    scenario = Us25Scenario(
        road=road,
        arrival_rate_vph=arrival_rate_vph,
        warmup_s=depart_s,
        seed=seed,
        ev_car_following=ev_model,
    )

    def cruise(position_m: float) -> float:
        clamped = min(max(position_m, 0.0), road.length_m)
        return style.cruise_frac * road.v_max_at(clamped)

    result = scenario.drive(cruise, depart_s=depart_s, horizon_s=horizon_s)
    if result.ev_trace is None:
        raise SimulationError(f"{style.name} drive never entered the corridor")
    return result.ev_trace
