"""Human driving-trace synthesis and trace IO.

The paper records two human drives over the US-25 section — a *mild*
profile (gentle acceleration, tracks the minimum limit) and a *fast*
profile (hard acceleration, tracks the maximum limit).  Those recordings
are not public, so :mod:`repro.trace.driver` synthesizes equivalents by
driving style-parameterized agents through the corridor simulator, which
reproduces the qualitative shapes of Fig. 7a including signal stops.
"""

from repro.trace.driver import DriverStyle, fast_driver, mild_driver, synthesize_trace
from repro.trace.io import load_trace_csv, save_trace_csv

__all__ = [
    "DriverStyle",
    "fast_driver",
    "load_trace_csv",
    "mild_driver",
    "save_trace_csv",
    "synthesize_trace",
]
