"""Motor/drivetrain efficiency maps: constant and interpolated.

The paper folds all electrical losses into one constant
``eta_1 * eta_2`` (Eq. 2/3).  Real drivetrains are not constant: motor
efficiency varies with speed and load, with a broad high-efficiency
plateau at mid speed / mid load and steep fall-off near standstill and
at peak torque (the map-in-the-optimizer argument of the co-optimization
literature in PAPERS.md).  This module provides both:

* :class:`ConstantEfficiencyMap` — reproduces the paper's constant
  exactly.  A :class:`~repro.vehicle.params.VehicleParams` with *no*
  map behaves identically (bit for bit) to one carrying a constant map
  at ``drivetrain_efficiency``, and the two hash to the same corridor
  digest — they are the same physics.
* :class:`InterpolatedEfficiencyMap` — bilinear interpolation of a
  measured-style efficiency grid over (vehicle speed, normalized load
  ``|P_mech| / rated_power``), clamped at the grid edges.  Fully
  vectorized; the DP's energy tables price whole velocity-grid matrices
  through it with no per-sample Python.

Maps are frozen dataclasses over plain tuples so they pickle across the
process-parallel dispatch boundary and render to stable digest
fragments; the numpy views used for interpolation are cached lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ConstantEfficiencyMap",
    "InterpolatedEfficiencyMap",
    "MotorEfficiencyMap",
]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class ConstantEfficiencyMap:
    """The paper's model: one combined efficiency everywhere.

    Attributes:
        efficiency: Combined drivetrain efficiency ``eta_1 * eta_2``.
    """

    efficiency: float

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    def eta(self, speed: ArrayLike, mech_power: ArrayLike) -> float:
        """The combined efficiency — a scalar, independent of operating point.

        Returning the bare float (not an array) keeps the caller's
        arithmetic bit-identical to the historical constant-efficiency
        expressions.
        """
        return self.efficiency

    def canonical_parts(self) -> Iterator[str]:
        """Stable digest fragments; equal constants render equal."""
        yield f"effmap:constant,{float(self.efficiency)!r}"


@dataclass(frozen=True)
class InterpolatedEfficiencyMap:
    """Bilinear speed x load efficiency surface.

    Attributes:
        speeds_ms: Strictly increasing speed breakpoints (m/s).
        loads: Strictly increasing normalized-load breakpoints
            (``|P_mech| / rated_power_w``, dimensionless, >= 0).
        eta_grid: Efficiency at each (speed, load) breakpoint pair, as a
            tuple of rows — ``eta_grid[i][k]`` is the efficiency at
            ``speeds_ms[i]``, ``loads[k]``; every value in (0, 1].
        rated_power_w: Power normalizing the load axis (W).

    Queries outside the breakpoint hull clamp to the nearest edge, so
    the map is total over every physical operating point.
    """

    speeds_ms: Tuple[float, ...]
    loads: Tuple[float, ...]
    eta_grid: Tuple[Tuple[float, ...], ...]
    rated_power_w: float
    _arrays: tuple = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "speeds_ms", tuple(float(v) for v in self.speeds_ms))
        object.__setattr__(self, "loads", tuple(float(v) for v in self.loads))
        object.__setattr__(
            self,
            "eta_grid",
            tuple(tuple(float(e) for e in row) for row in self.eta_grid),
        )
        if len(self.speeds_ms) < 2 or len(self.loads) < 2:
            raise ConfigurationError("the map needs >= 2 breakpoints per axis")
        for name, axis in (("speed", self.speeds_ms), ("load", self.loads)):
            if any(nxt <= prev for prev, nxt in zip(axis[:-1], axis[1:])):
                raise ConfigurationError(
                    f"{name} breakpoints must be strictly increasing, got {axis}"
                )
        if self.speeds_ms[0] < 0 or self.loads[0] < 0:
            raise ConfigurationError("breakpoints must be >= 0")
        if len(self.eta_grid) != len(self.speeds_ms) or any(
            len(row) != len(self.loads) for row in self.eta_grid
        ):
            raise ConfigurationError(
                "eta grid shape must be (len(speeds_ms), len(loads))"
            )
        if any(not 0.0 < e <= 1.0 for row in self.eta_grid for e in row):
            raise ConfigurationError("every map efficiency must be in (0, 1]")
        if self.rated_power_w <= 0:
            raise ConfigurationError(
                f"rated power must be positive, got {self.rated_power_w}"
            )
        object.__setattr__(self, "_arrays", None)

    @classmethod
    def from_arrays(
        cls,
        speeds_ms: np.ndarray,
        loads: np.ndarray,
        eta_grid: np.ndarray,
        rated_power_w: float,
    ) -> "InterpolatedEfficiencyMap":
        """Rebuild a map from plain arrays (the shared-memory attach path)."""
        return cls(
            speeds_ms=tuple(float(v) for v in np.asarray(speeds_ms, dtype=float)),
            loads=tuple(float(v) for v in np.asarray(loads, dtype=float)),
            eta_grid=tuple(
                tuple(float(e) for e in row)
                for row in np.asarray(eta_grid, dtype=float)
            ),
            rated_power_w=float(rated_power_w),
        )

    def _views(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached numpy views over the tuple payload."""
        cached = self._arrays
        if cached is None:
            cached = (
                np.asarray(self.speeds_ms, dtype=float),
                np.asarray(self.loads, dtype=float),
                np.asarray(self.eta_grid, dtype=float),
            )
            object.__setattr__(self, "_arrays", cached)
        return cached

    @property
    def speed_array(self) -> np.ndarray:
        """Speed breakpoints as an array (shared-memory export)."""
        return self._views()[0]

    @property
    def load_array(self) -> np.ndarray:
        """Load breakpoints as an array (shared-memory export)."""
        return self._views()[1]

    @property
    def eta_array(self) -> np.ndarray:
        """The efficiency grid as an array (shared-memory export)."""
        return self._views()[2]

    def eta(self, speed: ArrayLike, mech_power: ArrayLike) -> np.ndarray:
        """Bilinearly interpolated efficiency at (speed, |P|/rated).

        Accepts scalars or arrays (broadcast together); returns an array
        of the broadcast shape.  Values are clamped into the breakpoint
        hull, so the result is always inside the grid's (0, 1] range.
        """
        sb, lb, grid = self._views()
        s_in, p_in = np.broadcast_arrays(
            np.asarray(speed, dtype=float), np.asarray(mech_power, dtype=float)
        )
        s = np.clip(s_in, sb[0], sb[-1])
        load = np.clip(np.abs(p_in) / self.rated_power_w, lb[0], lb[-1])
        si = np.clip(np.searchsorted(sb, s, side="right") - 1, 0, sb.size - 2)
        li = np.clip(np.searchsorted(lb, load, side="right") - 1, 0, lb.size - 2)
        ws = (s - sb[si]) / (sb[si + 1] - sb[si])
        wl = (load - lb[li]) / (lb[li + 1] - lb[li])
        return (
            (1.0 - ws) * (1.0 - wl) * grid[si, li]
            + ws * (1.0 - wl) * grid[si + 1, li]
            + (1.0 - ws) * wl * grid[si, li + 1]
            + ws * wl * grid[si + 1, li + 1]
        )

    def canonical_parts(self) -> Iterator[str]:
        """Stable digest fragments covering every breakpoint and value."""
        yield f"effmap:interp,{float(self.rated_power_w)!r}"
        yield "effmap.speeds:" + ",".join(repr(v) for v in self.speeds_ms)
        yield "effmap.loads:" + ",".join(repr(v) for v in self.loads)
        for row in self.eta_grid:
            yield "effmap.eta:" + ",".join(repr(e) for e in row)


#: Anything with a vectorized ``eta(speed, mech_power)`` and digest
#: ``canonical_parts()`` — the contract :class:`VehicleParams` expects.
MotorEfficiencyMap = Union[ConstantEfficiencyMap, InterpolatedEfficiencyMap]
