"""Battery-wear accounting for velocity profiles.

The paper's introduction motivates velocity optimization partly through
battery longevity: "frequent charging/discharging reduces battery
lifetime".  This module quantifies that effect so the evaluation can show
the proposed profiles are gentler on the pack, not just cheaper in energy.

The model is the standard throughput-based (Ah-processed) wear estimate
with a C-rate stress multiplier — every coulomb moved through the pack
costs a slice of its cycle life, and coulombs moved at high current cost
proportionally more:

    wear = integral  |I(t)| * stress(|I(t)| / I_1C)  dt  /  (2 * Q_rated * N_cycles)

where ``stress(c) = 1 + alpha * max(c - 1, 0)`` penalizes currents above
1C.  Regenerative current counts as throughput too — recuperation cycles
the cells exactly like discharge does, which is why stop-and-go profiles
age packs faster at equal net energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams


@dataclass(frozen=True)
class WearModelParams:
    """Cycle-life parameters of the traction pack.

    Attributes:
        rated_cycles: Full equivalent cycles to end-of-life at 1C.
        c_rate_stress: Extra wear per unit of C-rate above 1C (``alpha``).
    """

    rated_cycles: float = 1500.0
    c_rate_stress: float = 0.5

    def __post_init__(self) -> None:
        if self.rated_cycles <= 0:
            raise ConfigurationError(f"rated cycles must be positive, got {self.rated_cycles}")
        if self.c_rate_stress < 0:
            raise ConfigurationError(f"stress factor must be >= 0, got {self.c_rate_stress}")


@dataclass(frozen=True)
class WearReport:
    """Wear figures for one trip.

    Attributes:
        throughput_ah: Total charge processed (|draws| + |regen|, Ah).
        stress_weighted_ah: Throughput after C-rate stress weighting (Ah).
        equivalent_full_cycles: Stress-weighted throughput over ``2 * Q``.
        life_fraction: Share of the pack's cycle life consumed.
        peak_c_rate: Highest instantaneous |current| / 1C seen.
    """

    throughput_ah: float
    stress_weighted_ah: float
    equivalent_full_cycles: float
    life_fraction: float
    peak_c_rate: float

    @property
    def life_fraction_ppm(self) -> float:
        """Life consumption in parts-per-million (readable trip scale)."""
        return self.life_fraction * 1.0e6


class BatteryWearModel:
    """Estimates pack wear caused by a driving profile.

    Args:
        vehicle: EV parameters (paper defaults when ``None``).
        params: Cycle-life parameters.
    """

    def __init__(
        self,
        vehicle: Optional[VehicleParams] = None,
        params: WearModelParams = WearModelParams(),
    ) -> None:
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.params = params
        self._model = LongitudinalModel(self.vehicle)

    def assess(
        self,
        times_s: Sequence[float],
        speeds_ms: Sequence[float],
    ) -> WearReport:
        """Wear caused by a time-sampled speed trace.

        Args:
            times_s: Strictly increasing sample times.
            speeds_ms: Speeds at the samples (m/s).

        Raises:
            ValueError: On inconsistent or non-physical inputs.
        """
        t = np.asarray(times_s, dtype=float)
        v = np.asarray(speeds_ms, dtype=float)
        if t.shape != v.shape or t.size < 2:
            raise ValueError("need matching arrays with at least two samples")
        dt = np.diff(t)
        if np.any(dt <= 0):
            raise ValueError("sample times must be strictly increasing")
        if np.any(v < 0):
            raise ValueError("speeds must be non-negative")

        v_mid = 0.5 * (v[:-1] + v[1:])
        accel = np.diff(v) / dt
        current_a = np.abs(
            np.asarray(self._model.consumption_rate_a(v_mid, accel), dtype=float)
        )
        capacity = self.vehicle.battery.capacity_ah
        c_rate = current_a / capacity
        stress = 1.0 + self.params.c_rate_stress * np.maximum(c_rate - 1.0, 0.0)

        throughput = float(np.sum(current_a * dt)) / SECONDS_PER_HOUR
        weighted = float(np.sum(current_a * stress * dt)) / SECONDS_PER_HOUR
        cycles = weighted / (2.0 * capacity)
        return WearReport(
            throughput_ah=throughput,
            stress_weighted_ah=weighted,
            equivalent_full_cycles=cycles,
            life_fraction=cycles / self.params.rated_cycles,
            peak_c_rate=float(c_rate.max(initial=0.0)),
        )

    def assess_trace(self, trace) -> WearReport:
        """Convenience overload for :class:`~repro.core.profile.TimedTrace`."""
        return self.assess(trace.times_s, trace.speeds_ms)
