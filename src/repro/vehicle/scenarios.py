"""Scenario packs: named (vehicle, environment) bundles for studies.

A scenario pack pairs a catalog vehicle with one
:class:`~repro.vehicle.environment.EnvironmentConditions` value under a
stable id, so experiments, the CLI and the serving registry can all name
the same study condition.  Packs only perturb the *energy* side of the
problem (mass, drag, rolling resistance, a constant grade offset) —
never the kinematic feasibility envelope or the signal windows — so
every pack is feasible wherever the nominal corridor is, and plan-shape
regressions stay meaningful across packs.

The ``nominal`` pack is the paper's implicit condition: the default
catalog vehicle under :data:`~repro.vehicle.environment.NOMINAL_ENVIRONMENT`,
bit-identical to planning with no scenario at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import UnknownScenarioError
from repro.vehicle.catalog import DEFAULT_VEHICLE_ID, get_vehicle
from repro.vehicle.environment import EnvironmentConditions
from repro.vehicle.params import VehicleParams

__all__ = [
    "ScenarioPack",
    "DEFAULT_SCENARIO_ID",
    "get_scenario",
    "scenario_ids",
]

#: The paper's implicit study condition.
DEFAULT_SCENARIO_ID = "nominal"


@dataclass(frozen=True)
class ScenarioPack:
    """One named study condition: a catalog vehicle in an environment.

    Attributes:
        scenario_id: Stable pack id (CLI/registry/experiment key).
        description: One-line human-readable summary.
        vehicle_id: Catalog id of the vehicle the pack plans for.
        environment: Ambient conditions the energy model runs under.
    """

    scenario_id: str
    description: str
    vehicle_id: str
    environment: EnvironmentConditions

    def vehicle(self) -> VehicleParams:
        """The pack's vehicle, resolved fresh from the catalog."""
        return get_vehicle(self.vehicle_id)


#: id -> pack.  Environments are frozen values, safe to share.
_SCENARIOS: Dict[str, ScenarioPack] = {
    pack.scenario_id: pack
    for pack in (
        ScenarioPack(
            scenario_id=DEFAULT_SCENARIO_ID,
            description="the paper's implicit condition: Spark EV, 20 °C, calm, unladen",
            vehicle_id=DEFAULT_VEHICLE_ID,
            environment=EnvironmentConditions(),
        ),
        ScenarioPack(
            scenario_id="cold-morning",
            description="Spark EV on a -10 °C commute: dense air, stiff cold tires",
            vehicle_id=DEFAULT_VEHICLE_ID,
            environment=EnvironmentConditions(ambient_temp_c=-10.0),
        ),
        ScenarioPack(
            scenario_id="loaded-van",
            description="delivery van carrying 600 kg of cargo",
            vehicle_id="delivery_van",
            environment=EnvironmentConditions(payload_kg=600.0),
        ),
        ScenarioPack(
            scenario_id="hilly-corridor",
            description="sedan on a +3% constant-grade variant of the corridor",
            vehicle_id="sedan_ev",
            environment=EnvironmentConditions(grade_offset_rad=0.03),
        ),
        ScenarioPack(
            scenario_id="headwind-commute",
            description="city EV into a steady 8 m/s headwind",
            vehicle_id="city_ev",
            environment=EnvironmentConditions(headwind_ms=8.0),
        ),
    )
}


def scenario_ids() -> Tuple[str, ...]:
    """Every pack id, nominal first."""
    return tuple(_SCENARIOS)


def get_scenario(scenario_id: str) -> ScenarioPack:
    """The pack registered under an id.

    Raises:
        UnknownScenarioError: No such pack; the error carries the
            offending id and the ids that do exist.
    """
    pack = _SCENARIOS.get(scenario_id)
    if pack is None:
        raise UnknownScenarioError(
            f"unknown scenario {scenario_id!r}; packs are {sorted(_SCENARIOS)}",
            scenario_id=str(scenario_id),
            known_ids=tuple(_SCENARIOS),
        )
    return pack
