"""Battery-pack bookkeeping: charge integration and state of charge.

The paper expresses energy consumption as electrical charge (ampere-hours)
"for convenience in the practice" (Section II-A).  :class:`BatteryPack`
integrates a current draw over time, tracks the state of charge and refuses
to over-charge or over-discharge.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_HOUR
from repro.vehicle.params import BatteryPackParams


class BatteryPack:
    """A simple coulomb-counting traction-battery model.

    Args:
        params: Electrical pack parameters.
        initial_soc: Initial state of charge in ``[0, 1]``.

    The model is intentionally first-order — the paper's Eq. 2 treats the
    pack as an ideal charge reservoir behind a fixed transforming
    efficiency, which is already applied upstream in
    :class:`repro.vehicle.dynamics.LongitudinalModel`.
    """

    def __init__(self, params: BatteryPackParams, initial_soc: float = 1.0) -> None:
        if not 0.0 <= initial_soc <= 1.0:
            raise ConfigurationError(f"initial SoC must be in [0, 1], got {initial_soc}")
        self.params = params
        self._charge_ah = params.capacity_ah * initial_soc
        self._consumed_ah = 0.0
        self._regenerated_ah = 0.0

    @property
    def soc(self) -> float:
        """Current state of charge in ``[0, 1]``."""
        return self._charge_ah / self.params.capacity_ah

    @property
    def charge_ah(self) -> float:
        """Remaining charge (Ah)."""
        return self._charge_ah

    @property
    def consumed_ah(self) -> float:
        """Cumulative charge drawn from the pack (Ah), excluding regen credit."""
        return self._consumed_ah

    @property
    def regenerated_ah(self) -> float:
        """Cumulative charge returned to the pack by regeneration (Ah)."""
        return self._regenerated_ah

    @property
    def net_consumed_ah(self) -> float:
        """Net charge consumed (Ah): draws minus regeneration."""
        return self._consumed_ah - self._regenerated_ah

    @property
    def net_consumed_mah(self) -> float:
        """Net charge consumed (mAh) — the unit of Fig. 7b."""
        return self.net_consumed_ah * 1000.0

    def draw(self, current_a: float, duration_s: float) -> None:
        """Apply a constant current for a duration.

        Positive current discharges the pack; negative current (regen)
        charges it.  Charging is clipped at full capacity — a real battery
        management system opens the regen path when the pack is full.

        Raises:
            ValueError: If the duration is negative.
            RuntimeError: If the draw would over-discharge the pack.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        delta_ah = current_a * duration_s / SECONDS_PER_HOUR
        if delta_ah >= 0:
            if delta_ah > self._charge_ah + 1e-12:
                raise RuntimeError(
                    f"pack over-discharged: need {delta_ah:.4f} Ah, have {self._charge_ah:.4f} Ah"
                )
            self._charge_ah -= delta_ah
            self._consumed_ah += delta_ah
        else:
            headroom = self.params.capacity_ah - self._charge_ah
            accepted = min(-delta_ah, headroom)
            self._charge_ah += accepted
            self._regenerated_ah += accepted

    def reset(self, soc: float = 1.0) -> None:
        """Reset the pack to a given state of charge and clear the counters."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError(f"SoC must be in [0, 1], got {soc}")
        self._charge_ah = self.params.capacity_ah * soc
        self._consumed_ah = 0.0
        self._regenerated_ah = 0.0
