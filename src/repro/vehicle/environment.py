"""Ambient operating conditions the energy model is evaluated in.

The paper fixes one environment implicitly: 20 °C air, still wind, an
unladen vehicle, the corridor's surveyed grades.  Real fleet energy
varies strongly with all four (see the consumption-estimation survey in
PAPERS.md), so :class:`EnvironmentConditions` makes the environment an
explicit, frozen, content-addressable value that flows through the
:class:`~repro.vehicle.dynamics.LongitudinalModel`, the DP's energy
tables and the corridor-artifact digest.

The physics kept deliberately first-order (each effect is a scalar
transform of an existing Eq. 1 coefficient, so the model stays fully
vectorized):

* **Temperature → air density** via the ideal gas law at constant
  pressure: ``rho(T) = rho_ref * (T_ref_K / T_K)``.  Cold air is denser,
  raising aerodynamic drag.
* **Temperature → rolling resistance**: tire hysteresis grows in the
  cold; we apply the commonly used linear correction
  ``C_rr(T) = C_rr_ref * (1 + k * (T_ref - T))`` with ``k = 0.006``/°C,
  floored so a hot day never drives the coefficient negative.
* **Headwind → aerodynamic drag**: drag scales with the *relative* air
  speed, ``F_aero ∝ (v + w)|v + w|`` for headwind ``w > 0`` (a tailwind
  is negative ``w``; the signed form keeps a strong tailwind from
  producing phantom thrust quadratic in speed).
* **Payload → mass**: added to the gross vehicle mass everywhere mass
  appears (inertia, grade force, rolling force).
* **Grade offset**: a constant grade added to the corridor's surveyed
  profile — the cheap way to study a hilly variant of a flat corridor
  without re-surveying it.

Bit-identity contract: at the nominal conditions every scale factor is
*exactly* ``1.0`` and every additive term *exactly* ``0.0`` (the
reference ratios cancel symbolically, not just numerically), so a model
built with :data:`NOMINAL_ENVIRONMENT` is bit-identical to the
pre-environment model.  The regression suite gates this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = ["EnvironmentConditions", "NOMINAL_ENVIRONMENT"]

#: Reference (nominal) ambient temperature (°C): the paper's implicit lab
#: conditions.  All temperature corrections are 1.0 exactly at this value.
REFERENCE_TEMP_C = 20.0

#: Celsius → Kelvin offset.
_KELVIN_OFFSET = 273.15

#: Linear cold-tire rolling-resistance sensitivity (fraction per °C below
#: the reference).  Typical measured values are 0.3-0.9 %/°C.
_CRR_PER_DEG_C = 0.006

#: Floor on the rolling-resistance scale (a scorching day still rolls).
_CRR_SCALE_FLOOR = 0.5


@dataclass(frozen=True)
class EnvironmentConditions:
    """Frozen ambient conditions for one planning scenario.

    Attributes:
        ambient_temp_c: Air/tire temperature (°C).
        headwind_ms: Headwind component along the route (m/s); negative
            values are a tailwind.
        payload_kg: Cargo/passenger mass added to the gross vehicle
            weight (kg).
        grade_offset_rad: Constant grade added to the corridor's grade
            profile (radians, positive uphill).
    """

    ambient_temp_c: float = REFERENCE_TEMP_C
    headwind_ms: float = 0.0
    payload_kg: float = 0.0
    grade_offset_rad: float = 0.0

    def __post_init__(self) -> None:
        for name in ("ambient_temp_c", "headwind_ms", "payload_kg", "grade_offset_rad"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ConfigurationError(f"{name} must be finite, got {value}")
        if not -60.0 <= self.ambient_temp_c <= 60.0:
            raise ConfigurationError(
                f"ambient temperature must be in [-60, 60] °C, got {self.ambient_temp_c}"
            )
        if abs(self.headwind_ms) > 40.0:
            raise ConfigurationError(
                f"|headwind| must be <= 40 m/s, got {self.headwind_ms}"
            )
        if self.payload_kg < 0:
            raise ConfigurationError(
                f"payload must be >= 0 kg, got {self.payload_kg}"
            )
        if abs(self.grade_offset_rad) > 0.2:
            raise ConfigurationError(
                f"|grade offset| must be <= 0.2 rad, got {self.grade_offset_rad}"
            )

    @property
    def air_density_scale(self) -> float:
        """Density ratio ``rho(T)/rho_ref`` (ideal gas, constant pressure).

        Computed as a ratio of two identically-formed sums so the
        nominal case divides a float by itself: exactly ``1.0``.
        """
        return (_KELVIN_OFFSET + REFERENCE_TEMP_C) / (
            _KELVIN_OFFSET + self.ambient_temp_c
        )

    @property
    def rolling_resistance_scale(self) -> float:
        """Ratio ``C_rr(T)/C_rr_ref`` (cold tires roll harder)."""
        scale = 1.0 + _CRR_PER_DEG_C * (REFERENCE_TEMP_C - self.ambient_temp_c)
        return max(scale, _CRR_SCALE_FLOOR)

    @property
    def is_nominal(self) -> bool:
        """True at the paper's implicit conditions (every correction inert)."""
        return (
            self.ambient_temp_c == REFERENCE_TEMP_C
            and self.headwind_ms == 0.0
            and self.payload_kg == 0.0
            and self.grade_offset_rad == 0.0
        )

    def canonical_parts(self) -> Iterator[str]:
        """Stable text fragments for the corridor-artifact digest.

        ``+ 0.0`` folds ``-0.0`` into ``+0.0`` before rendering: the two
        compare equal, so they must hash equal too.
        """
        yield (
            "env:"
            + ",".join(
                repr(float(value) + 0.0)
                for value in (
                    self.ambient_temp_c,
                    self.headwind_ms,
                    self.payload_kg,
                    self.grade_offset_rad,
                )
            )
        )

    def describe(self) -> str:
        """One-line human-readable form for CLI listings."""
        return (
            f"{self.ambient_temp_c:+.0f} °C, wind {self.headwind_ms:+.0f} m/s, "
            f"payload {self.payload_kg:.0f} kg, grade {self.grade_offset_rad:+.3f} rad"
        )


#: The paper's implicit conditions; models built with it are bit-identical
#: to models built with no environment at all.
NOMINAL_ENVIRONMENT = EnvironmentConditions()
