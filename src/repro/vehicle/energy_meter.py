"""Trip-level energy integration over a sampled velocity profile.

Given a time-sampled speed trace ``v(t)`` (and optionally a road-grade
profile), :class:`EnergyMeter` integrates Eq. 3 to produce the total trip
consumption, separating traction draw from regenerated charge.  This is the
measurement layer behind Fig. 7b and the per-profile numbers quoted in
Section III-B-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.units import SECONDS_PER_HOUR
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.environment import EnvironmentConditions
from repro.vehicle.params import VehicleParams


@dataclass(frozen=True)
class TripEnergy:
    """Aggregate energy figures for one trip.

    Attributes:
        drawn_mah: Charge drawn from the pack for traction (mAh, >= 0).
        regenerated_mah: Charge returned by regenerative braking (mAh, >= 0).
        duration_s: Trip duration (s).
        distance_m: Distance covered (m).
        pack_voltage_v: Nominal voltage of the pack the trip was metered
            with; :attr:`net_wh` converts at this voltage.
    """

    drawn_mah: float
    regenerated_mah: float
    duration_s: float
    distance_m: float
    pack_voltage_v: float = field(
        default_factory=lambda: VehicleParams().battery.voltage_v
    )

    @property
    def net_mah(self) -> float:
        """Net consumption (mAh): draws minus regeneration."""
        return self.drawn_mah - self.regenerated_mah

    @property
    def net_wh(self) -> float:
        """Net consumption in watt-hours at the metered pack voltage."""
        return self.net_mah / 1000.0 * self.pack_voltage_v

    @property
    def wh_per_km(self) -> float:
        """Net specific consumption (Wh/km); ``nan`` for zero-length trips."""
        if self.distance_m <= 0:
            return float("nan")
        return self.net_wh / (self.distance_m / 1000.0)


class EnergyMeter:
    """Integrates the consumption model over sampled velocity traces."""

    def __init__(
        self,
        params: Optional[VehicleParams] = None,
        environment: Optional[EnvironmentConditions] = None,
    ) -> None:
        self.model = LongitudinalModel(params, environment)

    def measure(
        self,
        times_s: Sequence[float],
        speeds_ms: Sequence[float],
        grade_at: Optional[Callable[[float], float]] = None,
    ) -> TripEnergy:
        """Integrate consumption over a time-sampled speed trace.

        Args:
            times_s: Strictly increasing sample times (s).
            speeds_ms: Speeds at the sample times (m/s), same length.
            grade_at: Optional map from travelled distance (m) to road grade
                (radians).  ``None`` means a flat road.

        Returns:
            A :class:`TripEnergy` with draw and regeneration split out.

        Raises:
            ValueError: On mismatched lengths, fewer than two samples,
                non-increasing times or negative speeds.
        """
        t = np.asarray(times_s, dtype=float)
        v = np.asarray(speeds_ms, dtype=float)
        if t.shape != v.shape:
            raise ValueError(f"times and speeds must match, got {t.shape} vs {v.shape}")
        if t.size < 2:
            raise ValueError("need at least two samples to integrate a trip")
        dt = np.diff(t)
        if np.any(dt <= 0):
            raise ValueError("sample times must be strictly increasing")
        if np.any(v < 0):
            raise ValueError("speeds must be non-negative")

        v_mid = 0.5 * (v[:-1] + v[1:])
        accel = np.diff(v) / dt
        distance = np.concatenate([[0.0], np.cumsum(v_mid * dt)])
        if grade_at is None:
            grades = 0.0
        else:
            mid_pos = 0.5 * (distance[:-1] + distance[1:])
            grades = np.asarray([grade_at(float(s)) for s in mid_pos], dtype=float)

        current_a = np.asarray(self.model.consumption_rate_a(v_mid, accel, grades), dtype=float)
        charge_ah = current_a * dt / SECONDS_PER_HOUR
        drawn = float(np.sum(charge_ah[charge_ah > 0]))
        regen = float(-np.sum(charge_ah[charge_ah < 0]))
        return TripEnergy(
            drawn_mah=drawn * 1000.0,
            regenerated_mah=regen * 1000.0,
            duration_s=float(t[-1] - t[0]),
            distance_m=float(distance[-1]),
            pack_voltage_v=self.model.params.battery.voltage_v,
        )
