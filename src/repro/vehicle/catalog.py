"""The vehicle catalog: named parameter sets a fleet can plan for.

The paper evaluates one vehicle (the Chevrolet Spark EV of Section
III-A-1); a serving stack fronts a fleet.  This catalog maps stable
vehicle ids to frozen :class:`~repro.vehicle.params.VehicleParams`
bundles — the default ``spark_ev`` reproduces the paper's constants
exactly (no efficiency map, so its physics and corridor digest are
identical to the historical defaults), while the other entries span the
fleet diversity the scenario layer exercises: a light city EV, a
mid-size sedan and a delivery van, each with a speed/load-dependent
:class:`~repro.vehicle.efficiency.InterpolatedEfficiencyMap`.

Unknown ids fail typed (:class:`~repro.errors.UnknownVehicleError`)
at lookup time — spec validation runs this before any planner is built
or any serving counter moves.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import UnknownVehicleError
from repro.vehicle.efficiency import InterpolatedEfficiencyMap
from repro.vehicle.params import (
    BatteryPackParams,
    VehicleParams,
    chevrolet_spark_ev,
)

__all__ = [
    "DEFAULT_VEHICLE_ID",
    "get_vehicle",
    "vehicle_ids",
    "describe_vehicle",
]

#: The catalog's default — the paper's vehicle.
DEFAULT_VEHICLE_ID = "spark_ev"

#: Shared load-axis breakpoints for the interpolated maps
#: (|P_mech| / rated power).
_LOADS = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def _motor_map(
    rated_power_w: float, peak: float, low_speed: float, low_load: float
) -> InterpolatedEfficiencyMap:
    """A plausible motor-map shape from three anchor efficiencies.

    Every catalog map shares the canonical induction/PMSM surface
    topology — poor near standstill and at idle load, a broad plateau at
    mid speed / mid load, a mild droop toward rated power — differing
    only in the anchor values, so the entries stay distinguishable in
    the digest without inventing per-vehicle dynamometer tables.
    """
    speeds = (0.0, 3.0, 8.0, 15.0, 25.0, 36.0)
    rows = []
    for i, _ in enumerate(speeds):
        speed_f = (0.55, 0.8, 0.95, 1.0, 0.99, 0.96)[i]
        row = []
        for k, _ in enumerate(_LOADS):
            load_f = (low_load, 0.9, 0.98, 1.0, 0.985, 0.96)[k]
            eta = peak * speed_f * load_f
            row.append(max(round(eta, 4), low_speed * low_load))
        rows.append(tuple(row))
    return InterpolatedEfficiencyMap(
        speeds_ms=speeds,
        loads=_LOADS,
        eta_grid=tuple(rows),
        rated_power_w=rated_power_w,
    )


def city_ev() -> VehicleParams:
    """A light two-door city EV: small, slippery, modest pack."""
    return VehicleParams(
        mass_kg=1080.0,
        frontal_area_m2=2.0,
        drag_coefficient=0.30,
        rolling_resistance=0.016,
        battery_efficiency=0.96,
        powertrain_efficiency=0.91,
        regen_efficiency=0.62,
        max_accel_ms2=2.2,
        min_accel_ms2=-1.5,
        battery=BatteryPackParams(voltage_v=350.0, capacity_ah=60.0),
        efficiency_map=_motor_map(
            rated_power_w=60_000.0, peak=0.93, low_speed=0.5, low_load=0.62
        ),
    )


def sedan_ev() -> VehicleParams:
    """A mid-size electric sedan: heavier, faster, a big pack."""
    return VehicleParams(
        mass_kg=1850.0,
        frontal_area_m2=2.3,
        drag_coefficient=0.24,
        rolling_resistance=0.015,
        battery_efficiency=0.96,
        powertrain_efficiency=0.93,
        regen_efficiency=0.68,
        max_accel_ms2=3.0,
        min_accel_ms2=-1.8,
        battery=BatteryPackParams(
            voltage_v=400.0, capacity_ah=160.0, cell_capacity_ah=4.8,
            series_cells=108, parallel_strings=33,
        ),
        efficiency_map=_motor_map(
            rated_power_w=150_000.0, peak=0.95, low_speed=0.55, low_load=0.66
        ),
    )


def delivery_van() -> VehicleParams:
    """A boxy electric delivery van: heavy, draggy, strong regen."""
    return VehicleParams(
        mass_kg=2600.0,
        frontal_area_m2=4.5,
        drag_coefficient=0.38,
        rolling_resistance=0.019,
        battery_efficiency=0.95,
        powertrain_efficiency=0.90,
        regen_efficiency=0.65,
        aux_power_w=400.0,
        max_accel_ms2=1.8,
        min_accel_ms2=-1.2,
        battery=BatteryPackParams(
            voltage_v=400.0, capacity_ah=110.0, cell_capacity_ah=5.0,
            series_cells=104, parallel_strings=22,
        ),
        efficiency_map=_motor_map(
            rated_power_w=100_000.0, peak=0.92, low_speed=0.5, low_load=0.6
        ),
    )


#: id -> (factory, one-line description).  Factories (not instances) so
#: every lookup returns a fresh frozen value with no shared state.
_CATALOG: Dict[str, Tuple[Callable[[], VehicleParams], str]] = {
    DEFAULT_VEHICLE_ID: (
        chevrolet_spark_ev,
        "Chevrolet Spark EV, the paper's Section III-A-1 vehicle (constant eta)",
    ),
    "city_ev": (city_ev, "light city EV: 1080 kg, 60 kW interpolated motor map"),
    "sedan_ev": (sedan_ev, "mid-size sedan: 1850 kg, 150 kW interpolated motor map"),
    "delivery_van": (
        delivery_van,
        "delivery van: 2600 kg, 400 W aux load, 100 kW interpolated motor map",
    ),
}


def vehicle_ids() -> Tuple[str, ...]:
    """Every catalog id, default first."""
    return tuple(_CATALOG)


def describe_vehicle(vehicle_id: str) -> str:
    """The one-line description for ``--list-vehicles`` output."""
    get_vehicle(vehicle_id)  # raises UnknownVehicleError on a bad id
    return _CATALOG[vehicle_id][1]


def get_vehicle(vehicle_id: str) -> VehicleParams:
    """The catalog entry under an id.

    Raises:
        UnknownVehicleError: No such vehicle; the error carries the
            offending id and the ids the catalog does hold.
    """
    entry = _CATALOG.get(vehicle_id)
    if entry is None:
        raise UnknownVehicleError(
            f"unknown vehicle {vehicle_id!r}; catalog holds {sorted(_CATALOG)}",
            vehicle_id=str(vehicle_id),
            known_ids=tuple(_CATALOG),
        )
    return entry[0]()
