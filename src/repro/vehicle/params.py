"""Vehicle and battery parameter sets.

Defaults replicate the paper's experimental settings (Section III-A-1):
a Chevrolet Spark EV with gross mass 1300 kg, frontal area 2.2 m^2, drag
coefficient 0.33, rolling-resistance coefficient 0.018, battery efficiency
0.95 and powertrain efficiency 0.9, and a 399 V / 46.2 Ah pack built from
Sony VTC4 18650 cells (2.1 Ah each, 96 series x 22 parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import AIR_DENSITY
from repro.vehicle.efficiency import MotorEfficiencyMap


@dataclass(frozen=True)
class BatteryPackParams:
    """Electrical parameters of the traction battery pack.

    Attributes:
        voltage_v: Nominal pack voltage (V).
        capacity_ah: Total pack capacity (Ah).
        cell_capacity_ah: Capacity of a single cell (Ah).
        series_cells: Number of cells in series.
        parallel_strings: Number of parallel strings.
    """

    voltage_v: float
    capacity_ah: float
    cell_capacity_ah: float = 2.1
    series_cells: int = 96
    parallel_strings: int = 22

    def __post_init__(self) -> None:
        if self.voltage_v <= 0:
            raise ConfigurationError(f"pack voltage must be positive, got {self.voltage_v}")
        if self.capacity_ah <= 0:
            raise ConfigurationError(f"pack capacity must be positive, got {self.capacity_ah}")
        if self.series_cells <= 0 or self.parallel_strings <= 0:
            raise ConfigurationError("cell counts must be positive")

    @property
    def cell_count(self) -> int:
        """Total number of cells in the pack."""
        return self.series_cells * self.parallel_strings

    @property
    def energy_capacity_j(self) -> float:
        """Total pack energy capacity in joules."""
        return self.voltage_v * self.capacity_ah * 3600.0


@dataclass(frozen=True)
class VehicleParams:
    """Physical parameters of the EV used by the force model (Eq. 1).

    Attributes:
        mass_kg: Gross vehicle weight ``m`` (kg).
        frontal_area_m2: Frontal area ``A_f`` (m^2).
        drag_coefficient: Aerodynamic drag coefficient ``C_d``.
        rolling_resistance: Rolling-resistance coefficient ``mu``.
        air_density: Air density ``rho`` (kg/m^3).
        battery_efficiency: Battery energy-transforming efficiency ``eta_1``.
        powertrain_efficiency: Powertrain working efficiency ``eta_2``.
        regen_efficiency: Fraction of braking power recuperated into the
            pack.  The paper reports negative consumption while braking
            (Fig. 3); it does not state the recuperation fraction, so we
            expose it as a parameter with a conservative default.
        aux_power_w: Constant auxiliary electrical load (HVAC, electronics)
            drawn from the pack regardless of motion.  The paper's model
            omits it (0 by default); real-world range studies set 500-3000 W.
        max_accel_ms2: Comfort/safety acceleration ceiling (m/s^2).
        min_accel_ms2: Comfort/safety deceleration floor (m/s^2, negative).
        battery: Traction-pack electrical parameters.
        efficiency_map: Optional speed/load-dependent drivetrain
            efficiency map (:mod:`repro.vehicle.efficiency`).  ``None``
            uses the paper's constant ``eta_1 * eta_2`` — bit-identically
            to a :class:`~repro.vehicle.efficiency.ConstantEfficiencyMap`
            at :attr:`drivetrain_efficiency`.
    """

    mass_kg: float = 1300.0
    frontal_area_m2: float = 2.2
    drag_coefficient: float = 0.33
    rolling_resistance: float = 0.018
    air_density: float = AIR_DENSITY
    battery_efficiency: float = 0.95
    powertrain_efficiency: float = 0.90
    regen_efficiency: float = 0.60
    aux_power_w: float = 0.0
    max_accel_ms2: float = 2.5
    min_accel_ms2: float = -1.5
    battery: BatteryPackParams = field(
        default_factory=lambda: BatteryPackParams(voltage_v=399.0, capacity_ah=46.2)
    )
    efficiency_map: Optional[MotorEfficiencyMap] = None

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ConfigurationError(f"mass must be positive, got {self.mass_kg}")
        if self.frontal_area_m2 <= 0:
            raise ConfigurationError(f"frontal area must be positive, got {self.frontal_area_m2}")
        if self.drag_coefficient < 0:
            raise ConfigurationError(f"drag coefficient must be >= 0, got {self.drag_coefficient}")
        if self.rolling_resistance < 0:
            raise ConfigurationError(
                f"rolling resistance must be >= 0, got {self.rolling_resistance}"
            )
        for name in ("battery_efficiency", "powertrain_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.regen_efficiency <= 1.0:
            raise ConfigurationError(
                f"regen efficiency must be in [0, 1], got {self.regen_efficiency}"
            )
        if self.aux_power_w < 0:
            raise ConfigurationError(
                f"auxiliary power must be >= 0, got {self.aux_power_w}"
            )
        if self.max_accel_ms2 <= 0:
            raise ConfigurationError(f"max acceleration must be positive, got {self.max_accel_ms2}")
        if self.min_accel_ms2 >= 0:
            raise ConfigurationError(f"min acceleration must be negative, got {self.min_accel_ms2}")
        if self.efficiency_map is not None and not callable(
            getattr(self.efficiency_map, "eta", None)
        ):
            raise ConfigurationError(
                "efficiency_map must expose eta(speed, mech_power) "
                f"(see repro.vehicle.efficiency), got {self.efficiency_map!r}"
            )

    @property
    def drivetrain_efficiency(self) -> float:
        """Combined efficiency ``eta_1 * eta_2`` from Eq. 2/3."""
        return self.battery_efficiency * self.powertrain_efficiency


def sony_vtc4_pack() -> BatteryPackParams:
    """The paper's pack: 96s22p Sony VTC4-18650 cells, 399 V, 46.2 Ah."""
    return BatteryPackParams(
        voltage_v=399.0,
        capacity_ah=46.2,
        cell_capacity_ah=2.1,
        series_cells=96,
        parallel_strings=22,
    )


def chevrolet_spark_ev() -> VehicleParams:
    """The paper's vehicle: Chevrolet Spark EV with the Section III constants."""
    return VehicleParams(battery=sony_vtc4_pack())
