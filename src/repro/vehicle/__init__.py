"""EV vehicle models: longitudinal dynamics, battery pack, energy metering.

This subpackage implements Section II-A of the paper: the drive-force model
(Eq. 1), the electrical-energy relation (Eq. 2) and the instantaneous
consumption-rate model (Eq. 3), together with a battery-pack bookkeeping
layer that expresses consumption in the paper's preferred unit (mAh), a
vehicle catalog and motor-efficiency maps (:mod:`repro.vehicle.catalog`,
:mod:`repro.vehicle.efficiency`) and the ambient-environment layer the
scenario packs build on (:mod:`repro.vehicle.environment`,
:mod:`repro.vehicle.scenarios`).
"""

from repro.vehicle.params import (
    BatteryPackParams,
    VehicleParams,
    chevrolet_spark_ev,
    sony_vtc4_pack,
)
from repro.vehicle.efficiency import (
    ConstantEfficiencyMap,
    InterpolatedEfficiencyMap,
    MotorEfficiencyMap,
)
from repro.vehicle.environment import EnvironmentConditions, NOMINAL_ENVIRONMENT
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.battery import BatteryPack
from repro.vehicle.catalog import (
    DEFAULT_VEHICLE_ID,
    describe_vehicle,
    get_vehicle,
    vehicle_ids,
)
from repro.vehicle.energy_meter import EnergyMeter, TripEnergy
from repro.vehicle.scenarios import (
    DEFAULT_SCENARIO_ID,
    ScenarioPack,
    get_scenario,
    scenario_ids,
)
from repro.vehicle.wear import BatteryWearModel, WearModelParams, WearReport

__all__ = [
    "BatteryPack",
    "BatteryPackParams",
    "BatteryWearModel",
    "ConstantEfficiencyMap",
    "DEFAULT_SCENARIO_ID",
    "DEFAULT_VEHICLE_ID",
    "EnergyMeter",
    "EnvironmentConditions",
    "InterpolatedEfficiencyMap",
    "LongitudinalModel",
    "MotorEfficiencyMap",
    "NOMINAL_ENVIRONMENT",
    "ScenarioPack",
    "TripEnergy",
    "VehicleParams",
    "WearModelParams",
    "WearReport",
    "chevrolet_spark_ev",
    "describe_vehicle",
    "get_scenario",
    "get_vehicle",
    "scenario_ids",
    "sony_vtc4_pack",
    "vehicle_ids",
]
