"""EV vehicle models: longitudinal dynamics, battery pack, energy metering.

This subpackage implements Section II-A of the paper: the drive-force model
(Eq. 1), the electrical-energy relation (Eq. 2) and the instantaneous
consumption-rate model (Eq. 3), together with a battery-pack bookkeeping
layer that expresses consumption in the paper's preferred unit (mAh).
"""

from repro.vehicle.params import (
    BatteryPackParams,
    VehicleParams,
    chevrolet_spark_ev,
    sony_vtc4_pack,
)
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.battery import BatteryPack
from repro.vehicle.energy_meter import EnergyMeter, TripEnergy
from repro.vehicle.wear import BatteryWearModel, WearModelParams, WearReport

__all__ = [
    "BatteryPack",
    "BatteryPackParams",
    "BatteryWearModel",
    "EnergyMeter",
    "LongitudinalModel",
    "TripEnergy",
    "VehicleParams",
    "WearModelParams",
    "WearReport",
    "chevrolet_spark_ev",
    "sony_vtc4_pack",
]
