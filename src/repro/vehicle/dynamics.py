"""Longitudinal dynamics and electrical consumption of a pure EV.

Implements Eq. 1 and Eq. 3 of the paper:

    F_drive = m*dv/dt + (1/2)*rho*A_f*C_d*v^2 + m*g*sin(theta) + mu*m*g*cos(theta)
    zeta    = F_drive * v / (U * eta_1 * eta_2)

``zeta`` is the battery-current draw in amperes (charge consumption per
second); the paper reports it in mAh/s.  When ``F_drive * v`` is negative
the vehicle is braking and a fraction of the mechanical power is
recuperated (negative consumption in Fig. 3).

All functions accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.units import GRAVITY, SECONDS_PER_HOUR
from repro.vehicle.params import VehicleParams

ArrayLike = Union[float, np.ndarray]


class LongitudinalModel:
    """Drive-force and electrical-consumption model for one vehicle.

    Args:
        params: Physical vehicle parameters.  Defaults to the paper's
            Chevrolet Spark EV settings.
    """

    def __init__(self, params: VehicleParams | None = None) -> None:
        self.params = params if params is not None else VehicleParams()

    # ------------------------------------------------------------------
    # Mechanical layer (Eq. 1)
    # ------------------------------------------------------------------
    def drive_force(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Required tractive force ``F_drive`` (N) from Eq. 1.

        Args:
            speed: Vehicle speed ``v`` (m/s).
            accel: Longitudinal acceleration ``dv/dt`` (m/s^2).
            grade_rad: Road grade ``theta`` (radians, positive uphill).

        Returns:
            Tractive force in newtons; negative when braking effort is
            required to hold the commanded deceleration.
        """
        p = self.params
        inertial = p.mass_kg * np.asarray(accel, dtype=float)
        aero = 0.5 * p.air_density * p.frontal_area_m2 * p.drag_coefficient * np.square(speed)
        gravity = p.mass_kg * GRAVITY * np.sin(grade_rad)
        # Rolling resistance vanishes when the wheels are not turning.
        rolling = p.rolling_resistance * p.mass_kg * GRAVITY * np.cos(grade_rad)
        rolling = np.where(np.asarray(speed, dtype=float) > 0.0, rolling, 0.0)
        result = inertial + aero + gravity + rolling
        return float(result) if np.isscalar(speed) and np.isscalar(accel) else result

    def mechanical_power(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Mechanical power ``F_drive * v`` at the wheels (W)."""
        return self.drive_force(speed, accel, grade_rad) * np.asarray(speed, dtype=float)

    # ------------------------------------------------------------------
    # Electrical layer (Eq. 3)
    # ------------------------------------------------------------------
    def electrical_power(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Electrical power drawn from the pack (W).

        Positive power divides by the drivetrain efficiency (losses on the
        way out of the pack); negative power multiplies by the regeneration
        efficiency (losses on the way back in), matching the asymmetric
        behaviour of a real recuperating drivetrain.  The constant
        auxiliary load (``aux_power_w``) adds on top in either regime.
        """
        p = self.params
        mech = np.asarray(self.mechanical_power(speed, accel, grade_rad), dtype=float)
        drawing = mech / p.drivetrain_efficiency
        regenerating = mech * p.regen_efficiency * p.drivetrain_efficiency
        elec = np.where(mech >= 0.0, drawing, regenerating) + p.aux_power_w
        if np.ndim(elec) == 0:
            return float(elec)
        return elec

    def consumption_rate_a(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Charge consumption rate ``zeta`` (A) from Eq. 3.

        Negative values indicate recuperation into the pack.
        """
        elec = np.asarray(self.electrical_power(speed, accel, grade_rad), dtype=float)
        rate = elec / self.params.battery.voltage_v
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    def consumption_rate_mah_per_s(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Charge consumption rate in mAh/s — the unit plotted in Fig. 3."""
        rate_a = np.asarray(self.consumption_rate_a(speed, accel, grade_rad), dtype=float)
        rate = rate_a * 1000.0 / SECONDS_PER_HOUR
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    # ------------------------------------------------------------------
    # Segment-level helpers used by the DP cost function
    # ------------------------------------------------------------------
    def segment_energy_j(
        self,
        speed_start: ArrayLike,
        speed_end: ArrayLike,
        distance_m: float,
        grade_rad: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Electrical energy (J) to traverse a segment at constant acceleration.

        The DP discretizes the route into equal-distance segments; between
        grid points the acceleration is constant, so
        ``a = (v_end^2 - v_start^2) / (2 * ds)`` and the traversal time is
        ``dt = ds / v_avg``.  The consumption is evaluated at the mean
        speed, which is second-order accurate for short segments.

        Returns ``+inf`` where both endpoint speeds are zero (the segment
        can never be traversed).
        """
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        v0 = np.asarray(speed_start, dtype=float)
        v1 = np.asarray(speed_end, dtype=float)
        v_avg = 0.5 * (v0 + v1)
        movable = v_avg > 0.0
        safe_avg = np.where(movable, v_avg, 1.0)
        accel = (np.square(v1) - np.square(v0)) / (2.0 * distance_m)
        dt = distance_m / safe_avg
        power = np.asarray(self.electrical_power(safe_avg, accel, grade_rad), dtype=float)
        energy = np.where(movable, power * dt, np.inf)
        if np.ndim(energy) == 0:
            return float(energy)
        return energy

    def segment_charge_mah(
        self,
        speed_start: ArrayLike,
        speed_end: ArrayLike,
        distance_m: float,
        grade_rad: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Charge (mAh) to traverse a constant-acceleration segment."""
        energy = np.asarray(
            self.segment_energy_j(speed_start, speed_end, distance_m, grade_rad), dtype=float
        )
        charge = energy / self.params.battery.voltage_v * 1000.0 / SECONDS_PER_HOUR
        if np.ndim(charge) == 0:
            return float(charge)
        return charge
