"""Longitudinal dynamics and electrical consumption of a pure EV.

Implements Eq. 1 and Eq. 3 of the paper:

    F_drive = m*dv/dt + (1/2)*rho*A_f*C_d*v^2 + m*g*sin(theta) + mu*m*g*cos(theta)
    zeta    = F_drive * v / (U * eta_1 * eta_2)

``zeta`` is the battery-current draw in amperes (charge consumption per
second); the paper reports it in mAh/s.  When ``F_drive * v`` is negative
the vehicle is braking and a fraction of the mechanical power is
recuperated (negative consumption in Fig. 3).

The model optionally evaluates under non-nominal
:class:`~repro.vehicle.environment.EnvironmentConditions` — payload adds
to the mass everywhere mass appears, temperature rescales the air
density and rolling-resistance coefficient, aerodynamic drag follows the
*relative* air speed under headwind, and a constant grade offset shifts
the surveyed profile.  At :data:`~repro.vehicle.environment.NOMINAL_ENVIRONMENT`
every correction is exactly inert (scale 1.0 / offset 0.0), keeping the
output bit-identical to the historical environment-free model.  Vehicles
carrying an :class:`~repro.vehicle.efficiency.InterpolatedEfficiencyMap`
replace the constant ``eta_1 * eta_2`` with a speed/load-dependent
efficiency; with no map the constant path is untouched.

All functions accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.units import GRAVITY, SECONDS_PER_HOUR
from repro.vehicle.environment import EnvironmentConditions, NOMINAL_ENVIRONMENT
from repro.vehicle.params import VehicleParams

ArrayLike = Union[float, np.ndarray]


class LongitudinalModel:
    """Drive-force and electrical-consumption model for one vehicle.

    Args:
        params: Physical vehicle parameters.  Defaults to the paper's
            Chevrolet Spark EV settings.
        environment: Ambient conditions the model evaluates under.
            Defaults to :data:`~repro.vehicle.environment.NOMINAL_ENVIRONMENT`
            (the paper's implicit 20 °C / calm / unladen / as-surveyed
            conditions), under which the model is bit-identical to the
            historical environment-free one.
    """

    def __init__(
        self,
        params: VehicleParams | None = None,
        environment: EnvironmentConditions | None = None,
    ) -> None:
        self.params = params if params is not None else VehicleParams()
        self.environment = (
            environment if environment is not None else NOMINAL_ENVIRONMENT
        )
        # Effective Eq. 1 coefficients under the environment, computed
        # once.  Each is <base> op <correction> where the correction is
        # exactly 1.0 (or 0.0) at nominal, so the nominal coefficients
        # are bitwise equal to the bare parameters.
        p, env = self.params, self.environment
        self._mass_kg = p.mass_kg + env.payload_kg
        self._air_density = p.air_density * env.air_density_scale
        self._rolling_resistance = p.rolling_resistance * env.rolling_resistance_scale
        self._headwind_ms = env.headwind_ms
        self._grade_offset_rad = env.grade_offset_rad

    # ------------------------------------------------------------------
    # Mechanical layer (Eq. 1)
    # ------------------------------------------------------------------
    def drive_force(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Required tractive force ``F_drive`` (N) from Eq. 1.

        Args:
            speed: Vehicle speed ``v`` (m/s).
            accel: Longitudinal acceleration ``dv/dt`` (m/s^2).
            grade_rad: Road grade ``theta`` (radians, positive uphill).

        Returns:
            Tractive force in newtons; negative when braking effort is
            required to hold the commanded deceleration.
        """
        p = self.params
        ground_speed = np.asarray(speed, dtype=float)
        grade = np.asarray(grade_rad, dtype=float) + self._grade_offset_rad
        inertial = self._mass_kg * np.asarray(accel, dtype=float)
        # Drag follows the speed relative to the air; the signed form
        # (v+w)|v+w| keeps a strong tailwind from producing phantom
        # thrust quadratic in speed.
        rel_air = ground_speed + self._headwind_ms
        aero = (
            0.5
            * self._air_density
            * p.frontal_area_m2
            * p.drag_coefficient
            * (rel_air * np.abs(rel_air))
        )
        gravity = self._mass_kg * GRAVITY * np.sin(grade)
        # Rolling resistance vanishes when the wheels are not turning.
        rolling = self._rolling_resistance * self._mass_kg * GRAVITY * np.cos(grade)
        rolling = np.where(ground_speed > 0.0, rolling, 0.0)
        result = inertial + aero + gravity + rolling
        return float(result) if np.isscalar(speed) and np.isscalar(accel) else result

    def mechanical_power(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Mechanical power ``F_drive * v`` at the wheels (W)."""
        return self.drive_force(speed, accel, grade_rad) * np.asarray(speed, dtype=float)

    # ------------------------------------------------------------------
    # Electrical layer (Eq. 3)
    # ------------------------------------------------------------------
    def electrical_power(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Electrical power drawn from the pack (W).

        Positive power divides by the drivetrain efficiency (losses on the
        way out of the pack); negative power multiplies by the regeneration
        efficiency (losses on the way back in), matching the asymmetric
        behaviour of a real recuperating drivetrain.  The constant
        auxiliary load (``aux_power_w``) adds on top in either regime.

        Vehicles with an ``efficiency_map`` evaluate the drivetrain
        efficiency at each (speed, mechanical power) operating point;
        without one the constant ``eta_1 * eta_2`` applies, keeping the
        arithmetic bit-identical to the historical expressions.
        """
        p = self.params
        mech = np.asarray(self.mechanical_power(speed, accel, grade_rad), dtype=float)
        eta = self._eta(speed, mech)
        drawing = mech / eta
        regenerating = mech * p.regen_efficiency * eta
        elec = np.where(mech >= 0.0, drawing, regenerating) + p.aux_power_w
        if np.ndim(elec) == 0:
            return float(elec)
        return elec

    def _eta(self, speed: ArrayLike, mech_power: ArrayLike) -> ArrayLike:
        """Drivetrain efficiency at an operating point.

        Returns the *bare float* ``drivetrain_efficiency`` when the
        vehicle carries no map — same operand, same ops as the historical
        constant-efficiency expressions.
        """
        emap = self.params.efficiency_map
        if emap is None:
            return self.params.drivetrain_efficiency
        return emap.eta(speed, mech_power)

    def consumption_rate_a(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Charge consumption rate ``zeta`` (A) from Eq. 3.

        Negative values indicate recuperation into the pack.
        """
        elec = np.asarray(self.electrical_power(speed, accel, grade_rad), dtype=float)
        rate = elec / self.params.battery.voltage_v
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    def consumption_rate_mah_per_s(
        self, speed: ArrayLike, accel: ArrayLike, grade_rad: ArrayLike = 0.0
    ) -> ArrayLike:
        """Charge consumption rate in mAh/s — the unit plotted in Fig. 3."""
        rate_a = np.asarray(self.consumption_rate_a(speed, accel, grade_rad), dtype=float)
        rate = rate_a * 1000.0 / SECONDS_PER_HOUR
        if np.ndim(rate) == 0:
            return float(rate)
        return rate

    # ------------------------------------------------------------------
    # Segment-level helpers used by the DP cost function
    # ------------------------------------------------------------------
    def segment_energy_j(
        self,
        speed_start: ArrayLike,
        speed_end: ArrayLike,
        distance_m: float,
        grade_rad: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Electrical energy (J) to traverse a segment at constant acceleration.

        The DP discretizes the route into equal-distance segments; between
        grid points the acceleration is constant, so
        ``a = (v_end^2 - v_start^2) / (2 * ds)`` and the traversal time is
        ``dt = ds / v_avg``.  The consumption is evaluated at the mean
        speed, which is second-order accurate for short segments.

        Returns ``+inf`` where both endpoint speeds are zero (the segment
        can never be traversed).
        """
        if distance_m <= 0:
            raise ValueError(f"distance must be positive, got {distance_m}")
        v0 = np.asarray(speed_start, dtype=float)
        v1 = np.asarray(speed_end, dtype=float)
        v_avg = 0.5 * (v0 + v1)
        movable = v_avg > 0.0
        safe_avg = np.where(movable, v_avg, 1.0)
        accel = (np.square(v1) - np.square(v0)) / (2.0 * distance_m)
        dt = distance_m / safe_avg
        power = np.asarray(self.electrical_power(safe_avg, accel, grade_rad), dtype=float)
        energy = np.where(movable, power * dt, np.inf)
        if np.ndim(energy) == 0:
            return float(energy)
        return energy

    def segment_charge_mah(
        self,
        speed_start: ArrayLike,
        speed_end: ArrayLike,
        distance_m: float,
        grade_rad: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Charge (mAh) to traverse a constant-acceleration segment."""
        energy = np.asarray(
            self.segment_energy_j(speed_start, speed_end, distance_m, grade_rad), dtype=float
        )
        charge = energy / self.params.battery.voltage_v * 1000.0 / SECONDS_PER_HOUR
        if np.ndim(charge) == 0:
            return float(charge)
        return charge
