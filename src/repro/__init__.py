"""Queue-aware velocity optimization for pure electric vehicles.

A full reproduction of *"Velocity Optimization of Pure Electric Vehicles
with Traffic Dynamics Consideration"* (Kang, Shen, Sarker — ICDCS 2017):

* ``repro.vehicle`` — EV longitudinal dynamics and battery energy model.
* ``repro.route`` — corridor geometry, limits, stop signs and signals.
* ``repro.signal`` — traffic-light timing, the VM queue-discharge model
  and the QL queue-length model with its queue-free windows ``T_q``.
* ``repro.traffic`` — traffic-volume synthesis and the stacked-autoencoder
  (SAE) arrival-rate predictor plus baselines.
* ``repro.core`` — the time-expanded DP velocity optimizer and the three
  planners (unconstrained, green-window baseline, queue-aware proposed).
* ``repro.sim`` — a microscopic traffic simulator (SUMO substitute) with a
  TraCI-style control facade.
* ``repro.trace`` — synthetic mild/fast human driving profiles and trace IO.
* ``repro.analysis`` — metrics and table rendering.
* ``repro.experiments`` — one module per figure of the paper's evaluation.

Quickstart::

    from repro import QueueAwareDpPlanner, us25_greenville_segment
    from repro.units import vehicles_per_hour_to_per_second

    road = us25_greenville_segment()
    planner = QueueAwareDpPlanner(
        road, arrival_rates=vehicles_per_hour_to_per_second(153.0)
    )
    solution = planner.plan(start_time_s=0.0)
    print(solution.profile.total_time_s, solution.energy_mah)
"""

from repro.core import (
    BaselineDpPlanner,
    DpSolution,
    DpSolver,
    PlannerConfig,
    QueueAwareDpPlanner,
    TimeWindowConstraint,
    UnconstrainedDpPlanner,
    VelocityProfile,
    check_profile,
)
from repro.route import RoadSegment, us25_greenville_segment
from repro.signal import QueueLengthModel, TrafficLight, VehicleMovementModel
from repro.vehicle import EnergyMeter, LongitudinalModel, VehicleParams, chevrolet_spark_ev

__version__ = "1.0.0"

__all__ = [
    "BaselineDpPlanner",
    "DpSolution",
    "DpSolver",
    "EnergyMeter",
    "LongitudinalModel",
    "PlannerConfig",
    "QueueAwareDpPlanner",
    "QueueLengthModel",
    "RoadSegment",
    "TimeWindowConstraint",
    "TrafficLight",
    "UnconstrainedDpPlanner",
    "VehicleMovementModel",
    "VehicleParams",
    "VelocityProfile",
    "check_profile",
    "chevrolet_spark_ev",
    "us25_greenville_segment",
]
