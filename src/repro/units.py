"""Unit conversion helpers.

The library works in SI units internally (metres, seconds, kilograms,
joules).  The paper reports several quantities in traffic-engineering or
EV-practice units (km/h, vehicles/hour, ampere-hours), so the conversions
live here in one place.
"""

from __future__ import annotations

#: Standard gravity (m/s^2).
GRAVITY = 9.81

#: Sea-level air density used by the paper's force model (kg/m^3).
AIR_DENSITY = 1.2

SECONDS_PER_HOUR = 3600.0


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert a speed from km/h to m/s."""
    return speed_kmh / 3.6


def ms_to_kmh(speed_ms: float) -> float:
    """Convert a speed from m/s to km/h."""
    return speed_ms * 3.6


def mph_to_ms(speed_mph: float) -> float:
    """Convert a speed from miles/hour to m/s."""
    return speed_mph * 0.44704


def joules_to_ah(energy_j: float, voltage_v: float) -> float:
    """Convert electrical energy at a pack voltage to ampere-hours.

    ``E = U * Q`` with ``Q`` in coulombs; one ampere-hour is 3600 C.
    """
    if voltage_v <= 0:
        raise ValueError(f"voltage must be positive, got {voltage_v}")
    return energy_j / voltage_v / 3600.0


def ah_to_joules(charge_ah: float, voltage_v: float) -> float:
    """Convert a charge in ampere-hours at a pack voltage to joules."""
    if voltage_v <= 0:
        raise ValueError(f"voltage must be positive, got {voltage_v}")
    return charge_ah * voltage_v * 3600.0


def joules_to_mah(energy_j: float, voltage_v: float) -> float:
    """Convert electrical energy at a pack voltage to milliampere-hours."""
    return joules_to_ah(energy_j, voltage_v) * 1000.0


def vehicles_per_hour_to_per_second(rate_vph: float) -> float:
    """Convert a flow rate from vehicles/hour to vehicles/second."""
    return rate_vph / SECONDS_PER_HOUR


def per_second_to_vehicles_per_hour(rate_vps: float) -> float:
    """Convert a flow rate from vehicles/second to vehicles/hour."""
    return rate_vps * SECONDS_PER_HOUR
