"""Runtime safety audit of velocity plans before they are commanded.

The DP guarantees its own grid output is feasible, but the closed loop
executes plans from many sources — the cloud (possibly a stale cache
entry), local fallback tiers, repaired profiles — and a single corrupted
plan (a NaN speed, an acceleration outside the comfort envelope, an
arrival scheduled into red) would flow straight into vehicle commands.
:class:`PlanValidator` is the runtime gate: it audits any profile for

* finiteness of every position/speed/dwell value,
* strictly increasing positions,
* speed-limit compliance at each grid point (Eq. 7a),
* accel/decel-envelope compliance per segment (Eq. 7b),
* arrival inside an admissible window at every signal the plan crosses
  (green windows by default; the caller passes the planner's
  margin-shrunk ``T_q`` constraints for queue-aware plans).

The verdict carries a machine-readable violation list; each violation is
tagged *repairable* (small kinematic excess that clamping can fix) or
not (non-finite data, gross breaches, window misses).  :meth:`repair_plan`
applies the clamps — cap speeds at the limit, then a forward/backward
pass that restores the acceleration envelope — re-audits the result and
refuses (raises :class:`~repro.errors.PlanRejectedError`) anything still
invalid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.dp import DpSolution, TimeWindowConstraint
from repro.core.profile import VelocityProfile
from repro.errors import PlanRejectedError
from repro.guard.contracts import RepairReport
from repro.route.road import RoadSegment
from repro.vehicle.params import VehicleParams

#: Violation codes, roughly ordered by severity.
CODE_NONFINITE = "nonfinite"
CODE_ORDER = "position_order"
CODE_SPEED_LIMIT = "speed_limit"
CODE_ACCEL = "accel"
CODE_DECEL = "decel"
CODE_ARRIVAL_WINDOW = "arrival_window"


@dataclass(frozen=True)
class Violation:
    """One safety-invariant breach found in a plan.

    Attributes:
        code: Violation class (one of the ``CODE_*`` constants).
        position_m: Route position of the breach (NaN when global).
        value: The offending value (speed, acceleration or arrival time).
        limit: The violated bound (window edge for arrival misses).
        repairable: Whether :meth:`PlanValidator.repair_plan` can fix it.
        detail: Human-readable context.
    """

    code: str
    position_m: float
    value: float
    limit: float
    repairable: bool
    detail: str = ""

    def __str__(self) -> str:
        fix = "repairable" if self.repairable else "fatal"
        return (
            f"{self.code} at {self.position_m:.1f} m: value {self.value:.3f} "
            f"vs limit {self.limit:.3f} [{fix}] {self.detail}".rstrip()
        )


@dataclass(frozen=True)
class PlanVerdict:
    """Outcome of one plan audit.

    Attributes:
        ok: True when no invariant was violated.
        violations: Every breach found, in route order.
    """

    ok: bool
    violations: Tuple[Violation, ...] = ()

    @property
    def repairable(self) -> bool:
        """True when the plan is invalid but every breach is clampable."""
        return not self.ok and all(v.repairable for v in self.violations)

    @property
    def codes(self) -> Tuple[str, ...]:
        """The distinct violation codes present, in first-seen order."""
        seen: List[str] = []
        for v in self.violations:
            if v.code not in seen:
                seen.append(v.code)
        return tuple(seen)

    def summary(self) -> str:
        """One line per violation, for logs and CLI output."""
        if self.ok:
            return "plan valid: all safety invariants hold"
        return "\n".join(str(v) for v in self.violations)


class PlanValidator:
    """Audits (and repairs) velocity plans against the road's invariants.

    Args:
        road: The corridor the plan drives; source of limits and signal
            timing.
        vehicle: Acceleration-envelope source (paper defaults if ``None``).
        speed_tol_ms: Numerical slack on speed-limit checks.
        accel_tol_ms2: Numerical slack on acceleration checks.
        max_speed_repair_ms: Largest over-limit excess the repair mode
            will clamp; beyond it the breach is fatal (unit error, not
            noise).
        max_accel_repair_ms2: Largest envelope excess the repair mode
            will smooth away.
    """

    def __init__(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        speed_tol_ms: float = 0.25,
        accel_tol_ms2: float = 0.15,
        max_speed_repair_ms: float = 3.0,
        max_accel_repair_ms2: float = 2.0,
    ) -> None:
        self.road = road
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.speed_tol_ms = float(speed_tol_ms)
        self.accel_tol_ms2 = float(accel_tol_ms2)
        self.max_speed_repair_ms = float(max_speed_repair_ms)
        self.max_accel_repair_ms2 = float(max_accel_repair_ms2)

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def check_profile(
        self,
        profile: VelocityProfile,
        constraints: Optional[Sequence[TimeWindowConstraint]] = None,
    ) -> PlanVerdict:
        """Audit one profile; see the module docstring for the invariants.

        Args:
            profile: The plan to audit (full-trip or mid-route).
            constraints: Arrival-window constraints to enforce.  ``None``
                derives plain green windows from the road's signals — the
                universal "never arrive on red" floor; queue-aware callers
                pass their planner's ``signal_constraints`` so arrivals
                are held to the tighter ``T_q`` windows instead.
        """
        registry = obs.get_registry()
        registry.inc("guard.plans_checked")
        violations: List[Violation] = []
        pos = profile.positions_m
        spd = profile.speeds_ms

        finite = True
        for name, arr in (("position", pos), ("speed", spd), ("dwell", profile.dwell_s)):
            bad = ~np.isfinite(arr)
            if bad.any():
                finite = False
                i = int(np.argmax(bad))
                anchor = float(pos[i]) if np.isfinite(pos[i]) else float("nan")
                violations.append(
                    Violation(
                        CODE_NONFINITE,
                        anchor,
                        float(arr[i]),
                        0.0,
                        repairable=False,
                        detail=f"non-finite {name} at index {i}",
                    )
                )
        if finite and np.any(np.diff(pos) <= 0):
            i = int(np.argmax(np.diff(pos) <= 0))
            violations.append(
                Violation(
                    CODE_ORDER,
                    float(pos[i]),
                    float(pos[i + 1]),
                    float(pos[i]),
                    repairable=False,
                    detail=f"positions not strictly increasing at index {i}",
                )
            )
        if not finite or violations:
            # Kinematic and timing checks are meaningless on broken grids.
            return self._verdict(violations)

        for s, v in zip(pos, spd):
            v_max = self.road.v_max_at(min(float(s), self.road.length_m))
            excess = float(v) - v_max
            if excess > self.speed_tol_ms:
                violations.append(
                    Violation(
                        CODE_SPEED_LIMIT,
                        float(s),
                        float(v),
                        v_max,
                        repairable=excess <= self.max_speed_repair_ms,
                    )
                )

        a_max = self.vehicle.max_accel_ms2
        a_min = self.vehicle.min_accel_ms2
        for s, a in zip(pos[:-1], profile.accelerations()):
            if a > a_max + self.accel_tol_ms2:
                violations.append(
                    Violation(
                        CODE_ACCEL,
                        float(s),
                        float(a),
                        a_max,
                        repairable=(a - a_max) <= self.max_accel_repair_ms2,
                    )
                )
            elif a < a_min - self.accel_tol_ms2:
                violations.append(
                    Violation(
                        CODE_DECEL,
                        float(s),
                        float(a),
                        a_min,
                        repairable=(a_min - a) <= self.max_accel_repair_ms2,
                    )
                )

        violations.extend(self._window_violations(profile, constraints))
        return self._verdict(violations)

    def check_solution(
        self,
        solution: DpSolution,
        constraints: Optional[Sequence[TimeWindowConstraint]] = None,
    ) -> PlanVerdict:
        """Audit a DP solution: its profile plus finite summary metrics."""
        verdict = self.check_profile(solution.profile, constraints)
        extras: List[Violation] = []
        for name, value in (("energy_j", solution.energy_j), ("trip_time_s", solution.trip_time_s)):
            if not np.isfinite(value):
                extras.append(
                    Violation(
                        CODE_NONFINITE,
                        float("nan"),
                        float(value),
                        0.0,
                        repairable=False,
                        detail=f"non-finite solution metric {name}",
                    )
                )
        if extras:
            return PlanVerdict(ok=False, violations=verdict.violations + tuple(extras))
        return verdict

    def _window_violations(
        self,
        profile: VelocityProfile,
        constraints: Optional[Sequence[TimeWindowConstraint]],
    ) -> List[Violation]:
        if constraints is None:
            constraints = self._green_constraints(profile)
        violations: List[Violation] = []
        lo = float(profile.positions_m[0])
        hi = float(profile.positions_m[-1])
        for constraint in constraints:
            s = constraint.position_m
            if not lo <= s <= hi or s == hi:
                continue  # signal behind the vehicle or at the route exit
            if self._stops_at(profile, s):
                continue  # the plan waits out the red here on purpose
            arrival = profile.arrival_time_at(s)
            if constraint.windows.is_empty or not bool(
                constraint.windows.contains(np.asarray([arrival]))[0]
            ):
                violations.append(
                    Violation(
                        CODE_ARRIVAL_WINDOW,
                        s,
                        float(arrival),
                        float("nan"),
                        repairable=False,
                        detail="arrival outside every admissible window",
                    )
                )
        return violations

    def _green_constraints(
        self, profile: VelocityProfile
    ) -> List[TimeWindowConstraint]:
        """The default audit windows: plain green phases, no margin."""
        from repro.core.cost import WindowSet
        from repro.signal.queue import QueueWindow

        start = profile.start_time_s
        horizon = max(profile.total_time_s * 2.0, 60.0)
        constraints = []
        for site in self.road.signals:
            green = site.light.green_windows(horizon, start)
            windows = WindowSet([QueueWindow(a, b) for a, b in green])
            constraints.append(
                TimeWindowConstraint(position_m=site.position_m, windows=windows)
            )
        return constraints

    @staticmethod
    def _stops_at(profile: VelocityProfile, position_m: float) -> bool:
        """Whether the plan parks (dwell > 0) at this position."""
        near = np.abs(profile.positions_m - position_m) <= 1.0
        return bool(np.any(near & (profile.dwell_s > 0.0)))

    @staticmethod
    def _verdict(violations: List[Violation]) -> PlanVerdict:
        registry = obs.get_registry()
        if violations:
            registry.inc("guard.plans_invalid")
            for code in {v.code for v in violations}:
                registry.inc(f"guard.violation.{code}")
        return PlanVerdict(ok=not violations, violations=tuple(violations))

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair_plan(
        self,
        profile: VelocityProfile,
        constraints: Optional[Sequence[TimeWindowConstraint]] = None,
    ) -> Tuple[VelocityProfile, RepairReport]:
        """Clamp small kinematic violations; refuse anything else.

        A valid plan is returned unchanged (same object, empty report) so
        screening a healthy loop is a no-op.  For a repairable plan the
        speeds are capped at the zone limit, then a forward pass bounds
        accelerations by ``v' <= sqrt(v^2 + 2 a_max ds)`` and a backward
        pass bounds decelerations symmetrically; the result is re-audited
        under the same constraints.

        Raises:
            PlanRejectedError: The plan carries a fatal violation, or the
                clamped plan still fails the audit (e.g. slowing down to
                respect a limit pushed a signal arrival out of its
                window).
        """
        verdict = self.check_profile(profile, constraints)
        report = RepairReport("plan")
        if verdict.ok:
            return profile, report
        if not verdict.repairable:
            raise PlanRejectedError(
                "plan rejected: " + "; ".join(str(v) for v in verdict.violations),
                violations=verdict.violations,
            )
        pos = profile.positions_m.copy()
        spd = profile.speeds_ms.copy()
        for i, s in enumerate(pos):
            v_max = self.road.v_max_at(min(float(s), self.road.length_m))
            if spd[i] > v_max:
                report.add(
                    "speed_ms", i, "clamped", f"{spd[i]:.3f} -> limit {v_max:.3f} at {s:.0f} m"
                )
                spd[i] = v_max
        a_max = self.vehicle.max_accel_ms2
        a_min = abs(self.vehicle.min_accel_ms2)
        ds = np.diff(pos)
        for i in range(spd.size - 1):  # forward: acceleration cap
            ceiling = float(np.sqrt(spd[i] * spd[i] + 2.0 * a_max * ds[i]))
            if spd[i + 1] > ceiling:
                report.add(
                    "speed_ms", i + 1, "clamped",
                    f"{spd[i + 1]:.3f} -> {ceiling:.3f} (accel envelope)",
                )
                spd[i + 1] = ceiling
        for i in range(spd.size - 2, -1, -1):  # backward: deceleration cap
            ceiling = float(np.sqrt(spd[i + 1] * spd[i + 1] + 2.0 * a_min * ds[i]))
            if spd[i] > ceiling:
                report.add(
                    "speed_ms", i, "clamped",
                    f"{spd[i]:.3f} -> {ceiling:.3f} (decel envelope)",
                )
                spd[i] = ceiling
        repaired = VelocityProfile(
            positions_m=pos,
            speeds_ms=spd,
            dwell_s=profile.dwell_s.copy(),
            start_time_s=profile.start_time_s,
        )
        recheck = self.check_profile(repaired, constraints)
        if not recheck.ok:
            raise PlanRejectedError(
                "plan irreparable: clamping left violations: "
                + "; ".join(str(v) for v in recheck.violations),
                violations=recheck.violations,
            )
        obs.get_registry().inc("guard.plans_repaired")
        return repaired, report
