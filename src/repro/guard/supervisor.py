"""The runtime safety supervisor of the closed planning loop.

:class:`SafetySupervisor` sits between every plan source and the vehicle
command: each served plan is audited by a
:class:`~repro.guard.plan_check.PlanValidator`, small kinematic
violations are repaired in place (when repair is enabled), and anything
irreparable is rejected so the caller's degradation ladder can fall to
its next tier.  The supervisor also watches the executing trip for
divergence between the plan's predicted arrival timing and the observed
state (forcing an early replan past a threshold) and supplies the
safe-stop command of last resort — a smooth deceleration to standstill —
for the case where *no* tier produced a valid plan.

All decisions are counted twice: in the process-wide ``repro.obs``
registry (``guard.*`` counters) and in the supervisor's own
:class:`GuardStats`, which the closed-loop driver snapshots per drive so
each :class:`~repro.sim.closed_loop.ClosedLoopResult` carries exactly
the guard activity of its own trip.

With valid inputs and zero faults the supervisor is transparent: audits
pass, no repair or rejection fires, and the served plan object reaches
the vehicle unchanged — closed-loop results are bit-identical to a run
without the supervisor.  Divergence monitoring is opt-in
(``divergence_threshold_s=None`` by default) because forcing early
replans changes the loop's timing even on healthy trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.dp import TimeWindowConstraint
from repro.core.profile import VelocityProfile
from repro.errors import PlanRejectedError
from repro.guard.plan_check import PlanValidator, PlanVerdict

#: Tier label of the last-resort stop profile.
TIER_SAFE_STOP = "safe_stop"


@dataclass
class GuardStats:
    """Cumulative supervisor decisions (snapshot/diff-able per drive).

    Attributes:
        plans_checked: Plans screened.
        plans_passed: Plans that passed unmodified.
        plans_repaired: Plans served after clamping repairs.
        plans_rejected: Plans refused (caller fell to the next tier).
        early_replans: Replans forced by divergence monitoring.
        safe_stops: Times the safe-stop profile was engaged.
        violation_counts: Violations seen, by code, across all screens.
    """

    plans_checked: int = 0
    plans_passed: int = 0
    plans_repaired: int = 0
    plans_rejected: int = 0
    early_replans: int = 0
    safe_stops: int = 0
    violation_counts: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "GuardStats":
        """An independent copy, for per-drive accounting."""
        return GuardStats(
            plans_checked=self.plans_checked,
            plans_passed=self.plans_passed,
            plans_repaired=self.plans_repaired,
            plans_rejected=self.plans_rejected,
            early_replans=self.early_replans,
            safe_stops=self.safe_stops,
            violation_counts=dict(self.violation_counts),
        )

    def since(self, earlier: "GuardStats") -> "GuardStats":
        """The activity between an earlier snapshot and now."""
        codes: Dict[str, int] = {}
        for code, n in self.violation_counts.items():
            delta = n - earlier.violation_counts.get(code, 0)
            if delta:
                codes[code] = delta
        return GuardStats(
            plans_checked=self.plans_checked - earlier.plans_checked,
            plans_passed=self.plans_passed - earlier.plans_passed,
            plans_repaired=self.plans_repaired - earlier.plans_repaired,
            plans_rejected=self.plans_rejected - earlier.plans_rejected,
            early_replans=self.early_replans - earlier.early_replans,
            safe_stops=self.safe_stops - earlier.safe_stops,
            violation_counts=codes,
        )


class SafetySupervisor:
    """Screens every served plan and supervises the executing trip.

    Args:
        validator: The plan auditor (carries road + vehicle envelopes).
        repair: Attempt to clamp repairable violations instead of
            rejecting the plan outright.
        divergence_threshold_s: Absolute plan-vs-observed arrival-time
            error (s) beyond which :meth:`should_replan` requests an
            early replan; ``None`` disables divergence monitoring.
        safe_stop_decel_ms2: Deceleration magnitude of the safe-stop
            profile (gentler than the comfort floor by default).
    """

    def __init__(
        self,
        validator: PlanValidator,
        repair: bool = True,
        divergence_threshold_s: Optional[float] = None,
        safe_stop_decel_ms2: float = 1.0,
    ) -> None:
        if safe_stop_decel_ms2 <= 0:
            raise ValueError("safe-stop deceleration must be positive")
        if divergence_threshold_s is not None and divergence_threshold_s <= 0:
            raise ValueError("divergence threshold must be positive")
        self.validator = validator
        self.repair = bool(repair)
        self.divergence_threshold_s = divergence_threshold_s
        self.safe_stop_decel_ms2 = float(safe_stop_decel_ms2)
        self.stats = GuardStats()

    # ------------------------------------------------------------------
    # Screening
    # ------------------------------------------------------------------
    def screen_profile(
        self,
        profile: VelocityProfile,
        constraints: Optional[Sequence[TimeWindowConstraint]] = None,
        tier: str = "planner",
    ) -> Tuple[VelocityProfile, PlanVerdict, bool]:
        """Audit one profile; repair it if allowed and needed.

        Returns:
            ``(profile, verdict, repaired)`` — the original object when
            the audit passed, the clamped replacement when a repair
            served, plus the (pre-repair) verdict.

        Raises:
            PlanRejectedError: The plan is irreparable (or repair is
                disabled and the audit failed).
        """
        registry = obs.get_registry()
        self.stats.plans_checked += 1
        verdict = self.validator.check_profile(profile, constraints)
        for code in verdict.codes:
            self.stats.violation_counts[code] = (
                self.stats.violation_counts.get(code, 0) + 1
            )
        if verdict.ok:
            self.stats.plans_passed += 1
            return profile, verdict, False
        if self.repair and verdict.repairable:
            try:
                repaired, _report = self.validator.repair_plan(profile, constraints)
            except PlanRejectedError:
                pass  # clamping could not restore the invariants
            else:
                self.stats.plans_repaired += 1
                return repaired, verdict, True
        self.stats.plans_rejected += 1
        registry.inc("guard.plans_rejected")
        raise PlanRejectedError(
            f"{tier} plan rejected: " + "; ".join(str(v) for v in verdict.violations),
            violations=verdict.violations,
            tier=tier,
        )

    def screen_tier_plan(self, plan, constraints=None):
        """Screen a ladder :class:`~repro.resilience.ladder.TierPlan`.

        A profile-less plan (the speed-limit tier) passes trivially — its
        command tracks posted limits by construction.  When a repair
        served, the returned plan carries the clamped profile and a
        rebuilt command.

        Raises:
            PlanRejectedError: The tier's plan failed its audit.
        """
        if plan.profile is None:
            return plan
        profile, _verdict, repaired = self.screen_profile(
            plan.profile, constraints, tier=plan.tier
        )
        if not repaired:
            return plan
        from repro.sim.scenario import profile_speed_command

        return replace(
            plan, profile=profile, command=profile_speed_command(profile)
        )

    def screen_command(
        self,
        command: Callable[[float], float],
        position_m: float = 0.0,
        sample_step_m: float = 25.0,
        tier: str = "speed_limit",
    ) -> None:
        """Audit a raw position-indexed command (the profile-less tiers).

        Samples the command from the vehicle's position to the route end
        and requires every commanded speed to be finite, non-negative and
        at or below the local limit (within the validator's tolerance).
        This is how corrupted road data (a NaN or absurd ``v_max``) is
        caught even at the speed-limit tier, forcing the safe-stop floor.

        Raises:
            PlanRejectedError: A sampled command value broke an invariant.
        """
        road = self.validator.road
        tol = self.validator.speed_tol_ms
        self.stats.plans_checked += 1
        s = max(float(position_m), 0.0)
        while s <= road.length_m:
            v = command(s)
            v_max = road.v_max_at(min(s, road.length_m))
            if not (np.isfinite(v) and np.isfinite(v_max) and 0.0 <= v <= v_max + tol):
                self.stats.plans_rejected += 1
                self.stats.violation_counts["command"] = (
                    self.stats.violation_counts.get("command", 0) + 1
                )
                obs.get_registry().inc("guard.plans_rejected")
                raise PlanRejectedError(
                    f"{tier} command rejected: speed {v!r} vs limit {v_max!r} "
                    f"at {s:.0f} m",
                    tier=tier,
                )
            s += sample_step_m
        self.stats.plans_passed += 1

    # ------------------------------------------------------------------
    # Divergence monitoring
    # ------------------------------------------------------------------
    def divergence_s(
        self, profile: VelocityProfile, position_m: float, time_s: float
    ) -> float:
        """Observed-minus-planned arrival error at the vehicle's position.

        Positive values mean the vehicle is running late against its
        plan (e.g. a residual queue held it), negative values early.
        Positions outside the profile's span report zero divergence.
        """
        lo = float(profile.positions_m[0])
        hi = float(profile.positions_m[-1])
        if not lo <= position_m <= hi:
            return 0.0
        return float(time_s - profile.arrival_time_at(position_m))

    def should_replan(
        self, profile: Optional[VelocityProfile], position_m: float, time_s: float
    ) -> bool:
        """Whether divergence warrants an early replan (and count it)."""
        if self.divergence_threshold_s is None or profile is None:
            return False
        if abs(self.divergence_s(profile, position_m, time_s)) <= self.divergence_threshold_s:
            return False
        self.stats.early_replans += 1
        obs.get_registry().inc("guard.early_replans")
        return True

    # ------------------------------------------------------------------
    # Safe stop
    # ------------------------------------------------------------------
    def safe_stop_command(
        self, position_m: float, speed_ms: float
    ) -> Callable[[float], float]:
        """The last-resort command: decelerate smoothly to a standstill.

        From the engage state ``(position_m, speed_ms)`` the commanded
        speed follows ``v(s) = sqrt(v0^2 - 2 d (s - s0))`` down to zero
        and stays zero beyond the stopping point — the kinematic ramp of
        a constant ``safe_stop_decel_ms2`` brake.
        """
        self.stats.safe_stops += 1
        obs.get_registry().inc("guard.safe_stops")
        v0_sq = float(speed_ms) * float(speed_ms)
        s0 = float(position_m)
        decel = self.safe_stop_decel_ms2

        def target(s: float) -> float:
            if s <= s0:
                return float(np.sqrt(v0_sq))
            return float(np.sqrt(max(v0_sq - 2.0 * decel * (s - s0), 0.0)))

        return target
