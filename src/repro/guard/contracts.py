"""Typed input contracts for every external data boundary.

Everything that enters the system from outside — road JSON dicts, trace
CSV rows, traffic-volume exports, plan requests — passes through one of
the ``validate_*`` entry points here before any model object is built.
Each contract checks structure (required fields, types), finiteness,
units/ranges, monotonicity and cross-field consistency, and raises a
structured :class:`~repro.errors.InputValidationError` carrying the
source, the dotted field path and (for tabular data) the offending row.

Every entry point also supports a *repair* mode: salvageable defects
(a NaN trace row, a slightly negative speed, a stop sign past the route
end) are dropped or clamped instead of rejected, and every change is
recorded in the returned :class:`RepairReport` so callers can audit what
the boundary did to their data.  Defects that would silently change the
meaning of the input (a wrong header, a non-monotone hour index, a
missing section) are never repaired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import InputValidationError

#: Hard physical ceiling for any speed entering the system (m/s); ~430
#: km/h, far above any posted limit — only meant to catch unit mistakes
#: (km/h or mph fed where m/s is expected would usually still pass, but
#: raw sensor garbage will not).
SPEED_CEILING_MS = 120.0

#: Hard ceiling for route lengths (m); 200 km of urban corridor is far
#: beyond anything the DP grid can represent sensibly.
LENGTH_CEILING_M = 200_000.0

#: Road grades steeper than ~27 degrees are treated as data errors.
GRADE_CEILING_RAD = 0.5


@dataclass(frozen=True)
class Repair:
    """One change the repair mode made to an input.

    Attributes:
        field: Dotted path of the repaired field.
        row: Data-row index for tabular inputs, ``None`` otherwise.
        action: ``"dropped"`` or ``"clamped"``.
        detail: What was wrong and what the value became.
    """

    field: str
    row: Optional[int]
    action: str
    detail: str


@dataclass
class RepairReport:
    """Everything the repair mode changed while validating one input.

    Attributes:
        source: The boundary the data crossed.
        repairs: The individual changes, in application order.
    """

    source: str
    repairs: List[Repair] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.repairs)

    def __len__(self) -> int:
        return len(self.repairs)

    def add(self, field_path: str, row: Optional[int], action: str, detail: str) -> None:
        """Record one repair (and count it in the metrics registry)."""
        self.repairs.append(Repair(field_path, row, action, detail))
        obs.get_registry().inc("guard.input_repairs")

    def summary(self) -> str:
        """One line per repair, for logs and CLI output."""
        lines = []
        for r in self.repairs:
            where = r.field + (f" (row {r.row})" if r.row is not None else "")
            lines.append(f"{self.source}: {where}: {r.action} — {r.detail}")
        return "\n".join(lines)


def _fail(source: str, field_path: str, reason: str, row: Optional[int] = None):
    obs.get_registry().inc("guard.input_errors")
    raise InputValidationError(reason, source=source, field=field_path, row=row)


def _is_finite_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def _require_finite(source: str, field_path: str, value: object, row: Optional[int] = None) -> float:
    if not _is_finite_number(value):
        _fail(source, field_path, f"must be a finite number, got {value!r}", row)
    return float(value)


# ----------------------------------------------------------------------
# Road dicts / JSON
# ----------------------------------------------------------------------
def validate_road_dict(
    data: dict, source: str = "<road dict>", repair: bool = False
) -> Tuple[dict, RepairReport]:
    """Validate (and optionally repair) a JSON-shaped road definition.

    Checks the full contract of :func:`repro.route.io.road_from_dict`
    input: required sections, finite values, positive lengths/limits,
    zones tiling ``[0, length]`` in order, signals/stop signs on the
    route, sane cycle times and a monotone grade profile.

    Args:
        data: The parsed JSON dict.
        source: Label for error messages (usually the file path).
        repair: Drop/clamp salvageable defects instead of raising.

    Returns:
        ``(data, report)`` — the (possibly repaired copy of the) dict and
        the repair report.  Without repairs the input dict is returned
        as-is.

    Raises:
        InputValidationError: On any unrepairable (or, in strict mode,
            any) contract violation.
    """
    report = RepairReport(source)
    if not isinstance(data, dict):
        _fail(source, "", f"road definition must be a JSON object, got {type(data).__name__}")
    for section in ("name", "length_m", "zones", "stop_signs", "signals"):
        if section not in data:
            _fail(source, section, "required section is missing")
    length = _require_finite(source, "length_m", data["length_m"])
    if not 0.0 < length <= LENGTH_CEILING_M:
        _fail(source, "length_m", f"must be in (0, {LENGTH_CEILING_M:.0f}] m, got {length}")

    zones = data["zones"]
    if not isinstance(zones, list) or not zones:
        _fail(source, "zones", "must be a non-empty list")
    cursor = 0.0
    for i, zone in enumerate(zones):
        prefix = f"zones[{i}]"
        for key in ("start_m", "end_m", "v_max_ms"):
            if key not in zone:
                _fail(source, f"{prefix}.{key}", "required field is missing")
        start = _require_finite(source, f"{prefix}.start_m", zone["start_m"])
        end = _require_finite(source, f"{prefix}.end_m", zone["end_m"])
        v_max = _require_finite(source, f"{prefix}.v_max_ms", zone["v_max_ms"])
        v_min = _require_finite(source, f"{prefix}.v_min_ms", zone.get("v_min_ms", 0.0))
        if abs(start - cursor) > 1e-6:
            _fail(
                source,
                f"{prefix}.start_m",
                f"zones must tile the route without gaps: expected start {cursor}, got {start}",
            )
        if end <= start:
            _fail(source, f"{prefix}.end_m", f"zone end {end} must exceed start {start}")
        if not 0.0 < v_max <= SPEED_CEILING_MS:
            _fail(
                source,
                f"{prefix}.v_max_ms",
                f"must be in (0, {SPEED_CEILING_MS:.0f}] m/s, got {v_max}",
            )
        if v_min < 0.0 or v_min > v_max:
            if repair and _is_finite_number(zone.get("v_min_ms", 0.0)):
                clamped = min(max(v_min, 0.0), v_max)
                zone = dict(zone, v_min_ms=clamped)
                zones = list(zones)
                zones[i] = zone
                data = dict(data, zones=zones)
                report.add(
                    f"{prefix}.v_min_ms",
                    None,
                    "clamped",
                    f"{v_min} outside [0, v_max={v_max}] -> {clamped}",
                )
            else:
                _fail(
                    source,
                    f"{prefix}.v_min_ms",
                    f"must lie in [0, v_max={v_max}], got {v_min}",
                )
        cursor = end
    if abs(cursor - length) > 1e-6:
        _fail(source, "zones", f"zones end at {cursor} m but the route is {length} m long")

    stop_signs = data["stop_signs"]
    if not isinstance(stop_signs, list):
        _fail(source, "stop_signs", "must be a list of positions")
    kept_stops: List[float] = []
    stops_changed = False
    for i, position in enumerate(stop_signs):
        prefix = f"stop_signs[{i}]"
        if not _is_finite_number(position) or not 0.0 <= float(position) <= length:
            if repair:
                report.add(prefix, None, "dropped", f"position {position!r} off the route")
                stops_changed = True
                continue
            _fail(source, prefix, f"position must be a finite value in [0, {length}], got {position!r}")
        kept_stops.append(float(position))
    if stops_changed:
        data = dict(data, stop_signs=kept_stops)

    signals = data["signals"]
    if not isinstance(signals, list):
        _fail(source, "signals", "must be a list of signal objects")
    for i, sig in enumerate(signals):
        prefix = f"signals[{i}]"
        for key in ("position_m", "red_s", "green_s"):
            if key not in sig:
                _fail(source, f"{prefix}.{key}", "required field is missing")
        position = _require_finite(source, f"{prefix}.position_m", sig["position_m"])
        if not 0.0 < position <= length:
            _fail(source, f"{prefix}.position_m", f"must lie on the route (0, {length}], got {position}")
        red = _require_finite(source, f"{prefix}.red_s", sig["red_s"])
        green = _require_finite(source, f"{prefix}.green_s", sig["green_s"])
        if red <= 0 or green <= 0:
            _fail(source, f"{prefix}.red_s", f"phase durations must be positive, got red={red}, green={green}")
        offset = _require_finite(source, f"{prefix}.offset_s", sig.get("offset_s", 0.0))
        del offset  # finiteness is the contract; any phase offset is legal
        ratio = _require_finite(source, f"{prefix}.turn_ratio", sig.get("turn_ratio", 1.0))
        if not 0.0 < ratio <= 1.0:
            _fail(source, f"{prefix}.turn_ratio", f"must be in (0, 1], got {ratio}")
        spacing = _require_finite(source, f"{prefix}.queue_spacing_m", sig.get("queue_spacing_m", 8.5))
        if spacing <= 0:
            _fail(source, f"{prefix}.queue_spacing_m", f"must be positive, got {spacing}")

    grade = data.get("grade")
    if grade is not None:
        for key in ("positions_m", "grades_rad"):
            if key not in grade:
                _fail(source, f"grade.{key}", "required field is missing")
        positions = grade["positions_m"]
        grades = grade["grades_rad"]
        if len(positions) != len(grades) or not positions:
            _fail(
                source,
                "grade",
                f"positions ({len(positions)}) and grades ({len(grades)}) must be equal-length and non-empty",
            )
        prev = -math.inf
        for i, (p, g) in enumerate(zip(positions, grades)):
            p = _require_finite(source, f"grade.positions_m[{i}]", p)
            g = _require_finite(source, f"grade.grades_rad[{i}]", g)
            if p <= prev:
                _fail(source, f"grade.positions_m[{i}]", f"must be strictly increasing, got {p} after {prev}")
            if abs(g) > GRADE_CEILING_RAD:
                _fail(source, f"grade.grades_rad[{i}]", f"|grade| must be <= {GRADE_CEILING_RAD} rad, got {g}")
            prev = p
    return data, report


# ----------------------------------------------------------------------
# Trace rows
# ----------------------------------------------------------------------
def validate_trace_rows(
    rows: Sequence[Tuple[float, float, float]],
    source: str = "<trace>",
    repair: bool = False,
) -> Tuple[List[Tuple[float, float, float]], RepairReport]:
    """Validate ``(time_s, position_m, speed_ms)`` rows from a trace CSV.

    Contract: at least two rows, every value finite, times strictly
    increasing, positions non-decreasing, speeds in
    ``[0, SPEED_CEILING_MS]``.  Repair mode drops non-finite rows and
    rows that step backwards in time or space, and clamps slightly
    negative speeds to zero; speeds above the ceiling are never repaired
    (they indicate a unit error, not noise).

    Returns:
        ``(rows, report)`` with the surviving rows.

    Raises:
        InputValidationError: On any unrepairable (or, in strict mode,
            any) contract violation.
    """
    report = RepairReport(source)
    kept: List[Tuple[float, float, float]] = []
    for i, row in enumerate(rows):
        if len(row) != 3:
            _fail(source, "", f"expected 3 columns, got {len(row)}", row=i)
        t, s, v = row
        if not (_is_finite_number(t) and _is_finite_number(s) and _is_finite_number(v)):
            if repair:
                report.add("row", i, "dropped", f"non-finite sample {row!r}")
                continue
            _fail(source, "", f"non-finite sample {row!r}", row=i)
        t, s, v = float(t), float(s), float(v)
        if v < 0.0:
            if repair and v > -0.5:
                report.add("speed_ms", i, "clamped", f"{v} -> 0.0")
                v = 0.0
            else:
                _fail(source, "speed_ms", f"speed must be >= 0, got {v}", row=i)
        if v > SPEED_CEILING_MS:
            _fail(
                source,
                "speed_ms",
                f"speed {v} m/s exceeds the {SPEED_CEILING_MS:.0f} m/s ceiling (unit error?)",
                row=i,
            )
        if kept:
            if t <= kept[-1][0]:
                if repair:
                    report.add("time_s", i, "dropped", f"non-increasing time {t} after {kept[-1][0]}")
                    continue
                _fail(source, "time_s", f"times must be strictly increasing, got {t} after {kept[-1][0]}", row=i)
            if s < kept[-1][1]:
                if repair:
                    report.add("position_m", i, "dropped", f"position {s} steps behind {kept[-1][1]}")
                    continue
                _fail(source, "position_m", f"positions must be non-decreasing, got {s} after {kept[-1][1]}", row=i)
        kept.append((t, s, v))
    if len(kept) < 2:
        _fail(source, "", f"needs at least two valid samples, {len(kept)} survived validation")
    return kept, report


# ----------------------------------------------------------------------
# Traffic-volume rows
# ----------------------------------------------------------------------
def validate_volume_rows(
    rows: Sequence[Tuple[int, float]],
    source: str = "<volume>",
    repair: bool = False,
) -> Tuple[List[Tuple[int, float]], RepairReport]:
    """Validate ``(hour, volume_vph)`` rows from an hourly-count export.

    Contract: non-empty, hour indices consecutive integers, volumes
    finite and non-negative.  Repair mode clamps negative volumes to
    zero and replaces a non-finite volume with the previous hour's value
    (counts are strongly autocorrelated); a gap or shuffle in the hour
    index is never repaired — it means rows are missing or reordered and
    any fill-in would fabricate data.

    Returns:
        ``(rows, report)`` with the repaired rows.

    Raises:
        InputValidationError: On any unrepairable (or, in strict mode,
            any) contract violation.
    """
    report = RepairReport(source)
    if not rows:
        _fail(source, "", "volume series is empty")
    kept: List[Tuple[int, float]] = []
    for i, row in enumerate(rows):
        if len(row) != 2:
            _fail(source, "", f"expected 2 columns, got {len(row)}", row=i)
        hour, volume = row
        if not _is_finite_number(hour) or float(hour) != int(hour):
            _fail(source, "hour", f"hour index must be an integer, got {hour!r}", row=i)
        hour = int(hour)
        if kept and hour != kept[-1][0] + 1:
            _fail(
                source,
                "hour",
                f"hour index must be consecutive, got {hour} after {kept[-1][0]}",
                row=i,
            )
        if not _is_finite_number(volume):
            if repair and kept:
                report.add("volume_vph", i, "clamped", f"non-finite {volume!r} -> previous hour {kept[-1][1]}")
                volume = kept[-1][1]
            else:
                _fail(source, "volume_vph", f"must be a finite number, got {volume!r}", row=i)
        volume = float(volume)
        if volume < 0.0:
            if repair:
                report.add("volume_vph", i, "clamped", f"{volume} -> 0.0")
                volume = 0.0
            else:
                _fail(source, "volume_vph", f"must be >= 0, got {volume}", row=i)
        kept.append((hour, volume))
    return kept, report


# ----------------------------------------------------------------------
# Plan requests
# ----------------------------------------------------------------------
def validate_plan_request(
    req: "PlanRequest",
    route_length_m: Optional[float] = None,
    source: str = "plan request",
    check_fields: bool = True,
) -> None:
    """Validate one cloud plan request beyond its constructor checks.

    :class:`~repro.cloud.messages.PlanRequest` rejects negative fields at
    construction, but NaN/inf sail through ``< 0`` comparisons and a
    position past the route end is only detectable with the road in
    hand.  The service calls this with its route length before serving.

    Args:
        req: The request under test.
        route_length_m: When given, also reject positions at/past the
            route end.
        source: Error-message prefix naming the boundary.
        check_fields: Run the per-field finiteness/ceiling checks.  A
            frozen :class:`PlanRequest` already passed them in
            ``__post_init__`` and cannot have changed since, so the
            service passes ``False`` and only adds the route-length
            check it alone can perform — no double validation.

    Raises:
        InputValidationError: On a non-finite field, an off-route
            position, or a speed above the physical ceiling.
    """
    if check_fields:
        corridor_id = getattr(req, "corridor_id", "")
        if not isinstance(corridor_id, str) or not corridor_id:
            _fail(source, "corridor_id", f"must be a non-empty string, got {corridor_id!r}")
        fields: Dict[str, float] = {
            "depart_s": req.depart_s,
            "position_m": req.position_m,
            "speed_ms": req.speed_ms,
        }
        if req.max_trip_time_s is not None:
            fields["max_trip_time_s"] = req.max_trip_time_s
        for name, value in fields.items():
            if not _is_finite_number(value):
                _fail(source, name, f"must be a finite number, got {value!r}")
        if req.speed_ms > SPEED_CEILING_MS:
            _fail(source, "speed_ms", f"{req.speed_ms} m/s exceeds the {SPEED_CEILING_MS:.0f} m/s ceiling")
    if route_length_m is not None and req.position_m >= route_length_m:
        _fail(
            source,
            "position_m",
            f"{req.position_m} m is at or past the route end ({route_length_m} m)",
        )
