"""Semantic robustness: input contracts, plan audits, loop supervision.

PR 2's resilience layer made the vehicle-cloud loop survive *transport*
faults; this package defends against *bad data*:

* :mod:`repro.guard.contracts` — typed validation (with an optional
  repair mode) for every external input boundary: road JSON, trace CSV,
  traffic-volume exports and plan requests.  Violations raise a
  structured :class:`~repro.errors.InputValidationError` carrying the
  source, field path and row.
* :mod:`repro.guard.plan_check` — :class:`PlanValidator`, the runtime
  gate auditing any velocity plan (finiteness, monotone positions,
  speed-limit and accel-envelope compliance, signal arrivals inside
  admissible windows) with machine-readable verdicts and a clamping
  ``repair_plan``.
* :mod:`repro.guard.supervisor` — :class:`SafetySupervisor`, wired into
  the closed-loop driver, cloud service and degradation ladder: every
  served plan is screened before it becomes a vehicle command, rejected
  plans fall down the ladder, divergence forces early replans, and a
  safe-stop profile is the floor below the floor.
"""

from repro.guard.contracts import (
    Repair,
    RepairReport,
    validate_plan_request,
    validate_road_dict,
    validate_trace_rows,
    validate_volume_rows,
)
from repro.guard.plan_check import PlanValidator, PlanVerdict, Violation
from repro.guard.supervisor import TIER_SAFE_STOP, GuardStats, SafetySupervisor

__all__ = [
    "GuardStats",
    "PlanValidator",
    "PlanVerdict",
    "Repair",
    "RepairReport",
    "SafetySupervisor",
    "TIER_SAFE_STOP",
    "Violation",
    "validate_plan_request",
    "validate_road_dict",
    "validate_trace_rows",
    "validate_volume_rows",
]
