"""Velocity profiles: the plan representation shared by all components.

A :class:`VelocityProfile` is distance-indexed — speeds at increasing route
positions, exactly the DP's decision variables (Eq. 7).  Between adjacent
grid points the vehicle holds constant acceleration, so timing follows the
paper's average-speed rule (Eq. 10):

    t(s_{i+1}) = t(s_i) + ds / ((v_i + v_{i+1}) / 2)

Profiles can carry per-point dwell times (e.g. the mandatory wait at a stop
sign) and convert to uniformly time-sampled :class:`TimedTrace` objects for
energy metering and simulator playback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.vehicle.energy_meter import EnergyMeter, TripEnergy
from repro.vehicle.params import VehicleParams


@dataclass(frozen=True)
class TimedTrace:
    """A uniformly time-sampled speed trace.

    Attributes:
        times_s: Sample times, strictly increasing (s).
        speeds_ms: Speed at each sample (m/s).
        positions_m: Travelled distance at each sample (m).
    """

    times_s: np.ndarray
    speeds_ms: np.ndarray
    positions_m: np.ndarray

    def __post_init__(self) -> None:
        if not (self.times_s.shape == self.speeds_ms.shape == self.positions_m.shape):
            raise ConfigurationError("trace arrays must share a shape")
        if self.times_s.size < 2:
            raise ConfigurationError("a trace needs at least two samples")
        if np.any(np.diff(self.times_s) <= 0):
            raise ConfigurationError("trace times must be strictly increasing")
        if np.any(self.speeds_ms < -1e-9):
            raise ConfigurationError("trace speeds must be non-negative")

    @property
    def duration_s(self) -> float:
        """Trace duration (s)."""
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def distance_m(self) -> float:
        """Distance covered (m)."""
        return float(self.positions_m[-1] - self.positions_m[0])

    def energy(self, params: Optional[VehicleParams] = None) -> TripEnergy:
        """Meter the trace with the EV consumption model."""
        meter = EnergyMeter(params)
        return meter.measure(self.times_s, np.maximum(self.speeds_ms, 0.0))


class VelocityProfile:
    """A distance-indexed velocity plan with Eq. 10 timing.

    Args:
        positions_m: Strictly increasing route positions (m).
        speeds_ms: Planned speed at each position (m/s, >= 0).
        dwell_s: Optional stationary wait at each position (s); used for
            stop-sign dwells.  Defaults to zero everywhere.
        start_time_s: Absolute departure time at the first position.

    Raises:
        ConfigurationError: If arrays are inconsistent, or two adjacent
            speeds are both zero with no way to cover the gap.
    """

    def __init__(
        self,
        positions_m: Sequence[float],
        speeds_ms: Sequence[float],
        dwell_s: Optional[Sequence[float]] = None,
        start_time_s: float = 0.0,
    ) -> None:
        pos = np.asarray(positions_m, dtype=float)
        spd = np.asarray(speeds_ms, dtype=float)
        if pos.ndim != 1 or pos.size < 2:
            raise ConfigurationError("a profile needs at least two positions")
        if pos.shape != spd.shape:
            raise ConfigurationError(
                f"positions and speeds must match, got {pos.shape} vs {spd.shape}"
            )
        if np.any(np.diff(pos) <= 0):
            raise ConfigurationError("positions must be strictly increasing")
        if np.any(spd < 0):
            raise ConfigurationError("speeds must be non-negative")
        dwell = np.zeros_like(pos) if dwell_s is None else np.asarray(dwell_s, dtype=float)
        if dwell.shape != pos.shape:
            raise ConfigurationError("dwell array must match positions")
        if np.any(dwell < 0):
            raise ConfigurationError("dwell times must be non-negative")
        v_avg = 0.5 * (spd[:-1] + spd[1:])
        if np.any(v_avg <= 0):
            bad = int(np.argmax(v_avg <= 0))
            raise ConfigurationError(
                f"segment {bad} has zero average speed; the gap at "
                f"{pos[bad]:.1f}-{pos[bad + 1]:.1f} m can never be covered"
            )
        self.positions_m = pos
        self.speeds_ms = spd
        self.dwell_s = dwell
        self.start_time_s = float(start_time_s)
        seg_dt = np.diff(pos) / v_avg
        # Arrival at point i happens before its dwell; departure after.
        arrivals = np.empty_like(pos)
        arrivals[0] = start_time_s
        arrivals[1:] = start_time_s + np.cumsum(seg_dt + dwell[:-1])
        self._arrivals = arrivals
        self._seg_dt = seg_dt

    # ------------------------------------------------------------------
    # Timing (Eq. 10)
    # ------------------------------------------------------------------
    @property
    def arrival_times_s(self) -> np.ndarray:
        """Absolute arrival time at each grid point (before its dwell)."""
        return self._arrivals.copy()

    @property
    def total_time_s(self) -> float:
        """Trip duration including the final point's dwell is excluded."""
        return float(self._arrivals[-1] - self.start_time_s)

    @property
    def total_distance_m(self) -> float:
        """Route length covered by the profile (m)."""
        return float(self.positions_m[-1] - self.positions_m[0])

    def arrival_time_at(self, position_m: float) -> float:
        """Absolute arrival time at an arbitrary route position.

        Interpolates within the constant-acceleration segment containing
        the position.
        """
        pos = self.positions_m
        if not pos[0] <= position_m <= pos[-1]:
            raise ValueError(
                f"position {position_m} m is outside the profile [{pos[0]}, {pos[-1]}]"
            )
        i = int(np.searchsorted(pos, position_m, side="right")) - 1
        i = min(max(i, 0), pos.size - 2)
        if position_m == pos[i]:
            return float(self._arrivals[i])
        ds = position_m - pos[i]
        v0, v1 = self.speeds_ms[i], self.speeds_ms[i + 1]
        seg_len = pos[i + 1] - pos[i]
        accel = (v1 * v1 - v0 * v0) / (2.0 * seg_len)
        if abs(accel) < 1e-12:
            dt = ds / v0
        else:
            v_at = float(np.sqrt(max(v0 * v0 + 2.0 * accel * ds, 0.0)))
            dt = (v_at - v0) / accel
        return float(self._arrivals[i] + self.dwell_s[i] + dt)

    def speed_at(self, position_m: float) -> float:
        """Planned speed at an arbitrary route position (m/s).

        Uses the constant-acceleration relation ``v^2 = v0^2 + 2 a ds``
        within a segment, which is the profile's true kinematic shape.
        """
        pos = self.positions_m
        if not pos[0] <= position_m <= pos[-1]:
            raise ValueError(
                f"position {position_m} m is outside the profile [{pos[0]}, {pos[-1]}]"
            )
        i = int(np.searchsorted(pos, position_m, side="right")) - 1
        i = min(max(i, 0), pos.size - 2)
        ds = position_m - pos[i]
        v0, v1 = self.speeds_ms[i], self.speeds_ms[i + 1]
        seg_len = pos[i + 1] - pos[i]
        accel = (v1 * v1 - v0 * v0) / (2.0 * seg_len)
        return float(np.sqrt(max(v0 * v0 + 2.0 * accel * ds, 0.0)))

    def accelerations(self) -> np.ndarray:
        """Per-segment constant accelerations (m/s^2), length ``n - 1``."""
        dv2 = np.diff(np.square(self.speeds_ms))
        return dv2 / (2.0 * np.diff(self.positions_m))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_time_trace(self, dt_s: float = 0.5) -> TimedTrace:
        """Sample the profile uniformly in time, honouring dwells."""
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        times = [self.start_time_s]
        speeds = [float(self.speeds_ms[0])]
        dists = [float(self.positions_m[0])]
        t = self.start_time_s
        for i in range(self.positions_m.size - 1):
            if self.dwell_s[i] > 0:
                t += float(self.dwell_s[i])
                times.append(t)
                speeds.append(0.0)
                dists.append(float(self.positions_m[i]))
            # Constant-acceleration segment: v linear in t.
            t += float(self._seg_dt[i])
            times.append(t)
            speeds.append(float(self.speeds_ms[i + 1]))
            dists.append(float(self.positions_m[i + 1]))
        knot_t = np.asarray(times)
        knot_v = np.asarray(speeds)
        knot_s = np.asarray(dists)
        n = max(int(np.ceil((knot_t[-1] - knot_t[0]) / dt_s)), 1)
        sample_t = knot_t[0] + np.arange(n + 1) * dt_s
        sample_t = np.minimum(sample_t, knot_t[-1])
        sample_t = np.unique(sample_t)
        if sample_t.size < 2:
            sample_t = np.asarray([knot_t[0], knot_t[-1]])
        # Speed is linear in time within a constant-acceleration segment,
        # so position is quadratic — plain linear interpolation of the
        # positions would contradict the sampled speeds near stops.
        seg = np.clip(np.searchsorted(knot_t, sample_t, side="right") - 1, 0, knot_t.size - 2)
        seg_dt = knot_t[seg + 1] - knot_t[seg]
        accel = (knot_v[seg + 1] - knot_v[seg]) / seg_dt
        local_t = sample_t - knot_t[seg]
        sample_v = knot_v[seg] + accel * local_t
        sample_s = knot_s[seg] + knot_v[seg] * local_t + 0.5 * accel * np.square(local_t)
        sample_v = np.maximum(sample_v, 0.0)
        return TimedTrace(times_s=sample_t, speeds_ms=sample_v, positions_m=sample_s)

    @classmethod
    def from_time_trace(cls, trace: TimedTrace, min_gap_m: float = 0.5) -> "VelocityProfile":
        """Build a distance-indexed profile from a time-sampled trace.

        Stationary stretches collapse into dwell times at the stop
        position; samples closer than ``min_gap_m`` in space are merged so
        the distance grid stays strictly increasing.
        """
        stop_threshold = 0.05  # m/s: below this the vehicle is "stopped"
        pos_list = [float(trace.positions_m[0])]
        spd_list = [float(trace.speeds_ms[0])]
        dwell_list = [0.0]
        for i in range(1, trace.times_s.size):
            gap = float(trace.positions_m[i]) - pos_list[-1]
            speed = float(trace.speeds_ms[i])
            if gap < min_gap_m:
                if speed <= stop_threshold:
                    # Standing still: fold the elapsed time into a dwell.
                    dwell_list[-1] += float(trace.times_s[i] - trace.times_s[i - 1])
                    spd_list[-1] = 0.0
                # Moving but dense sampling: thin the sample; the Eq. 10
                # average-speed rule recovers its travel time.
                continue
            pos_list.append(float(trace.positions_m[i]))
            spd_list.append(speed)
            dwell_list.append(0.0)
        # Always represent the final sample so terminal stops survive.
        final_pos = float(trace.positions_m[-1])
        final_speed = float(trace.speeds_ms[-1])
        if final_pos - pos_list[-1] >= min_gap_m:
            pos_list.append(final_pos)
            spd_list.append(final_speed)
            dwell_list.append(0.0)
        elif final_speed <= stop_threshold:
            spd_list[-1] = 0.0
        if len(pos_list) < 2:
            raise ConfigurationError("trace never moves; cannot build a distance profile")
        # Guard against two adjacent standstills (a gap that can never be
        # covered): give the later endpoint a crawl speed.
        for i in range(len(spd_list) - 1):
            if spd_list[i] == 0.0 and spd_list[i + 1] == 0.0:
                spd_list[i + 1] = 0.1
        return cls(
            positions_m=pos_list,
            speeds_ms=spd_list,
            dwell_s=dwell_list,
            start_time_s=float(trace.times_s[0]),
        )

    def energy(self, params: Optional[VehicleParams] = None, dt_s: float = 0.25) -> TripEnergy:
        """Total trip energy by metering a time-sampled rendering."""
        return self.to_time_trace(dt_s).energy(params)

    def __len__(self) -> int:
        return int(self.positions_m.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VelocityProfile({self.positions_m.size} pts, "
            f"{self.total_distance_m:.0f} m, {self.total_time_s:.1f} s)"
        )
