"""Feasibility checking of velocity profiles against Eq. 7.

The DP guarantees its own output satisfies the constraints on the grid; the
checker exists so tests, the simulator and externally supplied traces
(mild/fast human profiles) can be audited with the same rules:

* Eq. 7a — speeds within the zone limits,
* Eq. 7b — segment accelerations within the comfort band,
* Eq. 7c/7d — zero speed at stop signs, source and destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.profile import VelocityProfile
from repro.route.road import RoadSegment
from repro.vehicle.params import VehicleParams


@dataclass(frozen=True)
class ConstraintViolation:
    """One constraint breach found in a profile.

    Attributes:
        kind: One of ``"speed_max"``, ``"speed_min"``, ``"accel"``,
            ``"stop"``, ``"boundary"``.
        position_m: Route position of the breach.
        value: The offending value (speed in m/s or acceleration in m/s^2).
        limit: The violated bound.
    """

    kind: str
    position_m: float
    value: float
    limit: float

    def __str__(self) -> str:
        return (
            f"{self.kind} violated at {self.position_m:.1f} m: "
            f"value {self.value:.3f} vs limit {self.limit:.3f}"
        )


@dataclass
class ConstraintReport:
    """Outcome of checking a profile against a road."""

    violations: List[ConstraintViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no constraint was violated."""
        return not self.violations

    def __str__(self) -> str:
        if self.ok:
            return "all constraints satisfied"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def check_profile(
    profile: VelocityProfile,
    road: RoadSegment,
    vehicle: Optional[VehicleParams] = None,
    speed_tol_ms: float = 1e-6,
    accel_tol_ms2: float = 1e-6,
    stop_tol_ms: float = 1e-6,
    enforce_min_speed: bool = False,
) -> ConstraintReport:
    """Audit a profile against the Eq. 7 feasible set.

    Args:
        profile: The plan to audit.
        road: Corridor carrying limits, stop signs and boundaries.
        vehicle: Acceleration band source; paper defaults when ``None``.
        speed_tol_ms: Numerical slack on speed-limit checks.
        accel_tol_ms2: Numerical slack on acceleration checks.
        stop_tol_ms: Slack on the mandatory-stop zero-speed checks.
        enforce_min_speed: Also flag speeds below the zone minimum at
            points far from mandatory stops (Eq. 7a lower bound); off by
            default because human traces routinely dip below it.

    Returns:
        A :class:`ConstraintReport`; ``report.ok`` is the verdict.
    """
    params = vehicle if vehicle is not None else VehicleParams()
    report = ConstraintReport()
    pos = profile.positions_m
    spd = profile.speeds_ms

    for s, v in zip(pos, spd):
        v_max = road.v_max_at(float(s))
        if v > v_max + speed_tol_ms:
            report.violations.append(
                ConstraintViolation("speed_max", float(s), float(v), v_max)
            )

    if enforce_min_speed:
        stops = np.asarray(road.mandatory_stop_positions())
        for s, v in zip(pos, spd):
            v_min = road.v_min_at(float(s))
            if v_min <= 0:
                continue
            # The lower bound cannot apply inside braking/launch ramps
            # around mandatory stops.
            ramp = max(
                v_min * v_min / (2.0 * abs(params.min_accel_ms2)),
                v_min * v_min / (2.0 * params.max_accel_ms2),
            )
            if np.min(np.abs(stops - s)) <= ramp:
                continue
            if v < v_min - speed_tol_ms:
                report.violations.append(
                    ConstraintViolation("speed_min", float(s), float(v), v_min)
                )

    accels = profile.accelerations()
    for s, a in zip(pos[:-1], accels):
        if a > params.max_accel_ms2 + accel_tol_ms2:
            report.violations.append(
                ConstraintViolation("accel", float(s), float(a), params.max_accel_ms2)
            )
        elif a < params.min_accel_ms2 - accel_tol_ms2:
            report.violations.append(
                ConstraintViolation("accel", float(s), float(a), params.min_accel_ms2)
            )

    for stop_pos in road.mandatory_stop_positions():
        if not pos[0] <= stop_pos <= pos[-1]:
            report.violations.append(
                ConstraintViolation("boundary", stop_pos, float("nan"), 0.0)
            )
            continue
        v_here = profile.speed_at(stop_pos)
        # Exact grid hit is required for stops; interpolation is only a
        # fallback for off-grid audit positions.
        exact = np.isclose(pos, stop_pos, atol=1e-6)
        if exact.any():
            v_here = float(spd[int(np.argmax(exact))])
        kind = "boundary" if stop_pos in (pos[0], pos[-1]) else "stop"
        if v_here > stop_tol_ms:
            report.violations.append(ConstraintViolation(kind, stop_pos, v_here, 0.0))

    return report
