"""High-level planners: the paper's proposed system and its baselines.

Three planners share one DP engine and differ only in the arrival-time
windows they impose at signalized intersections:

* :class:`UnconstrainedDpPlanner` — ignores signals altogether (the
  single-intersection prior art [1][3] applied naively to a corridor);
  the plan respects stop signs and limits only.
* :class:`BaselineDpPlanner` — the existing DP [2]: arrivals must fall in
  *green* windows, assuming a green light can be crossed instantly even if
  a queue is discharging (the assumption the paper attacks).
* :class:`QueueAwareDpPlanner` — the proposed system: arrivals must fall
  in the QL model's queue-free windows ``T_q`` (Eq. 11), built from the
  predicted arrival rate (SAE) and the VM discharge model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost import WindowSet
from repro.core.dp import BatchProblem, DpSolution, DpSolver, TimeWindowConstraint
from repro.core.engine import ArtifactStore
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.route.road import RoadSegment, SignalSite
from repro.signal.queue import QueueLengthModel, QueueWindow
from repro.signal.vm import VehicleMovementModel
from repro.vehicle.params import VehicleParams

ArrivalRate = Union[float, Callable[[float], float]]
ArrivalRates = Union[ArrivalRate, Mapping[float, ArrivalRate]]


@dataclass(frozen=True)
class PlannerConfig:
    """Shared discretization and constraint settings for all planners.

    Attributes:
        v_step_ms: Velocity grid resolution (m/s).
        s_step_m: Distance grid resolution (m).
        t_bin_s: DP time-bin width (s).
        horizon_s: Clock horizon / default trip-time cap (s).
        stop_dwell_s: Mandatory dwell at stop signs (s).
        window_margin_s: Safety margin subtracted from each end of every
            arrival window to absorb time quantization drift.
        constraint_mode: ``"hard"`` or ``"penalty"`` (Eq. 12 behaviour).
        penalty_j: Additive penalty in ``"penalty"`` mode (J).
        enforce_min_speed: Apply the Eq. 7a lower bound away from stops.
    """

    v_step_ms: float = 0.5
    s_step_m: float = 10.0
    t_bin_s: float = 1.0
    horizon_s: float = 600.0
    stop_dwell_s: float = 2.0
    window_margin_s: float = 2.0
    constraint_mode: str = "hard"
    penalty_j: float = 1.0e9
    enforce_min_speed: bool = True

    def __post_init__(self) -> None:
        if self.window_margin_s < 0:
            raise ConfigurationError(
                f"window margin must be >= 0, got {self.window_margin_s}"
            )
        if self.constraint_mode not in ("hard", "penalty"):
            raise ConfigurationError(f"unknown constraint mode {self.constraint_mode!r}")


class DpPlannerBase:
    """Common solver plumbing shared by the planners.

    Subclasses implement :meth:`_signal_constraints`; everything else —
    planning, replanning, trip-time floors — lives here.  Service layers
    (the cloud planner, the closed-loop driver) accept any instance.
    """

    def __init__(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        config: Optional[PlannerConfig] = None,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        self.road = road
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.config = config if config is not None else PlannerConfig()
        self.store = store
        self.environment = environment
        self.solver = DpSolver(
            road=road,
            vehicle=self.vehicle,
            v_step_ms=self.config.v_step_ms,
            s_step_m=self.config.s_step_m,
            t_bin_s=self.config.t_bin_s,
            horizon_s=self.config.horizon_s,
            stop_dwell_s=self.config.stop_dwell_s,
            enforce_min_speed=self.config.enforce_min_speed,
            store=store,
            environment=environment,
        )

    def _signal_constraints(
        self, start_time_s: float
    ) -> Sequence[TimeWindowConstraint]:
        raise NotImplementedError

    def signal_constraints(
        self, start_time_s: float
    ) -> Sequence[TimeWindowConstraint]:
        """The arrival-window constraints a plan from ``start_time_s`` obeys.

        Exposed so service layers can *revalidate* a plan against the
        windows without running the DP — the cloud cache uses this to
        check that a phase-shifted cached profile still lands inside the
        (margin-shrunk) windows at its new departure time.
        """
        return self._signal_constraints(start_time_s)

    def plan(
        self,
        start_time_s: float = 0.0,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
    ) -> DpSolution:
        """Compute the optimal profile departing at ``start_time_s``."""
        return self.solver.solve(
            constraints=self._signal_constraints(start_time_s),
            start_time_s=start_time_s,
            max_trip_time_s=max_trip_time_s,
            minimize=minimize,
        )

    def replan(
        self,
        position_m: float,
        speed_ms: float,
        time_s: float,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
    ) -> DpSolution:
        """Re-optimize the rest of the trip from a mid-route state.

        This is the online (TraCI-style) loop: after traffic interference
        knocks the EV off its plan, a fresh profile from the current
        ``(position, speed, time)`` restores window targeting for the
        signals still ahead.
        """
        return self.solver.solve(
            constraints=self._signal_constraints(time_s),
            start_time_s=time_s,
            max_trip_time_s=max_trip_time_s,
            minimize=minimize,
            start_state=(position_m, speed_ms),
        )

    def plan_batch(
        self,
        specs: Sequence[Tuple[float, Optional[float]]],
        minimize: str = "energy",
    ) -> List[Union[DpSolution, InfeasibleProblemError]]:
        """Solve many full-trip plans as one batched DP program.

        Args:
            specs: ``(start_time_s, max_trip_time_s)`` per plan;
                ``max_trip_time_s`` may be ``None`` (horizon default).
            minimize: Shared objective for the whole batch.

        Returns:
            One entry per spec, in order: the :class:`DpSolution` —
            bit-identical to a serial :meth:`plan` with the same
            arguments — or the :class:`InfeasibleProblemError` a serial
            solve would have raised.  Mid-route replans are not
            batchable; serve those through :meth:`replan`.
        """
        problems = [
            BatchProblem(
                constraints=self._signal_constraints(start_time_s),
                start_time_s=start_time_s,
                max_trip_time_s=max_trip_time_s,
            )
            for start_time_s, max_trip_time_s in specs
        ]
        return self.solver.solve_batch(problems, minimize=minimize)

    #: Slack over the unconstrained lower bound when capping a min-time
    #: (budget-calibration) solve: one worst-case signal wait (the longest
    #: common cycle in the corridor catalog is 60 s) plus margin for
    #: queue-shrunk windows and time quantization.  The cap only narrows
    #: the DP's search to trips at most that far above the physical
    #: floor — any fastest trip inside the cap is found as usual, and an
    #: infeasible capped solve falls back to the full horizon, so the
    #: result never silently degrades.
    MIN_TIME_CAP_SLACK_S = 90.0

    def _min_time_cap(self) -> float:
        return self.solver.unconstrained_min_time_s + self.MIN_TIME_CAP_SLACK_S

    def min_trip_time(self, start_time_s: float = 0.0) -> float:
        """The fastest constraint-feasible trip duration from a departure.

        Experiments use this to pick an achievable trip-time budget when a
        reference human drive threaded the signals faster than the plan's
        windows allow (e.g. the queue-free windows start a few seconds
        into each green).

        The solve is capped at the unconstrained traversal bound plus
        :attr:`MIN_TIME_CAP_SLACK_S` — a far smaller label lattice than
        the full horizon — and falls back to an uncapped solve in the
        rare case no trip fits under the cap.
        """
        cap = self._min_time_cap()
        try:
            return self.plan(
                start_time_s=start_time_s, max_trip_time_s=cap, minimize="time"
            ).trip_time_s
        except InfeasibleProblemError:
            return self.plan(start_time_s=start_time_s, minimize="time").trip_time_s

    def min_trip_time_batch(
        self, departures: Sequence[float]
    ) -> List[Union[float, InfeasibleProblemError]]:
        """Batched :meth:`min_trip_time`: one vectorized DP for many departures.

        Per departure the call sequence (capped solve, uncapped fallback
        on infeasibility) matches :meth:`min_trip_time` exactly, so each
        returned duration is bit-identical to the serial call.  A
        departure that is infeasible even at the full horizon yields the
        :class:`InfeasibleProblemError` the serial call would have
        raised, without poisoning the rest of the batch.
        """
        cap = self._min_time_cap()
        sols = self.plan_batch([(d, cap) for d in departures], minimize="time")
        retry = [
            i for i, sol in enumerate(sols) if isinstance(sol, InfeasibleProblemError)
        ]
        if retry:
            again = self.plan_batch(
                [(departures[i], None) for i in retry], minimize="time"
            )
            for i, sol in zip(retry, again):
                sols[i] = sol
        return [
            sol if isinstance(sol, InfeasibleProblemError) else sol.trip_time_s
            for sol in sols
        ]

    def _constraint_from_windows(
        self, site: SignalSite, windows: WindowSet
    ) -> TimeWindowConstraint:
        return TimeWindowConstraint(
            position_m=site.position_m,
            windows=windows.shrunk(self.config.window_margin_s),
            mode=self.config.constraint_mode,
            penalty_j=self.config.penalty_j,
        )


class UnconstrainedDpPlanner(DpPlannerBase):
    """Energy-optimal DP that ignores signal timing entirely."""

    def _signal_constraints(self, start_time_s: float) -> Sequence[TimeWindowConstraint]:
        return ()


class BaselineDpPlanner(DpPlannerBase):
    """The existing DP [2]: hit green windows, ignore queues.

    This planner reproduces the comparison system of Section III-B-3: it
    schedules signal arrivals into green phases but assumes vehicles
    waiting at the light vanish instantly, so its plans routinely arrive
    while a queue is still discharging (Fig. 6a).
    """

    def _signal_constraints(self, start_time_s: float) -> Sequence[TimeWindowConstraint]:
        constraints = []
        for site in self.road.signals:
            green = site.light.green_windows(self.config.horizon_s, start_time_s)
            windows = WindowSet([QueueWindow(a, b) for a, b in green])
            constraints.append(self._constraint_from_windows(site, windows))
        return constraints


class QueueAwareDpPlanner(DpPlannerBase):
    """The proposed system: hit the queue-free windows ``T_q`` (Eq. 11).

    Args:
        road: Corridor; each signal site carries spacing/turn-ratio data.
        arrival_rates: Predicted arrival rate(s) in vehicles/second — a
            single value or callable for every signal, or a mapping from
            signal position to a per-signal value/callable.  Callables are
            evaluated at cycle starts, which is how the SAE hourly volume
            forecast plugs in.
        vehicle: EV parameters (paper defaults when ``None``).
        config: Discretization settings.
        store: Optional shared :class:`~repro.core.engine.ArtifactStore`;
            when given, the corridor precomputation is served from (and
            kept in) the store instead of rebuilt per planner.
        environment: Ambient conditions the energy model prices under
            (``None`` is nominal, bit-identical to the historical path).
    """

    def __init__(
        self,
        road: RoadSegment,
        arrival_rates: ArrivalRates,
        vehicle: Optional[VehicleParams] = None,
        config: Optional[PlannerConfig] = None,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        super().__init__(road, vehicle, config, store=store, environment=environment)
        self.arrival_rates = arrival_rates
        self._queue_models: Dict[float, QueueLengthModel] = {}
        for site in road.signals:
            v_min = road.v_min_at(site.position_m)
            if v_min <= 0:
                raise ConfigurationError(
                    f"signal at {site.position_m} m needs a positive zone v_min for the VM model"
                )
            vm = VehicleMovementModel(
                light=site.light,
                v_min_ms=v_min,
                a_max_ms2=self.vehicle.max_accel_ms2,
                spacing_m=site.queue_spacing_m,
                turn_ratio=site.turn_ratio,
            )
            self._queue_models[site.position_m] = QueueLengthModel(vm)

    def queue_model(self, position_m: float) -> QueueLengthModel:
        """The QL model attached to a signal position (for inspection)."""
        return self._queue_models[position_m]

    def _rate_for(self, site: SignalSite) -> ArrivalRate:
        if isinstance(self.arrival_rates, Mapping):
            try:
                return self.arrival_rates[site.position_m]
            except KeyError as exc:
                raise ConfigurationError(
                    f"no arrival rate supplied for signal at {site.position_m} m"
                ) from exc
        return self.arrival_rates

    def _signal_constraints(self, start_time_s: float) -> Sequence[TimeWindowConstraint]:
        constraints = []
        for site in self.road.signals:
            model = self._queue_models[site.position_m]
            queue_free = model.empty_windows(
                start_s=start_time_s,
                horizon_s=self.config.horizon_s,
                arrival_rate=self._rate_for(site),
            )
            constraints.append(self._constraint_from_windows(site, WindowSet(queue_free)))
        return constraints
