"""Time-expanded dynamic-programming velocity optimizer (Eq. 7-12).

The paper's DP discretizes the route into equal-distance points ``s_i`` and
searches velocity assignments ``v(s_i)`` minimizing total energy (Eq. 8)
subject to the feasible set (Eq. 7).  Arrival-time constraints at signals
(Eq. 11) make the problem non-Markovian in ``(position, velocity)`` alone —
the time of arrival depends on the whole path prefix (Eq. 10).  We make the
recursion exact by expanding the state to ``(position, velocity, time)``.

Time handling: every state stores its *exact* continuous arrival time; the
time axis is only *binned* to merge near-simultaneous states (one surviving
state per ``(position, velocity, bin)``, the cheapest).  Transition times
are never rounded, so there is no systematic clock drift along a path, and
window membership (Eq. 11) is evaluated against exact times.

Cost model:

* Transition energy follows Eq. 9: the consumption ``zeta`` integrated
  over a constant-acceleration segment, ``+inf`` outside the Eq. 7 set.
* Arrival-time windows apply Eq. 11/12.  ``hard`` mode prunes arrivals
  outside ``T_q`` (the limit of the paper's large-``M`` penalty); ``penalty``
  mode adds a finite penalty instead.  We use an *additive* penalty rather
  than the paper's multiplicative ``M * zeta`` because regenerative braking
  makes some transition energies negative, where a multiplicative penalty
  would perversely reward window violations.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.cost import WindowSet
from repro.core.engine.artifacts import CorridorArtifacts, corridor_digest
from repro.core.engine.stage_kernel import (
    expand_stage,
    expand_stage_batch,
    first_per_group as _first_per_group,  # re-exported: pre-engine import path
    select_labels,
    select_labels_batch,
)
from repro.core.engine.store import ArtifactStore
from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.route.road import RoadSegment
from repro.signal.queue import QueueWindow
from repro.units import joules_to_mah
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams


def _default_pack_voltage_v() -> float:
    """The canonical default pack voltage, derived from the vehicle model.

    :class:`DpSolution` needs a default for solutions constructed without
    an explicit voltage (tests, synthetic fixtures); deriving it from
    :class:`~repro.vehicle.params.VehicleParams` keeps it in lockstep
    with the paper's pack instead of duplicating a hardcoded 399.0 that
    could silently drift from the vehicle defaults.
    """
    return VehicleParams().battery.voltage_v


@dataclass(frozen=True)
class TimeWindowConstraint:
    """Restrict the arrival time at a route position to a set of windows.

    Attributes:
        position_m: Constrained route position (a signal stop line).
        windows: Admissible absolute arrival windows (``T_q`` or green).
        mode: ``"hard"`` prunes out-of-window arrivals; ``"penalty"`` adds
            ``penalty_j`` joules to their cost instead.
        penalty_j: Additive penalty for ``"penalty"`` mode.
    """

    position_m: float
    windows: WindowSet
    mode: str = "hard"
    penalty_j: float = 1.0e9

    def __post_init__(self) -> None:
        if self.mode not in ("hard", "penalty"):
            raise ConfigurationError(f"unknown constraint mode {self.mode!r}")
        if self.penalty_j <= 0:
            raise ConfigurationError(f"penalty must be positive, got {self.penalty_j}")


@dataclass(frozen=True)
class BatchProblem:
    """One full-trip DP problem inside a :meth:`DpSolver.solve_batch` call.

    Attributes:
        constraints: Arrival-window constraints for this problem's
            departure (one per signal, from the planner).
        start_time_s: Absolute departure time at the route source.
        max_trip_time_s: Optional trip-duration cap; ``None`` falls back
            to the solver horizon, exactly like :meth:`DpSolver.solve`.
    """

    constraints: Sequence[TimeWindowConstraint] = ()
    start_time_s: float = 0.0
    max_trip_time_s: Optional[float] = None


@dataclass
class DpSolution:
    """Result of one DP solve.

    Attributes:
        profile: The optimal velocity profile (with stop-sign dwells).
        energy_j: Objective value (J); equals the metered plan energy up to
            discretization, plus penalties in ``"penalty"`` mode.
        trip_time_s: Planned trip duration (s), exact along the DP path.
        signal_arrivals: Arrival instants at each constrained position,
            from the reconstructed profile.
        windows_hit: Whether each arrival falls inside its windows.
        solve_time_s: Wall-clock solver runtime.
        expanded_transitions: Number of (segment, v, v') pairs relaxed.
        pack_voltage_v: Nominal voltage of the pack the solve priced
            energy for; :attr:`energy_mah` converts at this voltage.
    """

    profile: VelocityProfile
    energy_j: float
    trip_time_s: float
    signal_arrivals: Dict[float, float] = field(default_factory=dict)
    windows_hit: Dict[float, bool] = field(default_factory=dict)
    solve_time_s: float = 0.0
    expanded_transitions: int = 0
    pack_voltage_v: float = field(default_factory=_default_pack_voltage_v)

    @property
    def energy_mah(self) -> float:
        """Objective in mAh at the solve's pack voltage (Fig. 7 unit)."""
        return joules_to_mah(self.energy_j, self.pack_voltage_v)

    @property
    def all_windows_hit(self) -> bool:
        """True when every constrained arrival lands inside its window."""
        return all(self.windows_hit.values())


class DpSolver:
    """Forward DP over the ``(position, velocity, time)`` lattice.

    Args:
        road: Corridor with limits, stop signs and boundaries.
        vehicle: EV parameters (paper defaults when ``None``).
        v_step_ms: Velocity grid resolution (m/s).
        s_step_m: Distance grid resolution (m); stop signs and signals are
            snapped in exactly.
        t_bin_s: Time-bin width used to merge near-simultaneous states (s).
        horizon_s: Clock horizon; arrivals beyond it are pruned.  Also the
            default trip-time bound.
        stop_dwell_s: Mandatory stationary dwell at each stop sign (s).
        enforce_min_speed: Apply the Eq. 7a lower bound away from stops.
        velocity_bounds: Optional map from route position (m) to an extra
            ``(v_lo, v_hi)`` admissible band, intersected with the road
            limits.  The coarse-to-fine accelerator uses this to restrict
            the fine search to a corridor around a coarse solution.
        artifacts: Prebuilt :class:`~repro.core.engine.CorridorArtifacts`
            to solve on.  Must match this solver's corridor inputs (the
            content digest is checked); the solver then skips its own
            precomputation entirely.
        store: An :class:`~repro.core.engine.ArtifactStore` to obtain the
            artifacts from (warm hit or one shared build).  Ignored when
            ``artifacts`` is given.  With neither, the solver builds
            privately — the pre-engine behaviour.
        environment: Ambient conditions the energy model prices under
            (:mod:`repro.vehicle.environment`); part of the artifact
            digest.  ``None`` is nominal and bit-identical to the
            historical environment-free solver.
    """

    def __init__(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        v_step_ms: float = 0.5,
        s_step_m: float = 10.0,
        t_bin_s: float = 1.0,
        horizon_s: float = 600.0,
        stop_dwell_s: float = 2.0,
        enforce_min_speed: bool = True,
        velocity_bounds=None,
        artifacts: Optional[CorridorArtifacts] = None,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        if v_step_ms <= 0 or s_step_m <= 0 or t_bin_s <= 0 or horizon_s <= 0:
            raise ConfigurationError("grid resolutions and horizon must be positive")
        if stop_dwell_s < 0:
            raise ConfigurationError(f"stop dwell must be >= 0, got {stop_dwell_s}")
        self.road = road
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.environment = environment
        self.model = LongitudinalModel(self.vehicle, environment)
        self.v_step_ms = float(v_step_ms)
        self.s_step_m = float(s_step_m)
        self.t_bin_s = float(t_bin_s)
        self.horizon_s = float(horizon_s)
        self.stop_dwell_s = float(stop_dwell_s)
        self.enforce_min_speed = bool(enforce_min_speed)
        self.velocity_bounds = velocity_bounds
        self.store = store

        with obs.get_registry().span("dp.table_build") as span:
            reused = artifacts is not None or store is not None
            if artifacts is not None:
                expected = corridor_digest(
                    road,
                    self.vehicle,
                    v_step_ms=self.v_step_ms,
                    s_step_m=self.s_step_m,
                    stop_dwell_s=self.stop_dwell_s,
                    enforce_min_speed=self.enforce_min_speed,
                    environment=environment,
                )
                if artifacts.digest != expected:
                    raise ConfigurationError(
                        "corridor artifacts were built for different inputs "
                        f"(digest {artifacts.digest} != expected {expected})"
                    )
            elif store is not None:
                artifacts = store.get_or_build(
                    road,
                    self.vehicle,
                    v_step_ms=self.v_step_ms,
                    s_step_m=self.s_step_m,
                    stop_dwell_s=self.stop_dwell_s,
                    enforce_min_speed=self.enforce_min_speed,
                    environment=environment,
                )
            else:
                artifacts = CorridorArtifacts.build(
                    road,
                    self.vehicle,
                    v_step_ms=self.v_step_ms,
                    s_step_m=self.s_step_m,
                    stop_dwell_s=self.stop_dwell_s,
                    enforce_min_speed=self.enforce_min_speed,
                    environment=environment,
                )
            self.artifacts = artifacts
            self.positions = artifacts.positions
            self.v_grid = artifacts.v_grid
            self._dwell_at = artifacts.dwell_at
            self._tables = artifacts.tables
            self._min_time_to_go = artifacts.min_time_to_go
            if velocity_bounds is None:
                self._allowed = artifacts.allowed
                self._pairs = artifacts.pairs
            else:
                # A solver-local band cannot live in shared artifacts; the
                # base masks are intersected here and the (much cheaper)
                # pair extraction happens lazily per segment.
                self._allowed = artifacts.restrict_allowed(velocity_bounds)
                self._pairs = None
            span.add(
                segments=len(self._tables),
                velocity_levels=int(self.v_grid.size),
                artifacts_reused=int(reused),
            )

    @property
    def unconstrained_min_time_s(self) -> float:
        """Lower bound on any trip: the fastest feasible traversal of the
        whole corridor ignoring signal windows (stop-sign dwells included).
        """
        return float(self._min_time_to_go[0])

    def _segment_pairs(self, i: int) -> tuple:
        """Feasible (j, j2, energy, dt) transition arrays for segment ``i``."""
        if self._pairs is not None:
            return self._pairs[i]
        table = self._tables[i]
        feasible = table.feasible & self._allowed[i][:, None] & self._allowed[i + 1][None, :]
        j_arr, j2_arr = np.nonzero(feasible)
        e_arr = table.energy_j[j_arr, j2_arr]
        dt_arr = table.travel_s[j_arr, j2_arr] + self._dwell_at[i]
        return j_arr, j2_arr, e_arr, dt_arr

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------
    def solve(
        self,
        constraints: Sequence[TimeWindowConstraint] = (),
        start_time_s: float = 0.0,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
        start_state: Optional[Tuple[float, float]] = None,
    ) -> DpSolution:
        """Run the forward DP and reconstruct the optimal profile.

        Args:
            constraints: Arrival-time window constraints (one per signal).
            start_time_s: Absolute departure time at the source (or at the
                ``start_state`` position when replanning mid-route).
            max_trip_time_s: Optional trip-duration cap; defaults to the
                solver horizon.
            minimize: ``"energy"`` (Eq. 8, the default) or ``"time"`` —
                the latter finds the fastest constraint-feasible trip,
                useful for calibrating achievable trip-time budgets.
            start_state: Optional mid-route initial state ``(position_m,
                speed_ms)`` for online replanning: the DP starts at the
                first grid point at/after the position, seeded with the
                nearest admissible grid velocity, and the returned profile
                covers only the remaining route.  ``None`` plans the whole
                trip from rest at the source (Eq. 7d).

        Raises:
            InfeasibleProblemError: No path satisfies all constraints
                within the horizon.
        """
        if minimize not in ("energy", "time"):
            raise ConfigurationError(f"unknown objective {minimize!r}")
        registry = obs.get_registry()
        with registry.span("dp.solve", objective=minimize) as span:
            try:
                solution = self._solve(
                    registry,
                    constraints,
                    start_time_s,
                    max_trip_time_s,
                    minimize,
                    start_state,
                )
            except InfeasibleProblemError:
                span.add(infeasible=1)
                raise
            span.add(expanded_transitions=solution.expanded_transitions)
            return solution

    def solve_batch(
        self,
        problems: Sequence[BatchProblem],
        minimize: str = "energy",
    ) -> List[Union[DpSolution, InfeasibleProblemError]]:
        """Solve ``B`` independent full-trip problems as one numpy program.

        Every problem shares this solver's corridor artifacts; their label
        sets are stacked along a leading problem axis and relaxed through
        the batched stage kernels, so the per-stage interpreter overhead
        is paid once per stage instead of once per stage *per problem* —
        the fleet solves as one vectorized DP.

        Per problem, the result is **bit-identical** to a serial
        :meth:`solve` with the same arguments: within each problem the
        candidate ordering, tie-breaking, pruning arithmetic and
        backtracking reproduce the serial path exactly (see the batched
        kernels in :mod:`repro.core.engine.stage_kernel`).

        An infeasible problem does not poison its batch: its slot in the
        returned list holds the same :class:`InfeasibleProblemError` a
        serial solve would have raised (message included), while the
        other problems complete.  Configuration errors (bad caps,
        off-grid constraint positions) still raise for the whole call —
        they are caller bugs, not data outcomes.

        ``solve_time_s`` on each solution is the batch wall clock divided
        evenly across the batch (amortized), since the problems shared
        one program.  Mid-route replans (``start_state``) are not
        batchable; serve those through :meth:`solve`.
        """
        if minimize not in ("energy", "time"):
            raise ConfigurationError(f"unknown objective {minimize!r}")
        n_problems = len(problems)
        if n_problems == 0:
            return []
        registry = obs.get_registry()
        with registry.span(
            "dp.solve_batch", objective=minimize, problems=n_problems
        ) as span:
            t0 = _time.perf_counter()
            outcomes = self._solve_batch(problems, minimize)
            wall = _time.perf_counter() - t0
            share = wall / n_problems
            for outcome in outcomes:
                if isinstance(outcome, DpSolution):
                    outcome.solve_time_s = share
            span.add(
                infeasible=sum(
                    1 for o in outcomes if isinstance(o, InfeasibleProblemError)
                )
            )
            return outcomes

    def _solve_batch(
        self,
        problems: Sequence[BatchProblem],
        minimize: str,
    ) -> List[Union[DpSolution, InfeasibleProblemError]]:
        """The batched DP proper; state layout mirrors ``_solve`` exactly."""
        n_problems = len(problems)
        n_bins = int(np.floor(self.horizon_s / self.t_bin_s)) + 1
        n_pts = self.positions.size
        start_times = np.asarray([p.start_time_s for p in problems])
        trip_caps = np.empty(n_problems)
        constraint_maps: List[Dict[int, TimeWindowConstraint]] = []
        for b, problem in enumerate(problems):
            cap = (
                problem.max_trip_time_s
                if problem.max_trip_time_s is not None
                else self.horizon_s
            )
            if cap <= 0:
                raise ConfigurationError(f"trip-time cap must be positive, got {cap}")
            trip_caps[b] = min(cap, self.horizon_s)
            constraint_at: Dict[int, TimeWindowConstraint] = {}
            for constraint in problem.constraints:
                idx = int(np.argmin(np.abs(self.positions - constraint.position_m)))
                if abs(self.positions[idx] - constraint.position_m) > self.s_step_m:
                    raise ConfigurationError(
                        f"constraint position {constraint.position_m} m is not on the grid"
                    )
                constraint_at[idx] = constraint
            constraint_maps.append(constraint_at)
        # Constraints regrouped by route point so the stage loop touches
        # only the (point, problem) pairs that actually have one.
        constraints_at_point: Dict[int, List[Tuple[int, TimeWindowConstraint]]] = {}
        for b, constraint_at in enumerate(constraint_maps):
            for idx, constraint in constraint_at.items():
                constraints_at_point.setdefault(idx, []).append((b, constraint))

        # Concatenated label state across problems, blocked by problem id
        # (``lab_b`` stays non-decreasing through every stage).  The seed
        # is one (v=0, departure) label per problem, as in ``_solve``.
        caps_eps = trip_caps + 1e-9  # the serial path's `cap + 1e-9`, per problem
        lab_v = np.zeros(n_problems, dtype=np.int16)
        lab_t = start_times.copy()
        lab_c = np.zeros(n_problems)
        lab_b = np.arange(n_problems, dtype=np.int64)
        prev_of: List[np.ndarray] = []
        v_of: List[np.ndarray] = [lab_v]
        expanded = np.zeros(n_problems, dtype=np.int64)
        failures: List[Optional[InfeasibleProblemError]] = [None] * n_problems

        def fail(b: int, message: str) -> None:
            if failures[b] is None:
                failures[b] = InfeasibleProblemError(message)

        for i in range(n_pts - 1):
            entry_counts = np.bincount(lab_b, minlength=n_problems)
            j_arr, j2_arr, e_arr, dt_arr = self._segment_pairs(i)
            if j_arr.size == 0:
                for b in range(n_problems):
                    if entry_counts[b]:
                        fail(
                            b,
                            f"no feasible transition over segment {i} "
                            f"({self.positions[i]:.0f}-{self.positions[i + 1]:.0f} m)",
                        )
                lab_b = lab_b[:0]
                break
            src, cj2, cc, ct, cb = expand_stage_batch(
                lab_v, lab_t, lab_c, lab_b, j_arr, j2_arr, e_arr, dt_arr,
                self.v_grid.size,
            )
            cand_counts = np.bincount(cb, minlength=n_problems)
            for b in np.flatnonzero((entry_counts > 0) & (cand_counts == 0)):
                fail(
                    int(b),
                    f"all labels stranded entering segment {i} "
                    f"({self.positions[i]:.0f}-{self.positions[i + 1]:.0f} m)",
                )
            expanded += cand_counts

            keep = ct - start_times[cb] + self._min_time_to_go[i + 1] <= caps_eps[cb]
            for b, target in constraints_at_point.get(i + 1, ()):
                if cand_counts[b] == 0:
                    continue
                lo, hi = np.searchsorted(cb, [b, b + 1])
                ok = target.windows.contains(ct[lo:hi])
                if target.mode == "hard":
                    keep[lo:hi] &= ok
                else:
                    cc[lo:hi] = np.where(ok, cc[lo:hi], cc[lo:hi] + target.penalty_j)
            kept_idx = np.flatnonzero(keep)
            if kept_idx.size < keep.size:
                src, cj2, cc, ct, cb = (
                    src[kept_idx], cj2[kept_idx], cc[kept_idx],
                    ct[kept_idx], cb[kept_idx],
                )
                kept_counts = np.bincount(cb, minlength=n_problems)
            else:
                kept_counts = cand_counts
            for b in np.flatnonzero((cand_counts > 0) & (kept_counts == 0)):
                fail(
                    int(b),
                    f"no label survives into {self.positions[i + 1]:.0f} m; "
                    "windows or horizon are too tight",
                )
            if cb.size == 0:
                lab_b = cb
                break

            sel = select_labels_batch(
                cb, cj2, cc, ct, start_times, self.t_bin_s, n_bins,
                self.v_grid.size,
            )
            prev_of.append(src[sel])
            lab_v = cj2[sel].astype(np.int16)
            lab_t = ct[sel]
            lab_c = cc[sel]
            lab_b = cb[sel]
            v_of.append(lab_v)

        outcomes: List[Union[DpSolution, InfeasibleProblemError]] = []
        complete = len(v_of) == n_pts
        for b in range(n_problems):
            if failures[b] is not None:
                outcomes.append(failures[b])
                continue
            if not complete:
                # The batch aborted before this problem's labels died on
                # record — only possible when every problem failed, so a
                # failure must exist; guard anyway.
                outcomes.append(
                    InfeasibleProblemError(
                        "no feasible profile: horizon, windows or limits are too tight"
                    )
                )
                continue
            lo, hi = np.searchsorted(lab_b, [b, b + 1])
            at_rest = lab_v[lo:hi] == 0
            in_cap = lab_t[lo:hi] - start_times[b] <= trip_caps[b] + 1e-9
            ok_final = at_rest & in_cap
            if not ok_final.any():
                outcomes.append(
                    InfeasibleProblemError(
                        "no feasible profile: horizon, windows or limits are too tight"
                    )
                )
                continue
            candidates = np.flatnonzero(ok_final)
            objective = lab_c[lo:hi] if minimize == "energy" else lab_t[lo:hi]
            best = int(lo) + int(candidates[int(np.argmin(objective[candidates]))])
            best_cost = float(lab_c[best])
            trip_time = float(lab_t[best] - start_times[b])

            speeds = np.empty(n_pts)
            label = best
            speeds[-1] = self.v_grid[int(v_of[-1][label])]
            for stage in range(len(prev_of) - 1, -1, -1):
                label = int(prev_of[stage][label])
                speeds[stage] = self.v_grid[int(v_of[stage][label])]
            if label != b:
                outcomes.append(
                    InfeasibleProblemError(
                        "backtrack did not terminate at the seed state"
                    )
                )
                continue
            profile = VelocityProfile(
                positions_m=self.positions,
                speeds_ms=speeds,
                dwell_s=self._dwell_at,
                start_time_s=float(start_times[b]),
            )
            arrivals: Dict[float, float] = {}
            hits: Dict[float, bool] = {}
            for idx, constraint in constraint_maps[b].items():
                t_arr = float(profile.arrival_times_s[idx])
                arrivals[constraint.position_m] = t_arr
                hits[constraint.position_m] = bool(
                    constraint.windows.contains(np.asarray([t_arr]))[0]
                )
            outcomes.append(
                DpSolution(
                    profile=profile,
                    energy_j=best_cost,
                    trip_time_s=trip_time,
                    signal_arrivals=arrivals,
                    windows_hit=hits,
                    expanded_transitions=int(expanded[b]),
                    pack_voltage_v=self.vehicle.battery.voltage_v,
                )
            )
        return outcomes

    def _solve(
        self,
        registry: obs.MetricsRegistry,
        constraints: Sequence[TimeWindowConstraint],
        start_time_s: float,
        max_trip_time_s: Optional[float],
        minimize: str,
        start_state: Optional[Tuple[float, float]],
    ) -> DpSolution:
        """The DP proper; ``solve`` wraps it in the ``dp.solve`` span."""
        t0 = _time.perf_counter()
        with registry.span("setup"):
            trip_cap = max_trip_time_s if max_trip_time_s is not None else self.horizon_s
            if trip_cap <= 0:
                raise ConfigurationError(f"trip-time cap must be positive, got {trip_cap}")
            trip_cap = min(trip_cap, self.horizon_s)
            n_bins = int(np.floor(self.horizon_s / self.t_bin_s)) + 1
            n_pts = self.positions.size
            i0, j0, seed_time = self._seed_state(start_state, start_time_s)

            constraint_at: Dict[int, TimeWindowConstraint] = {}
            for constraint in constraints:
                idx = int(np.argmin(np.abs(self.positions - constraint.position_m)))
                if abs(self.positions[idx] - constraint.position_m) > self.s_step_m:
                    raise ConfigurationError(
                        f"constraint position {constraint.position_m} m is not on the grid"
                    )
                constraint_at[idx] = constraint

        # Flat label lists per route point.  A label is (velocity index,
        # exact arrival time, exact cost-to-come, back-pointer into the
        # previous point's label list).
        lab_v = np.asarray([j0], dtype=np.int16)
        lab_t = np.asarray([seed_time])
        lab_c = np.asarray([0.0])
        prev_of: List[np.ndarray] = []
        v_of: List[np.ndarray] = [lab_v]
        expanded = 0

        for i in range(i0, n_pts - 1):
            with registry.span("expand") as expand_span:
                j_arr, j2_arr, e_arr, dt_arr = self._segment_pairs(i)
                if j_arr.size == 0:
                    raise InfeasibleProblemError(
                        f"no feasible transition over segment {i} "
                        f"({self.positions[i]:.0f}-{self.positions[i + 1]:.0f} m)"
                    )

                # Expand every (source label, feasible successor)
                # combination through the pure stage kernel.
                src, cj2, cc, ct = expand_stage(
                    lab_v, lab_t, lab_c, j_arr, j2_arr, e_arr, dt_arr,
                    self.v_grid.size,
                )
                if src.size == 0:
                    raise InfeasibleProblemError(
                        f"all labels stranded entering segment {i} "
                        f"({self.positions[i]:.0f}-{self.positions[i + 1]:.0f} m)"
                    )
                expanded += src.size
                expand_span.add(transitions=int(src.size))

                # Time is monotone along a path, so prune any label that could
                # not reach the destination inside the cap even at the fastest
                # feasible continuation (admissible suffix bound).
                keep = ct - start_time_s + self._min_time_to_go[i + 1] <= trip_cap + 1e-9
                target = constraint_at.get(i + 1)
                if target is not None:
                    ok = target.windows.contains(ct)
                    if target.mode == "hard":
                        keep &= ok
                    else:
                        cc = np.where(ok, cc, cc + target.penalty_j)
                src, cj2, cc, ct = src[keep], cj2[keep], cc[keep], ct[keep]
                if src.size == 0:
                    raise InfeasibleProblemError(
                        f"no label survives into {self.positions[i + 1]:.0f} m; "
                        "windows or horizon are too tight"
                    )

            with registry.span("select") as select_span:
                # Label selection per (v', time bin): keep BOTH the cheapest
                # candidate and the earliest candidate (see select_labels).
                sel = select_labels(cj2, cc, ct, start_time_s, self.t_bin_s, n_bins)

                prev_of.append(src[sel].astype(np.int32))
                lab_v = cj2[sel].astype(np.int16)
                lab_t = ct[sel]
                lab_c = cc[sel]
                v_of.append(lab_v)
                select_span.add(labels=int(sel.size))

        # Destination: mandatory v = 0 (Eq. 7d), trip time within the cap.
        at_rest = lab_v == 0
        in_cap = lab_t - start_time_s <= trip_cap + 1e-9
        ok_final = at_rest & in_cap
        if not ok_final.any():
            raise InfeasibleProblemError(
                "no feasible profile: horizon, windows or limits are too tight"
            )
        candidates = np.flatnonzero(ok_final)
        objective = lab_c if minimize == "energy" else lab_t
        best = candidates[int(np.argmin(objective[candidates]))]
        best_cost = float(lab_c[best])
        trip_time = float(lab_t[best] - start_time_s)

        with registry.span("backtrack"):
            speeds = self._backtrack(prev_of, v_of, int(best))
            profile = VelocityProfile(
                positions_m=self.positions[i0:],
                speeds_ms=speeds,
                dwell_s=self._dwell_at[i0:],
                start_time_s=seed_time,
            )
            arrivals: Dict[float, float] = {}
            hits: Dict[float, bool] = {}
            for idx, constraint in constraint_at.items():
                if idx < i0:
                    continue  # already passed this signal before replanning
                t_arr = float(profile.arrival_times_s[idx - i0])
                arrivals[constraint.position_m] = t_arr
                hits[constraint.position_m] = bool(
                    constraint.windows.contains(np.asarray([t_arr]))[0]
                )
        return DpSolution(
            profile=profile,
            energy_j=best_cost,
            trip_time_s=trip_time,
            signal_arrivals=arrivals,
            windows_hit=hits,
            solve_time_s=_time.perf_counter() - t0,
            expanded_transitions=expanded,
            pack_voltage_v=self.vehicle.battery.voltage_v,
        )

    def _seed_state(
        self, start_state: Optional[Tuple[float, float]], start_time_s: float
    ) -> Tuple[int, int, float]:
        """Resolve the initial DP label: (grid index, velocity index, time).

        A whole-trip solve seeds (source, v=0, departure time).  A
        replanning solve snaps the physical state onto the grid: the first
        grid point at or after the position, the nearest admissible grid
        velocity there, and the time adjusted by the short hop from the
        physical position to that grid point at the current speed.

        A position strictly inside the final segment snaps *backwards* to
        that segment's start instead — snapping forward would land on the
        destination with zero segments left to expand, and a profile needs
        at least two points.  The backward hop is free, which is
        conservative: the plan re-covers the few already-driven metres.
        """
        if start_state is None:
            return 0, 0, start_time_s
        position_m, speed_ms = start_state
        if speed_ms < 0:
            raise ConfigurationError(f"speed must be >= 0, got {speed_ms}")
        if not 0.0 <= position_m < self.positions[-1]:
            raise ConfigurationError(
                f"replanning position {position_m} m is outside the route"
            )
        i0 = int(np.searchsorted(self.positions, position_m - 1e-9))
        i0 = min(i0, self.positions.size - 2)
        allowed = np.flatnonzero(self._allowed[i0])
        j0 = int(allowed[np.argmin(np.abs(self.v_grid[allowed] - speed_ms))])
        hop_m = float(self.positions[i0] - position_m)
        if hop_m <= 1e-9:
            return i0, j0, start_time_s
        # Reference speed for the hop: the mean of the endpoint speeds,
        # floored by what a launch at a_max would average over the hop —
        # a stopped vehicle snapping onto a stop-point seed must not be
        # charged a near-infinite crawl.
        launch_avg = 0.5 * np.sqrt(self.vehicle.max_accel_ms2 * hop_m)
        hop_speed = max(0.5 * (speed_ms + self.v_grid[j0]), launch_avg, 0.1)
        return i0, j0, start_time_s + hop_m / hop_speed

    def _backtrack(
        self, prev_of: List[np.ndarray], v_of: List[np.ndarray], final_label: int
    ) -> np.ndarray:
        """Recover the velocity sequence by walking label back-pointers."""
        speeds = np.empty(len(v_of))
        label = final_label
        speeds[-1] = self.v_grid[int(v_of[-1][label])]
        for i in range(len(prev_of) - 1, -1, -1):
            label = int(prev_of[i][label])
            speeds[i] = self.v_grid[int(v_of[i][label])]
        if label != 0:
            raise InfeasibleProblemError("backtrack did not terminate at the seed state")
        return speeds


def green_windows_for_signal(light, start_s: float, horizon_s: float) -> List[QueueWindow]:
    """All green windows of a light over a horizon, as queue windows.

    This is the arrival set used by the *baseline* DP [2], which assumes a
    green signal can be crossed instantly regardless of any queue.
    """
    return [QueueWindow(a, b) for a, b in light.green_windows(horizon_s, start_s)]
