"""Analytic GLOSA baseline: greedy green-light speed advisory.

The paper's related work compares "green light optimal speed advisory"
approaches (Seredynski et al. [17]): lightweight systems that, instead of
solving a DP, greedily pick one cruise speed per road leg so the vehicle
arrives at the next signal inside a green window.  This module implements
that class of advisor — with an optional queue-aware variant that targets
the QL model's ``T_q`` windows instead of raw green — as a comparator for
the DP planners:

* it is orders of magnitude cheaper to compute,
* it is greedy: each leg commits to the earliest reachable window, which
  can force expensive speeds on later legs where the DP trades globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.profile import VelocityProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ArtifactStore
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.route.road import RoadSegment
from repro.signal.queue import QueueLengthModel, QueueWindow
from repro.signal.vm import VehicleMovementModel
from repro.vehicle.params import VehicleParams

ArrivalRate = Union[float, Callable[[float], float]]


@dataclass
class GlosaPlan:
    """The advisor's output.

    Attributes:
        profile: The advised velocity profile.
        signal_arrivals: Arrival time at each signal position.
        waited_at: Signal positions where no window was reachable and the
            advisor fell back to stopping and waiting.
    """

    profile: VelocityProfile
    signal_arrivals: Dict[float, float]
    waited_at: List[float]

    @property
    def stop_free(self) -> bool:
        """True when every signal was crossed without stopping."""
        return not self.waited_at


def _leg_kinematics(
    v0: float, v1: float, v_c: float, length: float, a_up: float, a_down: float
) -> Tuple[float, float, float, float]:
    """Travel time and ramp breakdown of one leg at cruise ``v_c``.

    Returns ``(time, d_up, d_down, peak)``: the leg traversal time, the
    entry/exit ramp lengths and the realized peak speed (below ``v_c``
    when the leg is too short for a full trapezoid).
    """
    v_c = max(v_c, 0.1)
    if v1 > v0:
        # The exit speed may itself be unreachable on a very short leg:
        # then the vehicle simply accelerates the whole way.
        reachable = float(np.sqrt(v0 * v0 + 2.0 * a_up * length))
        if reachable <= v1 + 1e-9:
            t_up = (reachable - v0) / a_up
            return t_up, length, 0.0, reachable
    d_up = abs(v_c * v_c - v0 * v0) / (2.0 * (a_up if v_c >= v0 else a_down))
    d_down = abs(v_c * v_c - v1 * v1) / (2.0 * a_down) if v_c > v1 else 0.0
    if d_up + d_down <= length:
        t_up = abs(v_c - v0) / (a_up if v_c >= v0 else a_down)
        t_down = (v_c - v1) / a_down if v_c > v1 else 0.0
        t_cruise = (length - d_up - d_down) / v_c
        return t_up + t_down + t_cruise, d_up, d_down, v_c
    # Triangular profile: the leg is too short to reach v_c.
    peak_sq = (2.0 * a_up * a_down * length + a_down * v0 * v0 + a_up * v1 * v1) / (
        a_up + a_down
    )
    peak = float(np.sqrt(max(peak_sq, max(v0, v1) ** 2 + 1e-9)))
    d_up = (peak * peak - v0 * v0) / (2.0 * a_up)
    d_down = (peak * peak - v1 * v1) / (2.0 * a_down)
    t_up = (peak - v0) / a_up
    t_down = (peak - v1) / a_down
    return t_up + t_down, d_up, min(d_down, length - d_up), peak


class GlosaAdvisor:
    """Greedy per-leg speed advisory over a corridor.

    Args:
        road: Corridor to advise over.
        vehicle: Acceleration limits source (paper defaults when ``None``).
        arrival_rates: When given, the advisor targets queue-free windows
            (``T_q``) computed from these rates; otherwise raw green
            windows — the classic GLOSA.
        cruise_accel_ms2: Acceleration used for advised speed changes
            (gentler than the comfort maximum, as advisories are).
        window_margin_s: Seconds inside each window edge to aim for.
        stop_dwell_s: Dwell at stop signs.
        store: Accepted for constructor uniformity with the DP planners
            (the degradation ladder builds every tier with the same
            ``store=`` keyword); the analytic advisor precomputes no
            corridor artifacts, so the store is held but never consulted.
    """

    def __init__(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        arrival_rates: Optional[ArrivalRate] = None,
        cruise_accel_ms2: float = 1.2,
        window_margin_s: float = 1.0,
        stop_dwell_s: float = 2.0,
        store: Optional["ArtifactStore"] = None,
    ) -> None:
        if cruise_accel_ms2 <= 0:
            raise ConfigurationError("cruise acceleration must be positive")
        if window_margin_s < 0 or stop_dwell_s < 0:
            raise ConfigurationError("margin and dwell must be >= 0")
        self.road = road
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.arrival_rates = arrival_rates
        self.store = store
        self.a_up = min(cruise_accel_ms2, self.vehicle.max_accel_ms2)
        self.a_down = min(cruise_accel_ms2, abs(self.vehicle.min_accel_ms2))
        self.window_margin_s = window_margin_s
        self.stop_dwell_s = stop_dwell_s
        self._queue_models: Dict[float, QueueLengthModel] = {}
        if arrival_rates is not None:
            for site in road.signals:
                v_min = road.v_min_at(site.position_m)
                if v_min <= 0:
                    raise ConfigurationError(
                        "queue-aware GLOSA needs a positive zone v_min"
                    )
                vm = VehicleMovementModel(
                    light=site.light,
                    v_min_ms=v_min,
                    a_max_ms2=self.vehicle.max_accel_ms2,
                    spacing_m=site.queue_spacing_m,
                    turn_ratio=site.turn_ratio,
                )
                self._queue_models[site.position_m] = QueueLengthModel(vm)

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def _windows_for(self, position: float, start_s: float, horizon_s: float):
        site = next(s for s in self.road.signals if s.position_m == position)
        if self.arrival_rates is None:
            return [
                QueueWindow(a, b)
                for a, b in site.light.green_windows(horizon_s, start_s)
            ]
        return self._queue_models[position].empty_windows(
            start_s, horizon_s, self.arrival_rates
        )

    # ------------------------------------------------------------------
    # Advisory
    # ------------------------------------------------------------------
    def plan(
        self,
        start_time_s: float = 0.0,
        horizon_s: float = 900.0,
        start_position_m: float = 0.0,
        start_speed_ms: float = 0.0,
    ) -> GlosaPlan:
        """Advise a trip greedily leg by leg.

        By default the advisory covers the whole corridor from a
        standing start at the source.  A mid-route state
        (``start_position_m``, ``start_speed_ms``) advises only the
        remaining legs — this is the degraded-mode replanning path of
        the resilience ladder, where the advisor substitutes for an
        unreachable DP planner mid-trip.
        """
        if not 0.0 <= start_position_m < self.road.length_m:
            raise ConfigurationError(
                f"start position must be in [0, {self.road.length_m}), "
                f"got {start_position_m}"
            )
        if start_speed_ms < 0:
            raise ConfigurationError("start speed must be >= 0")
        legs = [
            (end, kind) for end, kind in self._legs() if end > start_position_m
        ]
        points: List[Tuple[float, float, float]] = [
            (start_position_m, start_speed_ms, 0.0)
        ]  # (s, v, dwell)
        arrivals: Dict[float, float] = {}
        waited: List[float] = []
        t = start_time_s
        v0 = start_speed_ms
        position = start_position_m
        for leg_end, kind in legs:
            length = leg_end - position
            v_max = self.road.v_max_at(position + 0.5 * length)
            v_min = max(self.road.v_min_at(position + 0.5 * length), 1.0)
            if kind == "signal":
                v_c, arrival, stopped = self._advise_signal_leg(
                    position, leg_end, t, v0, length, v_max, v_min, horizon_s
                )
                arrivals[leg_end] = arrival
                if stopped:
                    waited.append(leg_end)
                    points.extend(
                        self._leg_points(position, leg_end, v0, 0.0, v_c)
                    )
                    windows = self._windows_for(leg_end, arrival, horizon_s)
                    release = windows[0].start_s if windows else arrival
                    dwell = max(release + self.window_margin_s - arrival, 0.0)
                    points.append((leg_end, 0.0, dwell))
                    t = arrival + dwell
                    v0 = 0.0
                else:
                    points.extend(self._leg_points(position, leg_end, v0, v_c, v_c))
                    points.append((leg_end, v_c, 0.0))
                    t = arrival
                    v0 = v_c
            else:  # stop sign or destination: halt
                time_taken, *_ = _leg_kinematics(
                    v0, 0.0, v_max, length, self.a_up, self.a_down
                )
                points.extend(self._leg_points(position, leg_end, v0, 0.0, v_max))
                dwell = self.stop_dwell_s if kind == "stop" else 0.0
                points.append((leg_end, 0.0, dwell))
                t += time_taken + dwell
                v0 = 0.0
            position = leg_end

        positions = [p[0] for p in points]
        speeds = [p[1] for p in points]
        dwells = [p[2] for p in points]
        # Deduplicate positions introduced by zero-length ramps.
        keep_pos: List[float] = []
        keep_spd: List[float] = []
        keep_dwl: List[float] = []
        for s, v, d in zip(positions, speeds, dwells):
            if keep_pos and s - keep_pos[-1] < 0.5:
                keep_spd[-1] = v
                keep_dwl[-1] = max(keep_dwl[-1], d)
                continue
            keep_pos.append(s)
            keep_spd.append(v)
            keep_dwl.append(d)
        profile = VelocityProfile(
            positions_m=keep_pos,
            speeds_ms=keep_spd,
            dwell_s=keep_dwl,
            start_time_s=start_time_s,
        )
        return GlosaPlan(profile=profile, signal_arrivals=arrivals, waited_at=waited)

    def _legs(self) -> List[Tuple[float, str]]:
        """Route breakpoints: (position, kind) with kind in stop/signal/end."""
        marks: List[Tuple[float, str]] = [
            (sign.position_m, "stop") for sign in self.road.stop_signs
        ]
        marks.extend((site.position_m, "signal") for site in self.road.signals)
        marks.append((self.road.length_m, "end"))
        return sorted(marks)

    def _advise_signal_leg(
        self, start, end, t0, v0, length, v_max, v_min, horizon_s
    ) -> Tuple[float, float, bool]:
        """Pick the leg cruise speed; returns (speed, arrival, stopped)."""
        t_fast, *_ = _leg_kinematics(v0, v_max, v_max, length, self.a_up, self.a_down)
        t_slow, *_ = _leg_kinematics(v0, v_min, v_min, length, self.a_up, self.a_down)
        earliest, latest = t0 + t_fast, t0 + t_slow
        for window in self._windows_for(end, t0, horizon_s):
            lo = window.start_s + self.window_margin_s
            hi = window.end_s - self.window_margin_s
            if hi <= lo or hi < earliest:
                continue
            if lo > latest:
                break  # cannot dawdle enough: stop-and-wait fallback
            target = min(max(lo, earliest), hi)
            v_c = self._speed_for_arrival(v0, length, target - t0, v_min, v_max)
            time_taken, *_ = _leg_kinematics(
                v0, v_c, v_c, length, self.a_up, self.a_down
            )
            return v_c, t0 + time_taken, False
        # No reachable window: drive up and stop at the line.
        time_taken, *_ = _leg_kinematics(v0, 0.0, v_max, length, self.a_up, self.a_down)
        return v_max, t0 + time_taken, True

    def _speed_for_arrival(self, v0, length, duration, v_min, v_max) -> float:
        """Bisection: the cruise speed whose leg time matches ``duration``."""
        lo, hi = v_min, v_max
        for _ in range(48):
            mid = 0.5 * (lo + hi)
            time_taken, *_ = _leg_kinematics(v0, mid, mid, length, self.a_up, self.a_down)
            if time_taken > duration:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def _leg_points(self, start, end, v0, v1, v_c) -> List[Tuple[float, float, float]]:
        """Interior profile points of a leg (entry ramp end, exit ramp start)."""
        length = end - start
        _, d_up, d_down, peak = _leg_kinematics(
            v0, v1, v_c, length, self.a_up, self.a_down
        )
        points: List[Tuple[float, float, float]] = []
        if 0.5 < d_up < length:
            points.append((start + d_up, peak, 0.0))
        ramp_start = end - d_down
        if d_down > 0.5 and ramp_start - start > d_up + 0.5:
            points.append((ramp_start, peak, 0.0))
        return points
