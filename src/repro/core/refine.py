"""Coarse-to-fine DP acceleration (the [15] speedup, Qiu et al. 2016).

Section II-C notes that the computation of the velocity-profile DP can be
made efficient "using the method introduced in [15], which is orthogonal
to the work in this paper".  This module implements that idea:

1. Solve the problem on a *coarse* velocity grid (and optionally coarser
   time bins) — cheap, and already captures where the profile needs to be
   slow or fast to hit the signal windows.
2. Solve again on the *fine* grid, restricting the admissible velocities
   at every route position to a band around the coarse solution.

The fine pass explores a thin corridor of the state space instead of all
of it.  The band must be at least a couple of coarse steps wide so the
optimum is not clipped; the default is validated by the ablation bench.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.dp import DpSolution, DpSolver, TimeWindowConstraint
from repro.core.engine import ArtifactStore, CorridorArtifacts
from repro.errors import ConfigurationError, InfeasibleProblemError
from repro.route.road import RoadSegment
from repro.vehicle.params import VehicleParams


@dataclass
class RefinementStats:
    """Diagnostics of one coarse-to-fine solve.

    Attributes:
        coarse_time_s: Wall time of the coarse pass.
        fine_time_s: Wall time of the restricted fine pass.
        coarse_energy_j: Coarse objective value.
        fine_energy_j: Fine objective value (the returned solution's).
        coarse_transitions: Transitions expanded by the coarse pass.
        fine_transitions: Transitions expanded by the fine pass.
    """

    coarse_time_s: float
    fine_time_s: float
    coarse_energy_j: float
    fine_energy_j: float
    coarse_transitions: int
    fine_transitions: int

    @property
    def total_time_s(self) -> float:
        """Combined wall time of both passes."""
        return self.coarse_time_s + self.fine_time_s


class CoarseToFineSolver:
    """Two-pass DP: coarse exploration, then fine search in a corridor.

    Args:
        road: Corridor to plan over.
        vehicle: EV parameters.
        fine_v_step_ms: Velocity resolution of the final answer.
        coarse_factor: Coarse grid step = ``coarse_factor * fine step``.
        band_ms: Half-width of the velocity corridor around the coarse
            solution admitted in the fine pass (m/s).
        s_step_m: Distance grid step (shared by both passes; the coarse
            pass widens it when the coarse velocity step demands longer
            segments for feasible decelerations).
        t_bin_s: Time-bin width of the fine pass.
        horizon_s: Clock horizon.
        stop_dwell_s: Stop-sign dwell.
        enforce_min_speed: Eq. 7a lower bound handling.
        store: Optional shared :class:`~repro.core.engine.ArtifactStore`.
            Both passes pull their corridor artifacts from it; without a
            store the fine artifacts are still built exactly once here
            (instead of on every :meth:`solve`) and reused by the
            band-restricted pass and its unrestricted fallback alike.
    """

    def __init__(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        fine_v_step_ms: float = 0.5,
        coarse_factor: int = 4,
        band_ms: float = 3.0,
        s_step_m: float = 10.0,
        t_bin_s: float = 1.0,
        horizon_s: float = 600.0,
        stop_dwell_s: float = 2.0,
        enforce_min_speed: bool = True,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        if coarse_factor < 2:
            raise ConfigurationError(f"coarse factor must be >= 2, got {coarse_factor}")
        if band_ms < coarse_factor * fine_v_step_ms:
            raise ConfigurationError(
                "the refinement band must cover at least one coarse velocity step"
            )
        self.road = road
        self.vehicle = vehicle if vehicle is not None else VehicleParams()
        self.band_ms = float(band_ms)
        coarse_v_step = fine_v_step_ms * coarse_factor
        # A coarse velocity step needs segments long enough that one grid
        # step of deceleration stays within a_min (see Eq. 7b).
        v_max = max(zone.v_max_ms for zone in road.zones)
        needed = v_max * coarse_v_step / abs(self.vehicle.min_accel_ms2)
        coarse_s_step = max(s_step_m, float(np.ceil(needed / 5.0) * 5.0))
        self.store = store
        self._coarse = DpSolver(
            road,
            vehicle=self.vehicle,
            v_step_ms=coarse_v_step,
            s_step_m=coarse_s_step,
            t_bin_s=t_bin_s * 2.0,
            horizon_s=horizon_s,
            stop_dwell_s=stop_dwell_s,
            enforce_min_speed=enforce_min_speed,
            store=store,
            environment=environment,
        )
        self._fine_kwargs = dict(
            vehicle=self.vehicle,
            v_step_ms=fine_v_step_ms,
            s_step_m=s_step_m,
            t_bin_s=t_bin_s,
            horizon_s=horizon_s,
            stop_dwell_s=stop_dwell_s,
            enforce_min_speed=enforce_min_speed,
            environment=environment,
        )
        # The fine corridor artifacts do not depend on the per-solve band,
        # so build (or fetch) them once and share them across every fine
        # pass and fallback instead of rebuilding on each solve().
        if store is not None:
            self._fine_artifacts = store.get_or_build(
                road,
                self.vehicle,
                v_step_ms=fine_v_step_ms,
                s_step_m=s_step_m,
                stop_dwell_s=stop_dwell_s,
                enforce_min_speed=enforce_min_speed,
                environment=environment,
            )
        else:
            self._fine_artifacts = CorridorArtifacts.build(
                road,
                self.vehicle,
                v_step_ms=fine_v_step_ms,
                s_step_m=s_step_m,
                stop_dwell_s=stop_dwell_s,
                enforce_min_speed=enforce_min_speed,
                environment=environment,
            )
        self.last_stats: Optional[RefinementStats] = None

    def solve(
        self,
        constraints: Sequence[TimeWindowConstraint] = (),
        start_time_s: float = 0.0,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
    ) -> DpSolution:
        """Two-pass solve; falls back to an unrestricted fine pass when the
        corridor around the coarse solution turns out infeasible."""
        t0 = _time.perf_counter()
        coarse = self._coarse.solve(
            constraints=constraints,
            start_time_s=start_time_s,
            max_trip_time_s=max_trip_time_s,
            minimize=minimize,
        )
        coarse_time = _time.perf_counter() - t0

        profile = coarse.profile
        band = self.band_ms

        def bounds(position_m: float) -> Tuple[float, float]:
            clamped = min(max(position_m, profile.positions_m[0]), profile.positions_m[-1])
            centre = profile.speed_at(clamped)
            return (max(centre - band, 0.0), centre + band)

        fine_solver = DpSolver(
            self.road,
            velocity_bounds=bounds,
            artifacts=self._fine_artifacts,
            **self._fine_kwargs,
        )
        t1 = _time.perf_counter()
        try:
            fine = fine_solver.solve(
                constraints=constraints,
                start_time_s=start_time_s,
                max_trip_time_s=max_trip_time_s,
                minimize=minimize,
            )
        except InfeasibleProblemError:
            # Corridor clipped the only feasible fine paths: fall back.
            fallback = DpSolver(
                self.road, artifacts=self._fine_artifacts, **self._fine_kwargs
            )
            fine = fallback.solve(
                constraints=constraints,
                start_time_s=start_time_s,
                max_trip_time_s=max_trip_time_s,
                minimize=minimize,
            )
        fine_time = _time.perf_counter() - t1

        self.last_stats = RefinementStats(
            coarse_time_s=coarse_time,
            fine_time_s=fine_time,
            coarse_energy_j=coarse.energy_j,
            fine_energy_j=fine.energy_j,
            coarse_transitions=coarse.expanded_transitions,
            fine_transitions=fine.expanded_transitions,
        )
        return fine
