"""The paper's primary contribution: DP velocity optimization.

Public surface:

* :class:`~repro.core.profile.VelocityProfile` — a distance-indexed plan
  with kinematically consistent timing (Eq. 10) and energy evaluation.
* :class:`~repro.core.dp.DpSolver` — the time-expanded dynamic program
  over (position, velocity, time) implementing Eq. 7-12.
* :class:`~repro.core.planner.BaselineDpPlanner` — the existing DP [2]:
  signals constrain arrivals to green windows but queues are ignored.
* :class:`~repro.core.planner.QueueAwareDpPlanner` — the proposed system:
  arrivals constrained to the QL model's queue-free windows ``T_q``.
* :class:`~repro.core.uncertainty.ChanceConstrainedPlanner` — the
  queue-aware DP planning against the *distribution* of the window
  forecast: a residual model's chance margin shrinks every window.
* :class:`~repro.core.horizon.RecedingHorizonPlanner` — MPC-style
  wrapper replanning every cycle from the current state over warm
  corridor artifacts.
"""

from repro.core.profile import TimedTrace, VelocityProfile
from repro.core.constraints import ConstraintReport, check_profile
from repro.core.dp import DpSolution, DpSolver, TimeWindowConstraint
from repro.core.glosa import GlosaAdvisor, GlosaPlan
from repro.core.refine import CoarseToFineSolver
from repro.core.planner import (
    BaselineDpPlanner,
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.core.uncertainty import (
    ChanceConstrainedPlanner,
    ResidualModel,
    window_start_sensitivity,
)
from repro.core.horizon import RecedingHorizonPlanner

__all__ = [
    "BaselineDpPlanner",
    "ChanceConstrainedPlanner",
    "CoarseToFineSolver",
    "ConstraintReport",
    "DpSolution",
    "DpSolver",
    "GlosaAdvisor",
    "GlosaPlan",
    "PlannerConfig",
    "QueueAwareDpPlanner",
    "RecedingHorizonPlanner",
    "ResidualModel",
    "TimeWindowConstraint",
    "TimedTrace",
    "UnconstrainedDpPlanner",
    "VelocityProfile",
    "window_start_sensitivity",
    "check_profile",
]
