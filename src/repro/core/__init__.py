"""The paper's primary contribution: DP velocity optimization.

Public surface:

* :class:`~repro.core.profile.VelocityProfile` — a distance-indexed plan
  with kinematically consistent timing (Eq. 10) and energy evaluation.
* :class:`~repro.core.dp.DpSolver` — the time-expanded dynamic program
  over (position, velocity, time) implementing Eq. 7-12.
* :class:`~repro.core.planner.BaselineDpPlanner` — the existing DP [2]:
  signals constrain arrivals to green windows but queues are ignored.
* :class:`~repro.core.planner.QueueAwareDpPlanner` — the proposed system:
  arrivals constrained to the QL model's queue-free windows ``T_q``.
"""

from repro.core.profile import TimedTrace, VelocityProfile
from repro.core.constraints import ConstraintReport, check_profile
from repro.core.dp import DpSolution, DpSolver, TimeWindowConstraint
from repro.core.glosa import GlosaAdvisor, GlosaPlan
from repro.core.refine import CoarseToFineSolver
from repro.core.planner import (
    BaselineDpPlanner,
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)

__all__ = [
    "BaselineDpPlanner",
    "CoarseToFineSolver",
    "ConstraintReport",
    "DpSolution",
    "DpSolver",
    "GlosaAdvisor",
    "GlosaPlan",
    "PlannerConfig",
    "QueueAwareDpPlanner",
    "TimeWindowConstraint",
    "TimedTrace",
    "UnconstrainedDpPlanner",
    "VelocityProfile",
    "check_profile",
]
