"""Transition-cost building blocks for the DP (Eq. 9 and Eq. 12).

Two pieces live here:

* :class:`SegmentEnergyTable` — the per-segment matrix of electrical
  energies for every (v_start, v_end) pair on the velocity grid, i.e. the
  ``zeta(v(s_i), a(s_i))`` term of Eq. 9, with infeasible accelerations
  marked infinite (the ``+inf`` branch).
* :class:`WindowSet` — an ordered set of absolute time windows with a
  vectorized membership test, used to apply the ``T_q`` penalty of
  Eq. 11/12 to whole time-bin rows at once.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.signal.queue import QueueWindow
from repro.vehicle.dynamics import LongitudinalModel


class SegmentEnergyTable:
    """Energy matrix ``E[j, j2]`` for one constant-grade segment.

    Args:
        model: Vehicle consumption model.
        v_grid: Velocity grid values (m/s), shared across segments.
        distance_m: Segment length ``ds``.
        grade_rad: Road grade over the segment (evaluated at its midpoint).
        a_min: Minimum allowed acceleration (m/s^2, negative).
        a_max: Maximum allowed acceleration (m/s^2, positive).

    ``E[j, j2]`` is the electrical energy (J, negative under net regen) to
    go from ``v_grid[j]`` to ``v_grid[j2]`` over the segment at constant
    acceleration; entries violating Eq. 7b or with zero average speed are
    ``+inf``.
    """

    def __init__(
        self,
        model: LongitudinalModel,
        v_grid: np.ndarray,
        distance_m: float,
        grade_rad: float,
        a_min: float,
        a_max: float,
    ) -> None:
        if distance_m <= 0:
            raise ValueError(f"segment length must be positive, got {distance_m}")
        self.distance_m = float(distance_m)
        v0 = v_grid[:, None]
        v1 = v_grid[None, :]
        accel = (np.square(v1) - np.square(v0)) / (2.0 * distance_m)
        v_avg = 0.5 * (v0 + v1)
        feasible = (accel >= a_min - 1e-12) & (accel <= a_max + 1e-12) & (v_avg > 0.0)
        energy = np.asarray(
            model.segment_energy_j(
                np.broadcast_to(v0, feasible.shape),
                np.broadcast_to(v1, feasible.shape),
                distance_m,
                grade_rad,
            ),
            dtype=float,
        )
        self.energy_j = np.where(feasible, energy, np.inf)
        with np.errstate(divide="ignore"):
            self.travel_s = np.where(v_avg > 0.0, distance_m / np.where(v_avg > 0, v_avg, 1.0), np.inf)
        self.travel_s = np.where(feasible, self.travel_s, np.inf)
        self.feasible = feasible

    @classmethod
    def from_arrays(
        cls,
        distance_m: float,
        energy_j: np.ndarray,
        travel_s: np.ndarray,
        feasible: np.ndarray,
    ) -> "SegmentEnergyTable":
        """Rehydrate a table from already-priced arrays, without a model.

        The shared-memory attach path
        (:class:`repro.core.engine.shm.SharedCorridor`) rebuilds tables
        from exported arrays; re-pricing them would defeat the zero-copy
        mapping (and double the memory).  The arrays are adopted as-is —
        the caller vouches they came from an equivalent pricing run.
        """
        table = cls.__new__(cls)
        table.distance_m = float(distance_m)
        table.energy_j = energy_j
        table.travel_s = travel_s
        table.feasible = feasible
        return table

    def successors(self, j: int) -> np.ndarray:
        """Indices ``j2`` reachable from grid velocity index ``j``."""
        return np.flatnonzero(self.feasible[j])


class WindowSet:
    """Sorted, disjoint absolute time windows with vectorized membership.

    Args:
        windows: Queue-free (or green) windows; they are sorted and merged
            if overlapping.
    """

    def __init__(self, windows: Sequence[QueueWindow]) -> None:
        ordered = sorted(windows, key=lambda w: w.start_s)
        merged: List[Tuple[float, float]] = []
        for w in ordered:
            if merged and w.start_s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], w.end_s))
            else:
                merged.append((w.start_s, w.end_s))
        self._starts = np.asarray([m[0] for m in merged], dtype=float)
        self._ends = np.asarray([m[1] for m in merged], dtype=float)

    def __len__(self) -> int:
        return int(self._starts.size)

    @property
    def is_empty(self) -> bool:
        """True when no window exists (e.g. oversaturated signal)."""
        return self._starts.size == 0

    def contains(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``times`` fall inside any window."""
        t = np.asarray(times, dtype=float)
        if self.is_empty:
            return np.zeros(t.shape, dtype=bool)
        idx = np.searchsorted(self._starts, t, side="right") - 1
        valid = idx >= 0
        inside = np.zeros(t.shape, dtype=bool)
        safe = np.clip(idx, 0, self._starts.size - 1)
        inside[valid] = t[valid] < self._ends[safe[valid]]
        return inside

    def shrunk(self, margin_s: float) -> "WindowSet":
        """A copy with every window shrunk by ``margin_s`` on both ends.

        The DP quantizes time into bins; shrinking the target windows by a
        margin larger than the accumulated rounding error guarantees the
        continuous-time profile still lands inside the true window.
        Windows that collapse disappear.
        """
        if margin_s < 0:
            raise ValueError(f"margin must be >= 0, got {margin_s}")
        survivors = [
            QueueWindow(s + margin_s, e - margin_s)
            for s, e in zip(self._starts, self._ends)
            if (e - margin_s) - (s + margin_s) > 1e-9
        ]
        return WindowSet(survivors)

    def as_queue_windows(self) -> List[QueueWindow]:
        """The merged windows as :class:`QueueWindow` objects."""
        return [QueueWindow(float(s), float(e)) for s, e in zip(self._starts, self._ends)]
