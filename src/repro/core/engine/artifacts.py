"""Precomputed corridor artifacts: the offline half of the DP split.

Everything the DP prices a ``(segment, v, v')`` transition from is static
corridor data — the velocity grid, the per-segment Eq. 9 energy tables,
the admissible-velocity masks, the stop-sign dwells and the optimistic
min-time-to-go bound.  Real-time eco-driving systems get their latency
budget precisely by separating this *offline corridor precomputation*
from the *online solve*; :class:`CorridorArtifacts` is that offline
product, built once by :meth:`CorridorArtifacts.build` and shared by
every solver over the same corridor.

Identity is content-addressed: :func:`corridor_digest` renders the
canonical build inputs — road geometry, vehicle physics and grid
resolutions — to a stable text form (in the spirit of
:func:`repro.resilience.faults.schedule_bytes`) and hashes it with
blake2b.  Two builds with equal digests produce bit-identical arrays,
which is what lets the :class:`~repro.core.engine.store.ArtifactStore`
hand the same artifacts to the cloud planner, every degradation-ladder
tier and a whole fleet sweep.

Signal *timing* (red/green/offset) is deliberately absent from the
digest: the artifacts depend on where signals sit (their positions snap
into the distance grid), never on when they turn green — so replans
across cycle phases, drifted timing plans and re-offset corridors all
share one build.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.core.cost import SegmentEnergyTable
from repro.errors import ConfigurationError
from repro.route.road import RoadSegment
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.environment import EnvironmentConditions, NOMINAL_ENVIRONMENT
from repro.vehicle.params import VehicleParams

__all__ = ["CorridorArtifacts", "corridor_digest"]

#: Bump when the canonical rendering (or the artifact contents derived
#: from it) changes shape; digests from different versions never collide.
#: v2: efficiency-map and environment fragments joined the rendering.
_DIGEST_VERSION = "corridor-artifacts-v2"

#: Per-segment feasible transition arrays ``(j, j2, energy_j, dt_s)``.
SegmentPairs = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _canonical_parts(
    road: RoadSegment,
    vehicle: VehicleParams,
    environment: EnvironmentConditions,
    v_step_ms: float,
    s_step_m: float,
    stop_dwell_s: float,
    enforce_min_speed: bool,
) -> Iterator[str]:
    """Render every digest-relevant input as stable text fragments.

    Floats are rendered with ``repr`` (shortest round-trip form), so the
    rendering — and therefore the digest — is identical across platforms
    and processes for equal inputs.
    """
    yield _DIGEST_VERSION
    yield f"grid:{v_step_ms!r},{s_step_m!r},{stop_dwell_s!r},{int(enforce_min_speed)}"
    yield f"road:{float(road.length_m)!r}"
    for zone in road.zones:
        yield (
            f"zone:{float(zone.start_m)!r},{float(zone.end_m)!r},"
            f"{float(zone.v_max_ms)!r},{float(zone.v_min_ms)!r}"
        )
    for sign in road.stop_signs:
        yield f"stop:{float(sign.position_m)!r}"
    for site in road.signals:
        # Position only: timing never reaches the artifacts (see module doc).
        yield f"signal:{float(site.position_m)!r}"
    grade_pos, grade_rad = road.grade.breakpoints()
    yield "grade:" + ",".join(repr(float(g)) for g in grade_pos)
    yield "grade:" + ",".join(repr(float(g)) for g in grade_rad)
    battery = vehicle.battery
    yield (
        "vehicle:"
        + ",".join(
            repr(float(value))
            for value in (
                vehicle.mass_kg,
                vehicle.frontal_area_m2,
                vehicle.drag_coefficient,
                vehicle.rolling_resistance,
                vehicle.air_density,
                vehicle.battery_efficiency,
                vehicle.powertrain_efficiency,
                vehicle.regen_efficiency,
                vehicle.aux_power_w,
                vehicle.max_accel_ms2,
                vehicle.min_accel_ms2,
            )
        )
    )
    yield (
        "battery:"
        + ",".join(
            repr(float(value))
            for value in (battery.voltage_v, battery.capacity_ah, battery.cell_capacity_ah)
        )
        + f",{battery.series_cells},{battery.parallel_strings}"
    )
    # A vehicle with no map renders the constant fragment it is
    # physically equivalent to, so `efficiency_map=None` and an explicit
    # ConstantEfficiencyMap(drivetrain_efficiency) share one digest.
    if vehicle.efficiency_map is None:
        yield f"effmap:constant,{float(vehicle.drivetrain_efficiency)!r}"
    else:
        yield from vehicle.efficiency_map.canonical_parts()
    # The environment fragment is always present (nominal included), so
    # any parameter nudge — temperature, wind, payload, grade offset —
    # re-keys the artifacts and can never reuse another scenario's build.
    yield from environment.canonical_parts()


def corridor_digest(
    road: RoadSegment,
    vehicle: VehicleParams,
    *,
    v_step_ms: float,
    s_step_m: float,
    stop_dwell_s: float = 2.0,
    enforce_min_speed: bool = True,
    environment: Optional[EnvironmentConditions] = None,
) -> str:
    """Stable content digest of one corridor-artifact build's inputs.

    Equal inputs always hash equal (blake2b over the canonical text
    rendering); any change to the road geometry, the vehicle physics,
    the ambient environment or the grid resolutions yields a new digest.
    ``environment=None`` means :data:`~repro.vehicle.environment.NOMINAL_ENVIRONMENT`
    and digests identically to it.
    """
    environment = environment if environment is not None else NOMINAL_ENVIRONMENT
    hasher = hashlib.blake2b(digest_size=16)
    for part in _canonical_parts(
        road, vehicle, environment, float(v_step_ms), float(s_step_m),
        float(stop_dwell_s), bool(enforce_min_speed),
    ):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True, eq=False)
class CorridorArtifacts:
    """Immutable bundle of everything the DP derives from static inputs.

    Attributes:
        digest: Content digest of the build inputs (the store key).
        road: The corridor the artifacts were built for.
        vehicle: The vehicle whose physics priced the energy tables.
        environment: Ambient conditions the tables were priced under.
        v_step_ms: Velocity grid resolution (m/s).
        s_step_m: Distance grid resolution (m).
        stop_dwell_s: Mandatory stop-sign dwell baked into ``dwell_at``.
        enforce_min_speed: Whether the Eq. 7a lower bound shaped ``allowed``.
        positions: Route grid points (m), stops and signals snapped in.
        v_grid: Velocity grid values (m/s).
        allowed: Per-point boolean masks of admissible velocity indices
            (Eq. 7a/7c), *without* any solver-local velocity bounds.
        dwell_at: Dwell charged when departing each grid point (s).
        tables: Per-segment Eq. 9 energy/time tables.
        min_time_to_go: Optimistic remaining travel time per point (s).
        pairs: Per-segment feasible ``(j, j2, energy, dt)`` transition
            arrays with ``allowed`` already applied — the form the stage
            kernel consumes directly.

    The arrays are shared, not copied, between every solver holding the
    same artifacts; nothing in the solve path mutates them.
    """

    digest: str
    road: RoadSegment
    vehicle: VehicleParams
    environment: EnvironmentConditions
    v_step_ms: float
    s_step_m: float
    stop_dwell_s: float
    enforce_min_speed: bool
    positions: np.ndarray
    v_grid: np.ndarray
    allowed: np.ndarray
    dwell_at: np.ndarray
    tables: Tuple[SegmentEnergyTable, ...]
    min_time_to_go: np.ndarray
    pairs: Tuple[SegmentPairs, ...]

    @classmethod
    def build(
        cls,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        *,
        v_step_ms: float = 0.5,
        s_step_m: float = 10.0,
        stop_dwell_s: float = 2.0,
        enforce_min_speed: bool = True,
        environment: Optional[EnvironmentConditions] = None,
    ) -> "CorridorArtifacts":
        """Build the full artifact set from the canonical inputs.

        This is the offline (amortizable) half of every DP solve; the
        construction replicates the pre-split solver's operations
        exactly, so a solver running on built artifacts produces
        bit-identical solutions to one building its own.
        ``environment=None`` builds under (and digests as)
        :data:`~repro.vehicle.environment.NOMINAL_ENVIRONMENT`.
        """
        if v_step_ms <= 0 or s_step_m <= 0:
            raise ConfigurationError("grid resolutions must be positive")
        if stop_dwell_s < 0:
            raise ConfigurationError(f"stop dwell must be >= 0, got {stop_dwell_s}")
        vehicle = vehicle if vehicle is not None else VehicleParams()
        environment = environment if environment is not None else NOMINAL_ENVIRONMENT
        model = LongitudinalModel(vehicle, environment)
        positions = road.grid(s_step_m)
        v_max_global = max(zone.v_max_ms for zone in road.zones)
        n_levels = int(np.floor(v_max_global / v_step_ms + 1e-9)) + 1
        v_grid = np.arange(n_levels) * v_step_ms
        if v_grid[-1] < v_max_global - 1e-9:
            # Keep the exact speed limit reachable: losing the top sliver
            # of speed compounds into several seconds over a long corridor,
            # enough to miss tight windows.
            v_grid = np.append(v_grid, v_max_global)

        allowed = _build_allowed_masks(
            road, vehicle, positions, v_grid, s_step_m, enforce_min_speed
        )
        dwell_at = _build_dwells(road, positions, stop_dwell_s)
        tables = _build_tables(road, vehicle, model, positions, v_grid)
        min_time_to_go = _build_min_time_to_go(tables, dwell_at)
        pairs = tuple(
            _segment_pairs(tables[i], allowed, dwell_at, i)
            for i in range(positions.size - 1)
        )
        return cls(
            digest=corridor_digest(
                road,
                vehicle,
                v_step_ms=v_step_ms,
                s_step_m=s_step_m,
                stop_dwell_s=stop_dwell_s,
                enforce_min_speed=enforce_min_speed,
                environment=environment,
            ),
            road=road,
            vehicle=vehicle,
            environment=environment,
            v_step_ms=float(v_step_ms),
            s_step_m=float(s_step_m),
            stop_dwell_s=float(stop_dwell_s),
            enforce_min_speed=bool(enforce_min_speed),
            positions=positions,
            v_grid=v_grid,
            allowed=allowed,
            dwell_at=dwell_at,
            tables=tables,
            min_time_to_go=min_time_to_go,
            pairs=pairs,
        )

    @property
    def n_segments(self) -> int:
        """Number of route segments covered by the tables."""
        return len(self.tables)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the array payload (bytes).

        Store sizing guidance: one default-resolution US-25 build is a
        few tens of MB; size the store capacity so
        ``capacity * nbytes`` fits comfortably in memory.
        """
        total = (
            self.positions.nbytes
            + self.v_grid.nbytes
            + self.allowed.nbytes
            + self.dwell_at.nbytes
            + self.min_time_to_go.nbytes
        )
        for table in self.tables:
            total += table.energy_j.nbytes + table.travel_s.nbytes + table.feasible.nbytes
        for j_arr, j2_arr, e_arr, dt_arr in self.pairs:
            total += j_arr.nbytes + j2_arr.nbytes + e_arr.nbytes + dt_arr.nbytes
        return total

    def restrict_allowed(
        self, velocity_bounds: Callable[[float], Tuple[float, float]]
    ) -> np.ndarray:
        """The admissible-velocity masks intersected with an extra band.

        The coarse-to-fine accelerator restricts the fine search to a
        corridor around a coarse solution; the band is solver-local (an
        arbitrary callable), so it is applied *on top* of the shared base
        masks rather than baked into cached artifacts.

        Raises:
            ConfigurationError: The band empties some position's mask.
        """
        restricted = self.allowed.copy()
        for i, s in enumerate(self.positions):
            lo, hi = velocity_bounds(float(s))
            restricted[i] &= (self.v_grid >= lo - 1e-9) & (self.v_grid <= hi + 1e-9)
            if not restricted[i].any():
                raise ConfigurationError(
                    f"no admissible velocity at {s:.1f} m; check zone limits vs grid step"
                )
        return restricted


def _build_allowed_masks(
    road: RoadSegment,
    vehicle: VehicleParams,
    positions: np.ndarray,
    v_grid: np.ndarray,
    s_step_m: float,
    enforce_min_speed: bool,
) -> np.ndarray:
    """Per-point boolean masks of admissible velocity indices (Eq. 7a/7c)."""
    stops = np.asarray(road.mandatory_stop_positions())
    n_pts = positions.size
    allowed = np.zeros((n_pts, v_grid.size), dtype=bool)
    for i, s in enumerate(positions):
        if np.min(np.abs(stops - s)) < 1e-6:
            allowed[i, 0] = True  # mandatory stop: only v = 0
            continue
        v_max = road.v_max_at(float(s))
        mask = (v_grid > 0.0) & (v_grid <= v_max + 1e-9)
        if enforce_min_speed:
            v_min = road.v_min_at(float(s))
            if v_min > 0:
                ramp = max(
                    v_min * v_min / (2.0 * abs(vehicle.min_accel_ms2)),
                    v_min * v_min / (2.0 * vehicle.max_accel_ms2),
                ) + s_step_m
                if np.min(np.abs(stops - s)) > ramp:
                    mask &= v_grid >= v_min - 1e-9
        if not mask.any():
            raise ConfigurationError(
                f"no admissible velocity at {s:.1f} m; check zone limits vs grid step"
            )
        allowed[i] = mask
    return allowed


def _build_dwells(
    road: RoadSegment, positions: np.ndarray, stop_dwell_s: float
) -> np.ndarray:
    """Dwell time charged when departing each grid point (stop signs only)."""
    dwells = np.zeros(positions.size)
    for sign in road.stop_signs:
        idx = int(np.argmin(np.abs(positions - sign.position_m)))
        dwells[idx] = stop_dwell_s
    return dwells


def _build_tables(
    road: RoadSegment,
    vehicle: VehicleParams,
    model: LongitudinalModel,
    positions: np.ndarray,
    v_grid: np.ndarray,
) -> Tuple[SegmentEnergyTable, ...]:
    """Per-segment energy/time tables (the Eq. 9 ``zeta`` matrices)."""
    tables = []
    a_min, a_max = vehicle.min_accel_ms2, vehicle.max_accel_ms2
    for i in range(positions.size - 1):
        ds = float(positions[i + 1] - positions[i])
        mid = float(0.5 * (positions[i] + positions[i + 1]))
        tables.append(
            SegmentEnergyTable(model, v_grid, ds, road.grade_at(mid), a_min, a_max)
        )
    return tuple(tables)


def _build_min_time_to_go(
    tables: Tuple[SegmentEnergyTable, ...], dwell_at: np.ndarray
) -> np.ndarray:
    """Optimistic remaining travel time from each grid point (s).

    An admissible bound — the fastest any label could still finish —
    used to prune labels that can no longer make the trip-time cap.
    Uses each segment's cheapest feasible traversal time plus the
    mandatory stop-sign dwells.
    """
    n_pts = len(tables) + 1
    to_go = np.zeros(n_pts)
    for i in range(n_pts - 2, -1, -1):
        finite = tables[i].travel_s[tables[i].feasible]
        best = float(finite.min()) if finite.size else np.inf
        to_go[i] = to_go[i + 1] + best + dwell_at[i]
    return to_go


def _segment_pairs(
    table: SegmentEnergyTable, allowed: np.ndarray, dwell_at: np.ndarray, i: int
) -> SegmentPairs:
    """Feasible ``(j, j2, energy, dt)`` transition arrays for segment ``i``."""
    feasible = table.feasible & allowed[i][:, None] & allowed[i + 1][None, :]
    j_arr, j2_arr = np.nonzero(feasible)
    e_arr = table.energy_j[j_arr, j2_arr]
    dt_arr = table.travel_s[j_arr, j2_arr] + dwell_at[i]
    return j_arr, j2_arr, e_arr, dt_arr
