"""The DP's inner stage relaxation as pure array kernels.

These functions are the computational core of
:meth:`repro.core.dp.DpSolver._solve`, hoisted out so the hot path can be
benchmarked, profiled and property-tested in isolation.  They operate
only on plain numpy arrays — no solver state, no road or vehicle objects
— which makes each call a pure function of its inputs.

A stage takes the surviving labels at route point ``i`` (velocity index,
exact arrival time, exact cost-to-come) plus the feasible transition
arrays of segment ``i`` (from the corridor artifacts) and produces the
candidate labels at point ``i + 1``; selection then thins the candidates
to one cheapest and one earliest survivor per ``(velocity, time-bin)``
slot.  The refactor is behavior-preserving: the operations and their
order are exactly those of the pre-split solver, so solutions are
bit-identical.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["expand_stage", "first_per_group", "select_labels"]


def expand_stage(
    lab_v: np.ndarray,
    lab_t: np.ndarray,
    lab_c: np.ndarray,
    j_arr: np.ndarray,
    j2_arr: np.ndarray,
    e_arr: np.ndarray,
    dt_arr: np.ndarray,
    n_levels: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand every (source label, feasible successor) combination.

    Args:
        lab_v: Velocity index of each surviving label at the stage entry.
        lab_t: Exact arrival time of each label (s).
        lab_c: Exact cost-to-come of each label (J).
        j_arr: Source velocity index of each feasible transition.
        j2_arr: Successor velocity index of each feasible transition.
        e_arr: Energy of each feasible transition (J).
        dt_arr: Traversal time of each feasible transition, including the
            departure dwell (s).
        n_levels: Size of the velocity grid.

    Returns:
        ``(src, cj2, cc, ct)``: for every candidate, the index of its
        source label, its successor velocity index, its cost-to-come and
        its arrival time.  All four are empty when no label has a
        feasible continuation (the caller decides how to fail).
    """
    order_v = np.argsort(lab_v, kind="stable")
    src_sorted_v = lab_v[order_v]
    counts = np.bincount(src_sorted_v, minlength=n_levels)
    starts = np.concatenate([[0], np.cumsum(counts)])
    src_chunks, j2_chunks, e_chunks, dt_chunks = [], [], [], []
    for j in np.unique(src_sorted_v):
        pairs = j_arr == j
        if not pairs.any():
            continue
        labels_here = order_v[starts[j]: starts[j + 1]]
        succ = j2_arr[pairs]
        src_chunks.append(np.repeat(labels_here, succ.size))
        j2_chunks.append(np.tile(succ, labels_here.size))
        e_chunks.append(np.tile(e_arr[pairs], labels_here.size))
        dt_chunks.append(np.tile(dt_arr[pairs], labels_here.size))
    if not src_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0), np.empty(0)
    src = np.concatenate(src_chunks)
    cj2 = np.concatenate(j2_chunks)
    cc = np.concatenate(e_chunks) + lab_c[src]
    ct = np.concatenate(dt_chunks) + lab_t[src]
    return src, cj2, cc, ct


def select_labels(
    cj2: np.ndarray,
    cc: np.ndarray,
    ct: np.ndarray,
    start_time_s: float,
    t_bin_s: float,
    n_bins: int,
) -> np.ndarray:
    """Indices of the candidates surviving per-``(velocity, bin)`` selection.

    For every ``(successor velocity, time bin)`` slot BOTH the cheapest
    and the earliest candidate are kept: the cheapest slot drives energy
    optimality, the earliest preserves the fast time-frontier exactly so
    tight windows downstream stay reachable (a cheaper-but-later label
    can never displace the fastest lineage).
    """
    k2 = np.round((ct - start_time_s) / t_bin_s).astype(np.int64)
    tgt = cj2.astype(np.int64) * n_bins + k2
    sel_cheap = first_per_group(tgt, np.lexsort((ct, cc, tgt)))
    sel_fast = first_per_group(tgt, np.lexsort((cc, ct, tgt)))
    return np.unique(np.concatenate([sel_cheap, sel_fast]))


def first_per_group(groups: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Indices of the first element of each group under a given sort order.

    ``order`` must sort ``groups`` into contiguous runs (e.g. a lexsort
    whose primary key is ``groups``); the first element of each run is the
    winner under the secondary sort keys.
    """
    sorted_groups = groups[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = sorted_groups[1:] != sorted_groups[:-1]
    return order[first]
