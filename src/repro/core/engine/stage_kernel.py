"""The DP's inner stage relaxation as pure array kernels.

These functions are the computational core of
:meth:`repro.core.dp.DpSolver._solve`, hoisted out so the hot path can be
benchmarked, profiled and property-tested in isolation.  They operate
only on plain numpy arrays — no solver state, no road or vehicle objects
— which makes each call a pure function of its inputs.

A stage takes the surviving labels at route point ``i`` (velocity index,
exact arrival time, exact cost-to-come) plus the feasible transition
arrays of segment ``i`` (from the corridor artifacts) and produces the
candidate labels at point ``i + 1``; selection then thins the candidates
to one cheapest and one earliest survivor per ``(velocity, time-bin)``
slot.  The refactor is behavior-preserving: the operations and their
order are exactly those of the pre-split solver, so solutions are
bit-identical.

Batched variants (:func:`expand_stage_batch` / :func:`select_labels_batch`)
stack the label sets of ``B`` independent DP problems sharing one
corridor's transition arrays along a leading problem axis, so a fleet of
concurrent requests over the same ``corridor_digest`` solves as **one
numpy program** per stage instead of ``B`` interpreted loops.  Problem
identity travels with each label (``lab_b``); group keys in selection are
made disjoint across problems, and within every problem the candidate
ordering reproduces the serial kernels exactly — which is what keeps
batched solving bit-identical, per problem, to serial solving.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "expand_stage",
    "expand_stage_batch",
    "first_per_group",
    "select_labels",
    "select_labels_batch",
]


def expand_stage(
    lab_v: np.ndarray,
    lab_t: np.ndarray,
    lab_c: np.ndarray,
    j_arr: np.ndarray,
    j2_arr: np.ndarray,
    e_arr: np.ndarray,
    dt_arr: np.ndarray,
    n_levels: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand every (source label, feasible successor) combination.

    Args:
        lab_v: Velocity index of each surviving label at the stage entry.
        lab_t: Exact arrival time of each label (s).
        lab_c: Exact cost-to-come of each label (J).
        j_arr: Source velocity index of each feasible transition, sorted
            ascending (the row-major :func:`numpy.nonzero` order the
            corridor artifacts produce).
        j2_arr: Successor velocity index of each feasible transition.
        e_arr: Energy of each feasible transition (J).
        dt_arr: Traversal time of each feasible transition, including the
            departure dwell (s).
        n_levels: Size of the velocity grid.

    Returns:
        ``(src, cj2, cc, ct)``: for every candidate, the index of its
        source label, its successor velocity index, its cost-to-come and
        its arrival time.  All four are empty when no label has a
        feasible continuation (the caller decides how to fail).

    Candidates are ordered by source velocity (stable over label order),
    then by that velocity's transitions in CSR order — the same ragged
    gather as :func:`expand_stage_batch`, which replaced a per-velocity
    Python loop of ``repeat``/``tile`` chunks that dominated warm
    mid-route replans.  The candidate ordering (and every value) is
    bit-identical to the chunked implementation it replaced.
    """
    trans_count = np.bincount(j_arr, minlength=n_levels)
    trans_start = np.concatenate([[0], np.cumsum(trans_count)])
    order = np.argsort(lab_v, kind="stable")
    v_sorted = lab_v[order]
    counts_per_label = trans_count[v_sorted]
    total = int(counts_per_label.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0), np.empty(0)
    src = np.repeat(order, counts_per_label)
    # Ragged gather: candidate k of a label maps to the k-th transition of
    # that label's velocity in the CSR-ordered pair arrays.
    block_starts = np.concatenate([[0], np.cumsum(counts_per_label)[:-1]])
    t_idx = np.arange(total, dtype=np.int64)
    t_idx += np.repeat(trans_start[v_sorted] - block_starts, counts_per_label)
    cj2 = j2_arr[t_idx].astype(np.int64, copy=False)
    cc = e_arr[t_idx] + lab_c[src]
    ct = dt_arr[t_idx] + lab_t[src]
    return src, cj2, cc, ct


def select_labels(
    cj2: np.ndarray,
    cc: np.ndarray,
    ct: np.ndarray,
    start_time_s: float,
    t_bin_s: float,
    n_bins: int,
) -> np.ndarray:
    """Indices of the candidates surviving per-``(velocity, bin)`` selection.

    For every ``(successor velocity, time bin)`` slot BOTH the cheapest
    and the earliest candidate are kept: the cheapest slot drives energy
    optimality, the earliest preserves the fast time-frontier exactly so
    tight windows downstream stay reachable (a cheaper-but-later label
    can never displace the fastest lineage).
    """
    k2 = np.round((ct - start_time_s) / t_bin_s).astype(np.int64)
    tgt = cj2.astype(np.int64) * n_bins + k2
    return _cheapest_and_fastest_per_group(tgt, cc, ct)


def expand_stage_batch(
    lab_v: np.ndarray,
    lab_t: np.ndarray,
    lab_c: np.ndarray,
    lab_b: np.ndarray,
    j_arr: np.ndarray,
    j2_arr: np.ndarray,
    e_arr: np.ndarray,
    dt_arr: np.ndarray,
    n_levels: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``B`` problems' labels through one shared transition set.

    Args:
        lab_v: Velocity index of every surviving label, all problems
            concatenated.
        lab_t: Exact arrival time of each label (s).
        lab_c: Exact cost-to-come of each label (J).
        lab_b: Problem id of each label (non-decreasing).
        j_arr: Source velocity index of each feasible transition, sorted
            ascending (the row-major :func:`numpy.nonzero` order the
            corridor artifacts produce).
        j2_arr: Successor velocity index of each feasible transition.
        e_arr: Energy of each feasible transition (J).
        dt_arr: Traversal time of each feasible transition (s).
        n_levels: Size of the velocity grid.

    Returns:
        ``(src, cj2, cc, ct, cb)``: per candidate, the index of its source
        label, its successor velocity index, its cost-to-come, its arrival
        time and its problem id.  Candidates are blocked by problem, and
        within each problem they appear in exactly the order
        :func:`expand_stage` would have produced for that problem alone —
        stable-sorted by source velocity, then label order, then
        transition order — so downstream tie-breaking matches the serial
        kernel bit for bit.
    """
    trans_count = np.bincount(j_arr, minlength=n_levels)
    trans_start = np.concatenate([[0], np.cumsum(trans_count)])
    # Stable sort by (problem, velocity): within one problem this is the
    # serial kernel's stable argsort by velocity.
    order = np.argsort(lab_b.astype(np.int64) * n_levels + lab_v, kind="stable")
    v_sorted = lab_v[order]
    counts_per_label = trans_count[v_sorted]
    total = int(counts_per_label.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0), np.empty(0), empty.copy()
    src = np.repeat(order, counts_per_label)
    # Ragged gather: candidate k of a label maps to the k-th transition of
    # that label's velocity in the CSR-ordered pair arrays.
    block_starts = np.concatenate([[0], np.cumsum(counts_per_label)[:-1]])
    t_idx = np.arange(total, dtype=np.int64)
    t_idx += np.repeat(trans_start[v_sorted] - block_starts, counts_per_label)
    cj2 = j2_arr[t_idx].astype(np.int64, copy=False)
    cc = e_arr[t_idx] + lab_c[src]
    ct = dt_arr[t_idx] + lab_t[src]
    cb = lab_b[src]
    return src, cj2, cc, ct, cb


def select_labels_batch(
    cb: np.ndarray,
    cj2: np.ndarray,
    cc: np.ndarray,
    ct: np.ndarray,
    start_times: np.ndarray,
    t_bin_s: float,
    n_bins: int,
    n_levels: int,
) -> np.ndarray:
    """Batched per-``(problem, velocity, bin)`` survivor selection.

    The group key prepends each candidate's problem id, so problems never
    share a slot; each problem's time bins are measured from *its own*
    start time.  Within a problem the surviving index set — and its
    sorted order — equals what :func:`select_labels` returns for that
    problem alone.

    The key space is compacted to the stage's occupied bin range (a
    bijective remap of the serial ``v * n_bins + k2`` key, so the
    partition is unchanged) to keep the selection's dense scatter tables
    small and cache-resident.  The one case where the serial key is *not*
    injective — a horizon-edge rounding that lands ``k2 == n_bins`` and
    merges into the next velocity's bin 0 — falls back to the exact
    serial key layout so even that merge is reproduced per problem.
    """
    k2 = np.round((ct - start_times[cb]) / t_bin_s).astype(np.int64)
    k2_min = int(k2.min())
    k2_max = int(k2.max())
    if k2_max >= n_bins:
        tgt = cb * (n_levels * n_bins + n_bins + 1) + cj2 * n_bins + k2
    else:
        span = k2_max - k2_min + 1
        tgt = (cb * n_levels + cj2) * span + (k2 - k2_min)
    return _cheapest_and_fastest_per_group(tgt, cc, ct)


def _cheapest_and_fastest_per_group(
    tgt: np.ndarray, cc: np.ndarray, ct: np.ndarray
) -> np.ndarray:
    """Per group: the index minimizing ``(cc, ct, index)`` and ``(ct, cc, index)``.

    Equivalent to two ``lexsort`` + :func:`first_per_group` passes over
    the candidates, but sort-free: the group keys are small dense
    integers, so each winner is found by three O(n) scatter-min sweeps
    (:func:`numpy.minimum.at` into a dense table) — min primary, then min
    secondary among primary ties, then min index among remaining ties.
    That is the same lexicographic minimum the stable lexsort's first-
    per-group picks, so the winner set is identical; the two three-key
    float lexsorts were the solver's dominant cost.
    """
    n = tgt.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    n_dense = int(tgt.max()) + 1

    def first_min(primary: np.ndarray, secondary: np.ndarray) -> np.ndarray:
        best_p = np.full(n_dense, np.inf)
        np.minimum.at(best_p, tgt, primary)
        pos = np.flatnonzero(primary == best_p[tgt])
        # The later sweeps run on the primary-tie subset only — one
        # candidate per group in the common tie-free case.
        tgt_p = tgt[pos]
        sec_p = secondary[pos]
        best_s = np.full(n_dense, np.inf)
        np.minimum.at(best_s, tgt_p, sec_p)
        on_s = sec_p == best_s[tgt_p]
        idx = pos[on_s]
        winner = np.full(n_dense, n, dtype=np.int64)
        np.minimum.at(winner, tgt_p[on_s], idx)
        return winner

    cheap = first_min(cc, ct)
    fast = first_min(ct, cc)
    present = cheap < n  # both tables populate exactly the same groups
    cheap = cheap[present]
    fast = fast[present]
    # A candidate belongs to exactly one group, so winners are already
    # distinct; the union is cheap plus the differing fast winners.
    return np.sort(np.concatenate([cheap, fast[fast != cheap]]))


def first_per_group(groups: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Indices of the first element of each group under a given sort order.

    ``order`` must sort ``groups`` into contiguous runs (e.g. a lexsort
    whose primary key is ``groups``); the first element of each run is the
    winner under the secondary sort keys.
    """
    sorted_groups = groups[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = sorted_groups[1:] != sorted_groups[:-1]
    return order[first]
