"""The shared planning-engine layer: precompute once, solve everywhere.

The paper's DP prices every ``(segment, v, v')`` transition from static
corridor data; this package separates that *offline corridor
precomputation* from the *online solve* so the whole planning stack —
cloud service, degradation-ladder tiers, coarse-to-fine refiner, closed
loop and fleet sweeps — shares one build instead of each repeating it.

Public surface:

* :class:`~repro.core.engine.artifacts.CorridorArtifacts` — the
  immutable precomputed bundle (velocity grid, Eq. 9 energy tables,
  feasibility masks, dwells, min-time-to-go, feasible transition pairs),
  built once per distinct ``(road, vehicle, grid)`` input set.
* :func:`~repro.core.engine.artifacts.corridor_digest` — the stable
  blake2b content digest those inputs key under.
* :class:`~repro.core.engine.store.ArtifactStore` — a bounded LRU of
  artifact sets keyed by digest, with hit/miss/eviction counters.
* :mod:`~repro.core.engine.stage_kernel` — the DP's inner stage
  relaxation as pure array kernels (:func:`expand_stage`,
  :func:`select_labels`), benchmarkable in isolation.
"""

from repro.core.engine.artifacts import CorridorArtifacts, corridor_digest
from repro.core.engine.stage_kernel import expand_stage, first_per_group, select_labels
from repro.core.engine.store import ArtifactStore, StoreStats

__all__ = [
    "ArtifactStore",
    "CorridorArtifacts",
    "StoreStats",
    "corridor_digest",
    "expand_stage",
    "first_per_group",
    "select_labels",
]
