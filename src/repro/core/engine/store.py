"""A bounded, content-addressed LRU store of corridor artifacts.

One :class:`ArtifactStore` shared across a planning stack collapses the
repeated corridor precomputation the stack used to do: the cloud
planner's replans, every degradation-ladder local tier, the coarse-to-
fine refiner's per-solve fine pass and each fleet vehicle all key the
same ``(road, vehicle, grid)`` inputs to the same digest, so the first
build pays and everyone after hits.

The store is deliberately small and explicit: a capacity-bounded LRU
keyed by :func:`~repro.core.engine.artifacts.corridor_digest`, with
hit/miss/eviction counters exported through :mod:`repro.obs`
(``engine.store.hits`` / ``.misses`` / ``.evictions``) and snapshotted
by :meth:`ArtifactStore.stats` for result summaries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.core.engine.artifacts import CorridorArtifacts, corridor_digest
from repro.errors import ConfigurationError
from repro.route.road import RoadSegment
from repro.vehicle.environment import EnvironmentConditions
from repro.vehicle.params import VehicleParams

__all__ = ["ArtifactStore", "StoreStats"]


@dataclass(frozen=True)
class StoreStats:
    """Immutable snapshot of one store's counters.

    Attributes:
        hits: Lookups answered from the store.
        misses: Lookups that had to build (each one also inserts).
        evictions: Artifacts dropped to respect the capacity bound.
        size: Artifacts currently held.
        capacity: The bound.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get_or_build`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction of all lookups; 0 when the store was never asked."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        return (
            f"{self.hits} hit(s), {self.misses} build(s), "
            f"{self.evictions} eviction(s), hit rate {self.hit_rate:.2f}"
        )


class ArtifactStore:
    """Content-addressed LRU cache of :class:`CorridorArtifacts`.

    Args:
        capacity: Maximum number of artifact sets held at once.  Sizing
            guidance: each entry costs
            :attr:`CorridorArtifacts.nbytes` (tens of MB at the default
            US-25 resolution, ~1 MB at coarse test grids); a production
            service fronting a handful of corridors x grid resolutions
            rarely needs more than 8-16.
        name: Metric namespace for the observability counters
            (``<name>.hits`` / ``.misses`` / ``.evictions``).  The
            default preserves the historical ``engine.store.*`` names; a
            corridor shard passes e.g. ``engine.store.us25`` so
            ``--metrics`` output breaks down by corridor.

    Thread-safe: lookups and insertions hold an internal lock (builds
    run outside it, so two threads racing on a cold key may both build —
    the artifacts are immutable, so the duplicate work is harmless and
    last-writer-wins).
    """

    def __init__(self, capacity: int = 8, name: str = "engine.store") -> None:
        if capacity < 1:
            raise ConfigurationError(f"store capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.name = str(name)
        self._entries: "OrderedDict[str, CorridorArtifacts]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> Optional[CorridorArtifacts]:
        """The artifacts under a digest (refreshing recency), else ``None``.

        A raw ``get`` does not touch the hit/miss counters — only
        :meth:`get_or_build` lookups are serving decisions.
        """
        with self._lock:
            artifacts = self._entries.get(digest)
            if artifacts is not None:
                self._entries.move_to_end(digest)
            return artifacts

    def put(self, artifacts: CorridorArtifacts) -> None:
        """Insert (or refresh) one artifact set, evicting LRU overflow."""
        with self._lock:
            self._entries[artifacts.digest] = artifacts
            self._entries.move_to_end(artifacts.digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                obs.get_registry().inc(f"{self.name}.evictions")

    def get_or_build(
        self,
        road: RoadSegment,
        vehicle: Optional[VehicleParams] = None,
        *,
        v_step_ms: float = 0.5,
        s_step_m: float = 10.0,
        stop_dwell_s: float = 2.0,
        enforce_min_speed: bool = True,
        environment: Optional[EnvironmentConditions] = None,
    ) -> CorridorArtifacts:
        """The artifacts for these inputs: served warm, or built and kept.

        This is the one call every consumer goes through; identical
        inputs across consumers resolve to the same digest and therefore
        the same (single) build.  The environment is part of the digest,
        so two scenarios over one road can never serve each other's
        tables (``None`` keys as — and shares builds with — nominal).
        """
        vehicle = vehicle if vehicle is not None else VehicleParams()
        digest = corridor_digest(
            road,
            vehicle,
            v_step_ms=v_step_ms,
            s_step_m=s_step_m,
            stop_dwell_s=stop_dwell_s,
            enforce_min_speed=enforce_min_speed,
            environment=environment,
        )
        registry = obs.get_registry()
        cached = self.get(digest)
        if cached is not None:
            with self._lock:
                self._hits += 1
            registry.inc(f"{self.name}.hits")
            return cached
        with self._lock:
            self._misses += 1
        registry.inc(f"{self.name}.misses")
        with registry.span("engine.artifacts.build") as span:
            artifacts = CorridorArtifacts.build(
                road,
                vehicle,
                v_step_ms=v_step_ms,
                s_step_m=s_step_m,
                stop_dwell_s=stop_dwell_s,
                enforce_min_speed=enforce_min_speed,
                environment=environment,
            )
            span.add(segments=artifacts.n_segments, bytes=artifacts.nbytes)
        self.put(artifacts)
        return artifacts

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> StoreStats:
        """An immutable snapshot of the counters."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
