"""Shared-memory corridor artifacts for process-parallel serving.

A :class:`~repro.core.engine.artifacts.CorridorArtifacts` build is tens
of megabytes of read-only numpy arrays.  The process-parallel dispatch
backend (:mod:`repro.cloud.procpool`) wants one copy of those arrays
per *machine*, not per worker process: :class:`SharedCorridor` exports
every array into a single :class:`multiprocessing.shared_memory.SharedMemory`
block, and workers attach read-only views over the same physical pages —
no rebuild, no copy, regardless of the multiprocessing start method.

The export is lossless: an attached :class:`CorridorArtifacts` carries
the same digest and bit-identical arrays as the original, so a solver
constructed over it produces bit-identical solutions (the store digest
check still applies).  Attached arrays are marked read-only; nothing in
the solve path mutates artifacts, and the flag turns an accidental
write into an error instead of cross-process corruption.

Lifecycle: the exporting (parent) process owns the block and must call
:meth:`SharedCorridor.unlink` when serving stops; workers just
:meth:`close` their attachment.  Attached processes unregister the block
from the ``resource_tracker`` so a worker's exit does not tear the
memory out from under its siblings.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.cost import SegmentEnergyTable
from repro.core.engine.artifacts import CorridorArtifacts
from repro.vehicle.efficiency import InterpolatedEfficiencyMap

__all__ = ["SharedCorridor"]

#: Offset alignment for each array inside the block (cache-line sized).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class _ArraySlot:
    """Where one array lives inside the shared block."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]


class SharedCorridor:
    """One corridor-artifact build mapped into shared memory.

    Build with :meth:`export` in the parent, ship :attr:`spec` (a plain
    picklable dict) to the workers, and :meth:`attach` there.  Both
    sides expose :meth:`artifacts` — a :class:`CorridorArtifacts` whose
    arrays are zero-copy views into the shared block.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: dict,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._artifacts: Optional[CorridorArtifacts] = None

    # ------------------------------------------------------------------
    # Export (parent side)
    # ------------------------------------------------------------------
    @classmethod
    def export(cls, artifacts: CorridorArtifacts) -> "SharedCorridor":
        """Copy one build's arrays into a fresh shared-memory block."""
        arrays = dict(_iter_arrays(artifacts))
        slots: Dict[str, _ArraySlot] = {}
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            arrays[name] = arr
            offset = _aligned(offset)
            slots[name] = _ArraySlot(offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for name, arr in arrays.items():
            slot = slots[name]
            view = np.ndarray(
                slot.shape, dtype=slot.dtype, buffer=shm.buf, offset=slot.offset
            )
            view[...] = arr
        vehicle = artifacts.vehicle
        emap = vehicle.efficiency_map
        effmap_rated_power_w = None
        if isinstance(emap, InterpolatedEfficiencyMap):
            # The map's grid travels as shared slots (see _iter_arrays);
            # ship the vehicle map-less and rebuild the map from the
            # views on attach, so the pickled spec stays small and the
            # grid is one copy per machine like every other array.
            effmap_rated_power_w = emap.rated_power_w
            vehicle = dataclasses.replace(vehicle, efficiency_map=None)
        spec = {
            "shm_name": shm.name,
            "digest": artifacts.digest,
            "road": artifacts.road,
            "vehicle": vehicle,
            "environment": artifacts.environment,
            "effmap_rated_power_w": effmap_rated_power_w,
            "v_step_ms": artifacts.v_step_ms,
            "s_step_m": artifacts.s_step_m,
            "stop_dwell_s": artifacts.stop_dwell_s,
            "enforce_min_speed": artifacts.enforce_min_speed,
            "n_segments": artifacts.n_segments,
            "table_distances": [t.distance_m for t in artifacts.tables],
            "slots": slots,
        }
        shared = cls(shm, spec, owner=True)
        # The exporter reuses its own original artifacts (same arrays,
        # already private pages) — views are for attachers.
        shared._artifacts = artifacts
        return shared

    # ------------------------------------------------------------------
    # Attach (worker side)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, spec: dict) -> "SharedCorridor":
        """Map an exported block (by name) and rebuild the artifact views."""
        shm = shared_memory.SharedMemory(name=spec["shm_name"])
        # The tracker would unlink the block when *this* process exits,
        # killing it for every sibling worker; only the exporting parent
        # owns the block's lifetime.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # noqa: BLE001 - best-effort, platform-dependent
            pass
        return cls(shm, spec, owner=False)

    def _view(self, name: str) -> np.ndarray:
        slot: _ArraySlot = self.spec["slots"][name]
        view = np.ndarray(
            slot.shape, dtype=slot.dtype, buffer=self._shm.buf, offset=slot.offset
        )
        view.flags.writeable = False
        return view

    def artifacts(self) -> CorridorArtifacts:
        """The artifact bundle over shared views (built once, cached)."""
        if self._artifacts is not None:
            return self._artifacts
        spec = self.spec
        n_segments = spec["n_segments"]
        tables = tuple(
            SegmentEnergyTable.from_arrays(
                distance_m=spec["table_distances"][i],
                energy_j=self._view(f"table{i}.energy_j"),
                travel_s=self._view(f"table{i}.travel_s"),
                feasible=self._view(f"table{i}.feasible"),
            )
            for i in range(n_segments)
        )
        pairs = tuple(
            (
                self._view(f"pair{i}.j"),
                self._view(f"pair{i}.j2"),
                self._view(f"pair{i}.e"),
                self._view(f"pair{i}.dt"),
            )
            for i in range(n_segments)
        )
        vehicle = spec["vehicle"]
        if spec.get("effmap_rated_power_w") is not None:
            vehicle = dataclasses.replace(
                vehicle,
                efficiency_map=InterpolatedEfficiencyMap.from_arrays(
                    speeds_ms=self._view("effmap.speeds"),
                    loads=self._view("effmap.loads"),
                    eta_grid=self._view("effmap.eta"),
                    rated_power_w=spec["effmap_rated_power_w"],
                ),
            )
        self._artifacts = CorridorArtifacts(
            digest=spec["digest"],
            road=spec["road"],
            vehicle=vehicle,
            environment=spec["environment"],
            v_step_ms=spec["v_step_ms"],
            s_step_m=spec["s_step_m"],
            stop_dwell_s=spec["stop_dwell_s"],
            enforce_min_speed=spec["enforce_min_speed"],
            positions=self._view("positions"),
            v_grid=self._view("v_grid"),
            allowed=self._view("allowed"),
            dwell_at=self._view("dwell_at"),
            tables=tables,
            min_time_to_go=self._view("min_time_to_go"),
            pairs=pairs,
        )
        return self._artifacts

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes."""
        return self._shm.size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        # Views into the buffer must be released before close(); drop the
        # cached artifact bundle first so attachers can close cleanly.
        if not self._owner:
            self._artifacts = None
        try:
            self._shm.close()
        except BufferError:
            # Live views still reference the buffer (e.g. a solver is
            # still holding the artifacts); leave the mapping open —
            # process exit reclaims it.
            pass

    def unlink(self) -> None:
        """Destroy the block (exporter only; idempotent)."""
        self.close()
        if self._owner:
            # Under ``fork`` the workers shared this process's resource
            # tracker, and their attach-time unregister (see
            # :meth:`attach`) removed the export's registration with it;
            # re-balance so the tracker's own unregister during
            # ``unlink()`` finds the entry instead of logging a
            # ``KeyError``.  A duplicate registration is a set no-op.
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # noqa: BLE001 - best-effort, tracker may be gone
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedCorridor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink() if self._owner else self.close()


def _iter_arrays(artifacts: CorridorArtifacts):
    """Every array of the bundle under a stable slot name."""
    yield "positions", artifacts.positions
    yield "v_grid", artifacts.v_grid
    yield "allowed", artifacts.allowed
    yield "dwell_at", artifacts.dwell_at
    yield "min_time_to_go", artifacts.min_time_to_go
    for i, table in enumerate(artifacts.tables):
        yield f"table{i}.energy_j", table.energy_j
        yield f"table{i}.travel_s", table.travel_s
        yield f"table{i}.feasible", table.feasible
    for i, (j_arr, j2_arr, e_arr, dt_arr) in enumerate(artifacts.pairs):
        yield f"pair{i}.j", j_arr
        yield f"pair{i}.j2", j2_arr
        yield f"pair{i}.e", e_arr
        yield f"pair{i}.dt", dt_arr
    emap = artifacts.vehicle.efficiency_map
    if isinstance(emap, InterpolatedEfficiencyMap):
        yield "effmap.speeds", emap.speed_array
        yield "effmap.loads", emap.load_array
        yield "effmap.eta", emap.eta_array
