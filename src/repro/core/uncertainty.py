"""Chance-constrained queue windows from a forecast-residual model.

The queue-aware planner trusts a *point* forecast of the queue-clearance
instant ``T_q``: the SAE's predicted arrival volume drives the QL model,
and the DP targets the resulting queue-free windows exactly.  A single
forecast miss shifts the true window and turns "arrive at green" into a
hard stop at red.  The related work plans against *distributions*
instead (Bae et al., arXiv:1903.08784); this module does the same
without touching the DP machinery:

1. :class:`ResidualModel` — an empirical distribution of window-timing
   error (seconds), fitted from the SAE predictor's held-out volume
   residuals propagated through the QL model's window-start sensitivity
   (:func:`window_start_sensitivity`), optionally convolved with an
   operator-calibrated signal-timing drift
   (:meth:`ResidualModel.with_timing_noise`).
2. The **chance-level → margin transform**: requiring the arrival to
   land inside the *true* window with probability at least ``p`` is,
   for a window whose placement error is the residual distribution
   ``E``, equivalent to arriving at least ``m(p)`` inside the forecast
   window where ``m(p)`` is the ``p``-quantile of ``E`` —
   a deterministic extra shrink margin.  Levels at or below one half
   express no more confidence than the point forecast, so
   ``m(p ≤ 0.5) = 0`` exactly and the chance-constrained plan is
   bit-identical to the point-forecast plan.
3. :class:`ChanceConstrainedPlanner` — the queue-aware planner with the
   margin applied on top of the config's quantization margin, via the
   exact same :meth:`~repro.core.cost.WindowSet.shrunk` path every
   planner already uses.  Stage kernels, batched solving and artifact
   digests are untouched: the uncertainty lives entirely in the
   constraint windows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cost import WindowSet
from repro.core.dp import TimeWindowConstraint
from repro.core.engine import ArtifactStore
from repro.core.planner import ArrivalRates, PlannerConfig, QueueAwareDpPlanner
from repro.errors import ConfigurationError, PredictionError
from repro.route.road import RoadSegment, SignalSite
from repro.signal.queue import QueueLengthModel
from repro.vehicle.params import VehicleParams

__all__ = [
    "ChanceConstrainedPlanner",
    "ResidualModel",
    "window_start_sensitivity",
]


class ResidualModel:
    """Empirical distribution of queue-window timing error (seconds).

    Samples are *signed* placement errors of the forecast window
    (positive = the true window opens later than forecast, the failure
    that strands the EV behind a still-discharging queue).  The model
    debiases by the empirical median at construction: any systematic
    bias belongs in the point forecast, the residual model only carries
    the spread around it.  That makes ``quantile(0.5) == 0`` by
    construction, which is what pins the ``p = 0.5`` chance level to a
    zero margin and hence to plans bit-identical to the point-forecast
    planner.

    Args:
        samples_s: Signed timing-error samples (s); at least one, all
            finite.

    Attributes:
        samples_s: The sorted, median-centered samples.
        bias_s: The median removed at construction.
    """

    def __init__(self, samples_s) -> None:
        samples = np.sort(np.asarray(samples_s, dtype=float).ravel())
        if samples.size == 0:
            raise ConfigurationError("residual model needs at least one sample")
        if not np.all(np.isfinite(samples)):
            raise ConfigurationError("residual samples must be finite")
        self.bias_s = float(np.median(samples))
        self.samples_s = samples - self.bias_s

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_volume_errors(
        cls, errors_vph, sensitivity_s_per_vph: float
    ) -> "ResidualModel":
        """Build from volume-forecast errors via a window sensitivity.

        Args:
            errors_vph: Signed forecast errors ``predicted − actual``
                (vehicles/hour), e.g. the SAE's held-out residuals.
            sensitivity_s_per_vph: Shift of the queue-free window start
                per veh/h of arrival-volume error (s), from
                :func:`window_start_sensitivity`.  An *over*-forecast
                volume predicts a *later* clearance, so the true window
                opens earlier than planned (harmless); an under-forecast
                opens it later (the miss).  The sign flip is applied
                here: window error = ``−sensitivity × volume error``.
        """
        if sensitivity_s_per_vph < 0:
            raise ConfigurationError(
                f"sensitivity must be >= 0, got {sensitivity_s_per_vph}"
            )
        errors = np.asarray(errors_vph, dtype=float).ravel()
        return cls(-sensitivity_s_per_vph * errors)

    @classmethod
    def from_predictor(
        cls, predictor, sensitivity_s_per_vph: float
    ) -> "ResidualModel":
        """Build from a calibrated :class:`~repro.traffic.sae.SAEPredictor`.

        Raises:
            PredictionError: The predictor has no recorded residuals
                (call :meth:`~repro.traffic.sae.SAEPredictor.calibrate`,
                or load its checkpoint with ``require_calibration=True``).
        """
        residuals = getattr(predictor, "residuals_vph_", None)
        if residuals is None:
            raise PredictionError(
                "predictor carries no held-out residuals; calibrate it first"
            )
        return cls.from_volume_errors(residuals, sensitivity_s_per_vph)

    def with_timing_noise(self, max_drift_s: float, levels: int = 21) -> "ResidualModel":
        """Convolve with a bounded signal-timing drift.

        Forecast residuals cover the *volume* error; intersection
        controllers additionally run their cycles shifted by clock skew
        (the :class:`~repro.resilience.faults.SignalDriftModel` failure
        class).  The two sources are independent, so the combined
        distribution is their convolution — computed empirically as the
        outer sum of the residual samples with a uniform drift grid over
        ``[-max_drift_s, +max_drift_s]``.

        Args:
            max_drift_s: Largest absolute timing shift to model (s);
                ``0`` returns an equivalent model unchanged.
            levels: Grid resolution of the drift distribution.
        """
        if max_drift_s < 0:
            raise ConfigurationError(f"drift must be >= 0, got {max_drift_s}")
        if max_drift_s == 0.0:
            return ResidualModel(self.samples_s)
        if levels < 2:
            raise ConfigurationError(f"need >= 2 drift levels, got {levels}")
        drift = np.linspace(-max_drift_s, max_drift_s, int(levels))
        combined = (self.samples_s[:, None] + drift[None, :]).ravel()
        return ResidualModel(combined)

    # ------------------------------------------------------------------
    # Distribution queries
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return int(self.samples_s.size)

    @property
    def std_s(self) -> float:
        """Standard deviation of the centered residuals (s)."""
        return float(np.std(self.samples_s))

    def quantile(self, q: float) -> float:
        """The empirical ``q``-quantile of the centered residuals (s)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.samples_s, q))

    def margin_for(self, chance_level: float) -> float:
        """The chance-level → margin transform: ``m(p)`` in seconds.

        Arriving at least ``m`` inside the forecast window guarantees an
        in-window arrival whenever the placement error is at most ``m``,
        so ``P(hit) ≥ P(E ≤ m)``; requiring that to be at least ``p``
        gives ``m(p) = quantile(p)``.  Levels at or below ``0.5`` return
        exactly ``0.0`` — the coin-flip level trusts the (median-
        debiased) point forecast, keeping those plans bit-identical to
        the point-forecast planner's.

        Args:
            chance_level: Required in-window arrival probability ``p``,
                in ``(0, 1)``.
        """
        if not 0.0 < chance_level < 1.0:
            raise ConfigurationError(
                f"chance level must be in (0, 1), got {chance_level}"
            )
        if chance_level <= 0.5:
            return 0.0
        return max(self.quantile(chance_level), 0.0)


def window_start_sensitivity(
    queue_model: QueueLengthModel,
    arrival_rate_vps: float,
    delta_vps: float = 1e-4,
) -> float:
    """Shift of the queue-free window start per unit arrival rate.

    Central finite difference of the QL model's in-cycle clearance
    instant with respect to the arrival rate, in seconds per (veh/s).
    Divide by 3600 for the per-veh/h sensitivity the SAE residuals need.
    Returns ``0.0`` when either perturbed rate leaves no queue-free
    window in the cycle (the saturated regime — there is no window whose
    start could shift).
    """
    if arrival_rate_vps < 0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate_vps}")
    if delta_vps <= 0:
        raise ConfigurationError(f"finite-difference step must be > 0, got {delta_vps}")
    lo_rate = max(arrival_rate_vps - delta_vps, 0.0)
    hi_rate = arrival_rate_vps + delta_vps
    lo = queue_model.empty_window(lo_rate)
    hi = queue_model.empty_window(hi_rate)
    if lo is None or hi is None:
        return 0.0
    return float((hi[0] - lo[0]) / (hi_rate - lo_rate))


class ChanceConstrainedPlanner(QueueAwareDpPlanner):
    """Queue-aware DP whose arrival windows absorb forecast uncertainty.

    Identical to :class:`~repro.core.planner.QueueAwareDpPlanner` except
    that every queue-free window is shrunk by the residual model's
    chance margin *in addition to* the config's quantization margin —
    the deterministic transform of the module docstring.  At
    ``chance_level ≤ 0.5`` the margin is exactly zero and plans are
    bit-identical to the point-forecast planner's; shrunk windows that
    collapse disappear, so an over-tight chance level degrades to
    infeasibility (and the ladder's lower tiers), never to a wrong plan.

    Args:
        road: Corridor (as for the base planner).
        arrival_rates: Point forecast of the arrival rate(s).
        residuals: Window-timing error distribution.
        chance_level: Required in-window arrival probability ``p``.
        vehicle: EV parameters (paper defaults when ``None``).
        config: Discretization settings.
        store: Optional shared artifact store.
    """

    def __init__(
        self,
        road: RoadSegment,
        arrival_rates: ArrivalRates,
        residuals: ResidualModel,
        chance_level: float = 0.9,
        vehicle: Optional[VehicleParams] = None,
        config: Optional[PlannerConfig] = None,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        super().__init__(
            road, arrival_rates, vehicle=vehicle, config=config, store=store,
            environment=environment,
        )
        if not 0.0 < chance_level < 1.0:
            raise ConfigurationError(
                f"chance level must be in (0, 1), got {chance_level}"
            )
        self.residuals = residuals
        self.chance_level = float(chance_level)

    @property
    def chance_margin_s(self) -> float:
        """The extra shrink applied to every queue-free window (s)."""
        return self.residuals.margin_for(self.chance_level)

    def _constraint_from_windows(
        self, site: SignalSite, windows: WindowSet
    ) -> TimeWindowConstraint:
        return TimeWindowConstraint(
            position_m=site.position_m,
            windows=windows.shrunk(self.config.window_margin_s + self.chance_margin_s),
            mode=self.config.constraint_mode,
            penalty_j=self.config.penalty_j,
        )
