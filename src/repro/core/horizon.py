"""Receding-horizon (MPC-style) replanning over warm corridor artifacts.

The full-horizon DP plans the whole corridor once and the closed-loop
driver replans only when the drive diverges.  Under forecast uncertainty
that is brittle: a drifted signal or a stale volume forecast is only
discovered at the stop bar.  The MPC discipline replans *every cycle*
from the current state, so each plan only has to be right about the near
future — the far windows are re-forecast before the EV reaches them.

:class:`RecedingHorizonPlanner` wraps any
:class:`~repro.core.planner.DpPlannerBase` (typically the
chance-constrained planner from :mod:`repro.core.uncertainty`) and adds
two things:

* **Optional constraint truncation.**  With ``lookahead_s`` set, a
  replan only carries the signal constraints optimistically reachable
  within the lookahead, measured by the corridor artifacts'
  ``min_time_to_go`` bound — an admissible estimate, so a constraint is
  only dropped when the EV *cannot* reach it inside the lookahead even
  driving flat out.  Far windows are re-imposed by later cycles, which
  is exactly when their forecasts are fresh.  With the default
  ``lookahead_s=None`` nothing is truncated and every plan is
  bit-identical to the inner planner's.
* **Typed cycle failure.**  A replan that comes back infeasible retries
  as a minimum-time solve (dropping the energy budget, keeping the
  windows); if that also fails, the cycle raises
  :class:`~repro.errors.PlanningFailedError` so the caller's policy
  applies — the degradation ladder falls through its tiers and the
  closed-loop driver keeps the previous (still roughly right) command.
* **Opt-in penalty fallback** (``soften_infeasible=True``).  On roads
  with a minimum flow speed a hard cycle can be *phase-infeasible*: the
  clock phase puts the next queue-free window just past the latest
  reachable arrival (the EV cannot dawdle below ``v_min``), so the hard
  program has no solution at any budget.  The fallback re-solves with
  the windows softened into penalties, targeting every window it can
  make and eating the penalty on the one it cannot.  This is for
  *unsupervised, direct* serving where the alternative is an error to
  the vehicle.  It stays off by default because in the supervised
  ladder stack it is counterproductive twice over: the safety
  supervisor rejects out-of-window plans anyway, and a typed failure
  there lets the driver keep its previous command — measured across
  the drift sweep, strictly fewer missed windows than following
  penalty or queue-blind fallback plans.

The wrapper delegates the full planner surface the serving stack uses
(``road``/``vehicle``/``config``/``store``/``solver``,
``signal_constraints``, ``plan_batch``, ``min_trip_time``,
``min_trip_time_batch``), so it can be dropped into
:class:`~repro.cloud.service.CloudPlannerService` unchanged — mid-route
MPC cycles then ride the warm-artifact replan path end to end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dp import DpSolution, TimeWindowConstraint
from repro.core.planner import DpPlannerBase
from repro.errors import (
    ConfigurationError,
    InfeasibleProblemError,
    PlanningFailedError,
)

__all__ = ["RecedingHorizonPlanner"]


class RecedingHorizonPlanner:
    """MPC-style wrapper: replan every cycle, optionally truncated.

    Args:
        inner: The planner whose constraints and solver do the work.
        lookahead_s: Optimistic-reachability window for replan
            constraints (s); ``None`` keeps every constraint and makes
            the wrapper's plans bit-identical to ``inner``'s.
        cycle_s: The intended replanning period (s).  The wrapper does
            not schedule itself — the closed-loop driver owns the clock —
            but tiers and experiments read this to drive the MPC cadence.
        soften_infeasible: Retry a doubly-infeasible cycle with the
            windows softened into penalties instead of failing typed
            (see the module docstring for when this is and is not the
            right policy).  Off by default.
    """

    def __init__(
        self,
        inner: DpPlannerBase,
        lookahead_s: Optional[float] = None,
        cycle_s: float = 10.0,
        soften_infeasible: bool = False,
    ) -> None:
        if lookahead_s is not None and lookahead_s <= 0:
            raise ConfigurationError(f"lookahead must be > 0 s, got {lookahead_s}")
        if cycle_s <= 0:
            raise ConfigurationError(f"cycle must be > 0 s, got {cycle_s}")
        self.inner = inner
        self.lookahead_s = None if lookahead_s is None else float(lookahead_s)
        self.cycle_s = float(cycle_s)
        self.soften_infeasible = bool(soften_infeasible)

    # ------------------------------------------------------------------
    # Delegated surface (what CloudPlannerService touches)
    # ------------------------------------------------------------------
    @property
    def road(self):
        return self.inner.road

    @property
    def vehicle(self):
        return self.inner.vehicle

    @property
    def config(self):
        return self.inner.config

    @property
    def store(self):
        return self.inner.store

    @property
    def solver(self):
        return self.inner.solver

    def signal_constraints(
        self, start_time_s: float
    ) -> Sequence[TimeWindowConstraint]:
        """The inner planner's *full* constraint set (no truncation).

        Service-side plan revalidation must see every window a cached
        profile crosses, so truncation only applies to :meth:`replan`.
        """
        return self.inner.signal_constraints(start_time_s)

    def plan(
        self,
        start_time_s: float = 0.0,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
    ) -> DpSolution:
        """The departure plan: full horizon, identical to ``inner.plan``."""
        return self.inner.plan(
            start_time_s=start_time_s,
            max_trip_time_s=max_trip_time_s,
            minimize=minimize,
        )

    def plan_batch(
        self,
        specs: Sequence[Tuple[float, Optional[float]]],
        minimize: str = "energy",
    ) -> List[Union[DpSolution, InfeasibleProblemError]]:
        return self.inner.plan_batch(specs, minimize=minimize)

    def min_trip_time(self, start_time_s: float = 0.0) -> float:
        return self.inner.min_trip_time(start_time_s=start_time_s)

    def min_trip_time_batch(
        self, departures: Sequence[float]
    ) -> List[Union[float, InfeasibleProblemError]]:
        return self.inner.min_trip_time_batch(departures)

    # ------------------------------------------------------------------
    # The MPC cycle
    # ------------------------------------------------------------------
    def reachable_within_lookahead(
        self, position_m: float, constraint_position_m: float
    ) -> bool:
        """Whether a constraint is optimistically reachable this cycle.

        Uses the artifacts' ``min_time_to_go`` lower bound: the fastest
        possible travel time between the two route points is
        ``mtg[here] - mtg[there]``.  Admissible, so ``False`` means the
        EV physically cannot arrive inside the lookahead.
        """
        if self.lookahead_s is None:
            return True
        positions = self.inner.solver.positions
        mtg = self.inner.solver._min_time_to_go
        i0 = int(np.searchsorted(positions, position_m, side="right")) - 1
        i0 = max(i0, 0)
        idx = min(
            int(np.searchsorted(positions, constraint_position_m)),
            len(positions) - 1,
        )
        return float(mtg[i0] - mtg[idx]) <= self.lookahead_s

    def _truncated(
        self, constraints: Sequence[TimeWindowConstraint], position_m: float
    ) -> List[TimeWindowConstraint]:
        return [
            c
            for c in constraints
            if c.position_m <= position_m
            or self.reachable_within_lookahead(position_m, c.position_m)
        ]

    @staticmethod
    def _softened(
        constraints: Sequence[TimeWindowConstraint],
    ) -> List[TimeWindowConstraint]:
        """The same windows as penalties instead of hard feasibility."""
        return [
            TimeWindowConstraint(
                position_m=c.position_m,
                windows=c.windows,
                mode="penalty",
                penalty_j=c.penalty_j,
            )
            for c in constraints
        ]

    def replan(
        self,
        position_m: float,
        speed_ms: float,
        time_s: float,
        max_trip_time_s: Optional[float] = None,
        minimize: str = "energy",
    ) -> DpSolution:
        """One MPC cycle: re-solve from the current state.

        Constraints behind the EV or beyond the lookahead are dropped
        (see :meth:`reachable_within_lookahead`).  An infeasible solve
        retries minimum-time at the full horizon; with
        ``soften_infeasible`` it then retries with the windows softened
        into penalties (phase-infeasibility on a ``v_min`` road, see
        the module docstring) before the cycle is declared failed with
        a typed :class:`~repro.errors.PlanningFailedError`.
        """
        constraints = self._truncated(
            self.inner.signal_constraints(time_s), position_m
        )
        try:
            return self.inner.solver.solve(
                constraints=constraints,
                start_time_s=time_s,
                max_trip_time_s=max_trip_time_s,
                minimize=minimize,
                start_state=(position_m, speed_ms),
            )
        except InfeasibleProblemError:
            pass
        try:
            return self.inner.solver.solve(
                constraints=constraints,
                start_time_s=time_s,
                max_trip_time_s=None,
                minimize="time",
                start_state=(position_m, speed_ms),
            )
        except InfeasibleProblemError as exc:
            hard_failure = exc
        ahead = [c for c in constraints if c.position_m > position_m]
        dead = not any(len(c.windows) > 0 for c in ahead)
        if not self.soften_infeasible or dead:
            # A collapsed forecast (every window set ahead empty) fails
            # typed even with softening: a penalty solve would just pay
            # the penalty everywhere and degenerate to unconstrained.
            raise PlanningFailedError(
                f"receding-horizon cycle at {position_m:.0f} m, t={time_s:.1f} s "
                f"found no feasible profile (even minimum-time): {hard_failure}",
                depart_s=time_s,
            ) from hard_failure
        for cap, objective in ((max_trip_time_s, minimize), (None, "time")):
            try:
                return self.inner.solver.solve(
                    constraints=self._softened(constraints),
                    start_time_s=time_s,
                    max_trip_time_s=cap,
                    minimize=objective,
                    start_state=(position_m, speed_ms),
                )
            except InfeasibleProblemError as exc:
                soft_failure = exc
        raise PlanningFailedError(
            f"receding-horizon cycle at {position_m:.0f} m, t={time_s:.1f} s "
            f"found no feasible profile even with softened windows: "
            f"{soft_failure}",
            depart_s=time_s,
        ) from soft_failure
