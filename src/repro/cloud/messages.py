"""Request/response records of the vehicular-cloud planning service."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError
from repro.guard.contracts import validate_plan_request

#: Corridor served when a request does not name one.  Version-1 wire
#: clients predate ``corridor_id`` entirely; their requests decode to
#: this corridor (or whatever the decoder was configured with), so old
#: vehicles keep planning against the original single arterial.
DEFAULT_CORRIDOR_ID = "us25"


@dataclass(frozen=True)
class PlanRequest:
    """A vehicle's upload: who it is, when and where it departs.

    A request with the default ``position_m``/``speed_ms`` asks for a
    full trip from the route source (cacheable by departure phase); a
    request carrying a mid-route state is the online replanning upload
    of the closed-loop driver and is served state-specifically.

    Attributes:
        vehicle_id: Requesting vehicle.
        depart_s: Intended departure time (absolute seconds); for a
            mid-route request this is "now" — the replan instant.
        max_trip_time_s: The driver's trip-time budget; ``None`` lets the
            service pick the fastest-feasible budget plus slack (full
            trips) or fall back to the solver horizon (replans).
        position_m: Current route position for a mid-route replan
            (0 = plan the whole trip).
        speed_ms: Current speed for a mid-route replan.
        minimize: Planning objective, ``"energy"`` or ``"time"``.
        corridor_id: The corridor this trip runs on — the routing key a
            :class:`~repro.cloud.router.PlanRouter` resolves to a
            corridor shard.  Defaults to :data:`DEFAULT_CORRIDOR_ID`, so
            single-corridor deployments never mention it.
    """

    vehicle_id: str
    depart_s: float
    max_trip_time_s: Optional[float] = None
    position_m: float = 0.0
    speed_ms: float = 0.0
    minimize: str = "energy"
    corridor_id: str = DEFAULT_CORRIDOR_ID

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ConfigurationError("vehicle id must be non-empty")
        if not isinstance(self.corridor_id, str) or not self.corridor_id:
            raise ConfigurationError("corridor id must be a non-empty string")
        if self.depart_s < 0:
            raise ConfigurationError(f"departure must be >= 0, got {self.depart_s}")
        if self.max_trip_time_s is not None and self.max_trip_time_s <= 0:
            raise ConfigurationError("trip-time budget must be positive")
        if self.position_m < 0 or self.speed_ms < 0:
            raise ConfigurationError("replan state must satisfy position, speed >= 0")
        if self.minimize not in ("energy", "time"):
            raise ConfigurationError(f"unknown objective {self.minimize!r}")
        # The range checks above pass NaN/inf straight through (NaN < 0 is
        # False); the input contract closes that hole at construction.
        # This is the ONLY place the field contract runs: the request is
        # frozen, so the service trusts it and adds just the
        # route-length check it alone can perform (check_fields=False).
        validate_plan_request(self, source=f"plan request from {self.vehicle_id!r}")

    @property
    def is_replan(self) -> bool:
        """Whether this request carries a mid-route state."""
        return self.position_m > 0.0 or self.speed_ms > 0.0


@dataclass(frozen=True)
class PlanResponse:
    """The cloud's answer: a profile plus accounting metadata.

    Attributes:
        vehicle_id: Requesting vehicle (echoed).
        profile: The planned velocity profile, shifted to the request's
            departure time.
        energy_mah: Planned energy (mAh).
        trip_time_s: Planned duration (s).
        cache_hit: Whether the plan was served from the phase cache.
        compute_time_s: Server-side planning time (0 for cache hits).
        corridor_id: The corridor that served this plan (echoed from the
            request by the corridor's own service) — clients can assert
            their plan came from the road they asked about.
    """

    vehicle_id: str
    profile: VelocityProfile
    energy_mah: float
    trip_time_s: float
    cache_hit: bool
    compute_time_s: float
    corridor_id: str = DEFAULT_CORRIDOR_ID
