"""Dispatch layer: concurrency and single-flight coalescing for serving.

:class:`PlanDispatcher` puts a thread pool in front of
:meth:`~repro.cloud.service.CloudPlannerService.request` so a fleet's
requests are served concurrently, and adds **single-flight request
coalescing**: concurrent requests that quantize to the same service
cache key (:meth:`CloudPlannerService.coalesce_key`) run exactly one
planner solve — the first submission becomes the *leader*, everyone else
a *follower* that waits for the leader to finish and is then answered
from the warm plan cache (a cheap shift + revalidate, no DP).

Leadership is decided synchronously **at submission time**, in the
caller's thread, not at task-execution time.  That makes the leader
deterministic — the first request submitted for a key solves, exactly as
it would in a serial loop — which is what keeps dispatcher-threaded
serving bit-identical to serial serving (and testable as such).

Deadlines are wall-clock budgets from submission: a request still queued
behind a saturated pool, or still waiting on another request's in-flight
solve, when its deadline lapses fails fast with the typed
:class:`~repro.errors.DispatchDeadlineError` instead of hanging.  A
leader that has already started solving runs to completion (the DP is
not interruptible); its own deadline is only checked before the solve
starts.

If a leader's solve fails, its followers are *not* failed with it: each
falls back to its own ``service.request`` call, preserving the serial
semantics where every infeasible request fails (and is accounted)
individually.

Exact counters live in :class:`DispatcherStats` (mutated under a lock);
the mirrored :mod:`repro.obs` counters (``cloud.dispatch.*``) are
best-effort under concurrency, like all registry counters.
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Union

from repro import obs
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.errors import ConfigurationError, DispatchDeadlineError

__all__ = ["DispatcherStats", "PlanDispatcher"]


@dataclass(frozen=True)
class DispatcherStats:
    """Immutable snapshot of one dispatcher's counters.

    Attributes:
        submitted: Requests accepted by :meth:`PlanDispatcher.submit`.
        completed: Requests that produced a response.
        errors: Requests that raised (planning failures included).
        leaders: Requests that ran their own service call with a
            coalescing key registered (first in flight for their key).
        coalesced: Requests served as followers of another request's
            in-flight solve.
        deadline_exceeded: Requests failed on an expired deadline.
        workers: The pool size.
    """

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    leaders: int = 0
    coalesced: int = 0
    deadline_exceeded: int = 0
    workers: int = 0

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed or failed."""
        return self.submitted - self.completed - self.errors

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        return (
            f"{self.submitted} submitted, {self.coalesced} coalesced, "
            f"{self.errors} error(s), {self.deadline_exceeded} deadline-expired "
            f"({self.workers} workers)"
        )


class _Flight:
    """One in-flight solve: followers wait on ``done``."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


class PlanDispatcher:
    """Thread-pooled, single-flight front end for a planning service.

    Args:
        service: The synchronous service the workers call into.  Its
            caches and stats are thread-safe; its planner is read-only
            during solves, so concurrent solves of *different* keys are
            safe.
        workers: Worker-thread count (>= 1).
        name: Metrics namespace for the :mod:`repro.obs` counters.

    Use as a context manager, or call :meth:`shutdown` when done.
    """

    def __init__(
        self,
        service: CloudPlannerService,
        workers: int = 4,
        name: str = "cloud.dispatch",
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"dispatcher needs >= 1 worker, got {workers}")
        self.service = service
        self.workers = int(workers)
        self.name = name
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="plan-dispatch"
        )
        self._flights: Dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._errors = 0
        self._leaders = 0
        self._coalesced = 0
        self._deadline_exceeded = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, req: PlanRequest, deadline_s: Optional[float] = None
    ) -> "Future[PlanResponse]":
        """Enqueue one request; returns a future of its response.

        Args:
            req: The plan request.
            deadline_s: Optional wall-clock budget (seconds from now);
                expired requests raise
                :class:`~repro.errors.DispatchDeadlineError` from the
                future instead of being served late.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
        registry = obs.get_registry()
        submitted_at = _time.monotonic()
        key = self.service.coalesce_key(req)
        leader = False
        flight: Optional[_Flight] = None
        if key is not None:
            # Leadership is claimed here, synchronously, so the first
            # submission for a key is the one that solves — matching the
            # order a serial loop would have run.
            with self._lock:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
        with self._lock:
            self._submitted += 1
        registry.inc(f"{self.name}.submitted")
        return self._pool.submit(
            self._run, req, key, flight, leader, deadline_s, submitted_at
        )

    def submit_many(
        self,
        requests: Sequence[PlanRequest],
        deadline_s: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> List[Union[PlanResponse, Exception]]:
        """Submit a batch (in order) and gather the responses (in order).

        Submission order decides coalescing leadership, so a batch of
        same-key requests is served exactly as a serial loop would serve
        it: the first solves, the rest hit the warm cache.

        Args:
            requests: The batch.
            deadline_s: Optional shared per-request deadline.
            return_exceptions: When true, a failed request contributes
                its exception to the result list instead of raising, so
                one infeasible departure does not mask the others.
        """
        futures = [self.submit(req, deadline_s=deadline_s) for req in requests]
        results: List[Union[PlanResponse, Exception]] = []
        first_error: Optional[Exception] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if not return_exceptions and first_error is None:
                    first_error = exc
                results.append(exc)
        if first_error is not None:
            raise first_error
        return results

    def request(
        self, req: PlanRequest, deadline_s: Optional[float] = None
    ) -> PlanResponse:
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(req, deadline_s=deadline_s).result()

    # ------------------------------------------------------------------
    # Worker body
    # ------------------------------------------------------------------
    def _check_deadline(
        self,
        req: PlanRequest,
        deadline_s: Optional[float],
        submitted_at: float,
        while_doing: str,
    ) -> float:
        """Remaining budget (inf when unbounded); raises when expired."""
        if deadline_s is None:
            return float("inf")
        remaining = deadline_s - (_time.monotonic() - submitted_at)
        if remaining <= 0:
            with self._lock:
                self._deadline_exceeded += 1
                self._errors += 1
            registry = obs.get_registry()
            registry.inc(f"{self.name}.deadline_exceeded")
            registry.inc(f"{self.name}.errors")
            raise DispatchDeadlineError(
                f"request for {req.vehicle_id!r} missed its {deadline_s:.2f} s "
                f"deadline {while_doing}",
                vehicle_id=req.vehicle_id,
                deadline_s=deadline_s,
            )
        return remaining

    def _run(
        self,
        req: PlanRequest,
        key: Optional[Hashable],
        flight: Optional[_Flight],
        leader: bool,
        deadline_s: Optional[float],
        submitted_at: float,
    ) -> PlanResponse:
        registry = obs.get_registry()
        self._check_deadline(req, deadline_s, submitted_at, "while queued")
        if key is not None and not leader:
            # Follower: wait for the leader's solve, then serve from the
            # warm cache with an ordinary (cheap) service call.
            remaining = self._check_deadline(
                req, deadline_s, submitted_at, "while queued"
            )
            timeout = None if remaining == float("inf") else remaining
            if not flight.done.wait(timeout=timeout):
                self._check_deadline(
                    req, deadline_s, submitted_at, "waiting on a coalesced solve"
                )
            with self._lock:
                self._coalesced += 1
            registry.inc(f"{self.name}.coalesced")
        elif leader:
            with self._lock:
                self._leaders += 1
            registry.inc(f"{self.name}.leaders")
        try:
            response = self.service.request(req)
        except Exception:
            with self._lock:
                self._errors += 1
            registry.inc(f"{self.name}.errors")
            raise
        else:
            with self._lock:
                self._completed += 1
            registry.inc(f"{self.name}.completed")
            return response
        finally:
            if leader:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()

    # ------------------------------------------------------------------
    # Lifecycle / stats
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool (idempotent)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def stats(self) -> DispatcherStats:
        """An immutable snapshot of the counters."""
        with self._lock:
            return DispatcherStats(
                submitted=self._submitted,
                completed=self._completed,
                errors=self._errors,
                leaders=self._leaders,
                coalesced=self._coalesced,
                deadline_exceeded=self._deadline_exceeded,
                workers=self.workers,
            )
