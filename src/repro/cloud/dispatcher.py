"""Dispatch layer: concurrency and single-flight coalescing for serving.

:class:`PlanDispatcher` puts a thread pool in front of
:meth:`~repro.cloud.service.CloudPlannerService.request` so a fleet's
requests are served concurrently, and adds **single-flight request
coalescing**: concurrent requests that quantize to the same service
cache key (:meth:`CloudPlannerService.coalesce_key`) run exactly one
planner solve — the first submission becomes the *leader*, everyone else
a *follower* that waits for the leader to finish and is then answered
from the warm plan cache (a cheap shift + revalidate, no DP).

Leadership is decided synchronously **at submission time**, in the
caller's thread, not at task-execution time.  That makes the leader
deterministic — the first request submitted for a key solves, exactly as
it would in a serial loop — which is what keeps dispatcher-threaded
serving bit-identical to serial serving (and testable as such).

Deadlines are wall-clock budgets from submission: a request still queued
behind a saturated pool, or still waiting on another request's in-flight
solve, when its deadline lapses fails fast with the typed
:class:`~repro.errors.DispatchDeadlineError` instead of hanging.  A
leader that has already started solving runs to completion (the DP is
not interruptible); its own deadline is only checked before the solve
starts.

If a leader's solve fails, its followers are *not* failed with it: each
falls back to its own ``service.request`` call, preserving the serial
semantics where every infeasible request fails (and is accounted)
individually.

Exact counters live in :class:`DispatcherStats` (mutated under a lock);
the mirrored :mod:`repro.obs` counters (``cloud.dispatch.*``) are
best-effort under concurrency, like all registry counters.
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Union

from repro import obs
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.errors import ConfigurationError, DispatchDeadlineError

__all__ = ["DispatcherStats", "PlanDispatcher"]


@dataclass(frozen=True)
class DispatcherStats:
    """Immutable snapshot of one dispatcher's counters.

    Attributes:
        submitted: Requests accepted by :meth:`PlanDispatcher.submit`.
        completed: Requests that produced a response.
        errors: Requests that raised (planning failures included).
        leaders: Requests that ran their own service call with a
            coalescing key registered (first in flight for their key).
        coalesced: Requests served as followers of another request's
            in-flight solve.
        deadline_exceeded: Requests failed on an expired deadline.
        workers: The pool size.
        batched: Requests served through the micro-batching path (one
            vectorized DP per window instead of one solve per request).
        batches: Micro-batch windows drained (each one
            :meth:`~repro.cloud.service.CloudPlannerService.request_batch`
            call).
    """

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    leaders: int = 0
    coalesced: int = 0
    deadline_exceeded: int = 0
    workers: int = 0
    batched: int = 0
    batches: int = 0

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed or failed."""
        return self.submitted - self.completed - self.errors

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        return (
            f"{self.submitted} submitted, {self.coalesced} coalesced, "
            f"{self.errors} error(s), {self.deadline_exceeded} deadline-expired "
            f"({self.workers} workers)"
        )


class _Flight:
    """One in-flight solve: followers wait on ``done``."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


class PlanDispatcher:
    """Thread-pooled, single-flight front end for a planning service.

    Args:
        service: The synchronous service the workers call into.  Its
            caches and stats are thread-safe; its planner is read-only
            during solves, so concurrent solves of *different* keys are
            safe.
        workers: Worker count (>= 1): pool threads, or worker processes
            under the process backend.
        name: Metrics namespace for the :mod:`repro.obs` counters.
        backend: ``"thread"`` (default) serves through an in-process
            pool sharing the service's caches; ``"process"`` serves
            through key-sharded worker processes that map the corridor
            artifacts from shared memory
            (:class:`repro.cloud.procpool.ProcessBackend`) — real
            parallelism for the GIL-bound DP, at the cost of per-worker
            service caches.
        batch_window_s: When set (thread backend only), coalescable
            requests are *micro-batched*: the dispatcher collects
            submissions for this many seconds, then serves the whole
            window through
            :meth:`CloudPlannerService.request_batch` — every cold key
            in the window is solved as **one** vectorized DP program
            (see ``repro.core.engine.stage_kernel``), which beats the
            GIL without leaving the process.  Uncoalescable requests
            (replans, non-energy objectives) bypass the window and run
            on the thread pool as usual.

    Use as a context manager, or call :meth:`shutdown` when done.
    """

    def __init__(
        self,
        service: CloudPlannerService,
        workers: int = 4,
        name: str = "cloud.dispatch",
        backend: str = "thread",
        batch_window_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"dispatcher needs >= 1 worker, got {workers}")
        if backend not in ("thread", "process"):
            raise ConfigurationError(
                f"dispatcher backend must be 'thread' or 'process', got {backend!r}"
            )
        if batch_window_s is not None and batch_window_s <= 0:
            raise ConfigurationError(
                f"batch window must be positive, got {batch_window_s}"
            )
        if backend == "process" and batch_window_s is not None:
            raise ConfigurationError(
                "micro-batching applies to the thread backend only"
            )
        self.service = service
        self.workers = int(workers)
        self.name = name
        self.backend = backend
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="plan-dispatch"
        )
        self._flights: Dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._errors = 0
        self._leaders = 0
        self._coalesced = 0
        self._deadline_exceeded = 0
        self._batched = 0
        self._batches = 0
        self._batch_window_s = None if batch_window_s is None else float(batch_window_s)
        self._batch_pending: List[tuple] = []
        self._batch_cv = threading.Condition()
        self._batch_stop = False
        self._batch_thread: Optional[threading.Thread] = None
        if self._batch_window_s is not None:
            self._batch_thread = threading.Thread(
                target=self._batch_loop, name="plan-batcher", daemon=True
            )
            self._batch_thread.start()
        self._proc = None
        if backend == "process":
            from repro.cloud.procpool import ProcessBackend

            self._proc = ProcessBackend(service, workers=self.workers)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, req: PlanRequest, deadline_s: Optional[float] = None
    ) -> "Future[PlanResponse]":
        """Enqueue one request; returns a future of its response.

        Args:
            req: The plan request.
            deadline_s: Optional wall-clock budget (seconds from now);
                expired requests raise
                :class:`~repro.errors.DispatchDeadlineError` from the
                future instead of being served late.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(f"deadline must be positive, got {deadline_s}")
        registry = obs.get_registry()
        submitted_at = _time.monotonic()
        key = self.service.coalesce_key(req)
        if self._proc is not None:
            with self._lock:
                self._submitted += 1
            registry.inc(f"{self.name}.submitted")
            future = self._proc.submit(req, key, deadline_s, submitted_at)
            future.add_done_callback(self._account_process_outcome)
            return future
        if self._batch_window_s is not None and key is not None:
            # Micro-batching: park the request with its future; the
            # batcher thread drains the window into one request_batch.
            with self._lock:
                self._submitted += 1
            registry.inc(f"{self.name}.submitted")
            future: "Future[PlanResponse]" = Future()
            with self._batch_cv:
                self._batch_pending.append(
                    (req, key, future, deadline_s, submitted_at)
                )
                self._batch_cv.notify()
            return future
        leader = False
        flight: Optional[_Flight] = None
        if key is not None:
            # Leadership is claimed here, synchronously, so the first
            # submission for a key is the one that solves — matching the
            # order a serial loop would have run.
            with self._lock:
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
        with self._lock:
            self._submitted += 1
        registry.inc(f"{self.name}.submitted")
        return self._pool.submit(
            self._run, req, key, flight, leader, deadline_s, submitted_at
        )

    def submit_many(
        self,
        requests: Sequence[PlanRequest],
        deadline_s: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> List[Union[PlanResponse, Exception]]:
        """Submit a batch (in order) and gather the responses (in order).

        Submission order decides coalescing leadership, so a batch of
        same-key requests is served exactly as a serial loop would serve
        it: the first solves, the rest hit the warm cache.

        Args:
            requests: The batch.
            deadline_s: Optional shared per-request deadline.
            return_exceptions: When true, a failed request contributes
                its exception to the result list instead of raising, so
                one infeasible departure does not mask the others.
        """
        futures = [self.submit(req, deadline_s=deadline_s) for req in requests]
        results: List[Union[PlanResponse, Exception]] = []
        first_error: Optional[Exception] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if not return_exceptions and first_error is None:
                    first_error = exc
                results.append(exc)
        if first_error is not None:
            raise first_error
        return results

    def request(
        self, req: PlanRequest, deadline_s: Optional[float] = None
    ) -> PlanResponse:
        """Synchronous convenience wrapper: submit and wait."""
        return self.submit(req, deadline_s=deadline_s).result()

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        """Batcher thread: wait for work, collect the window, serve it."""
        while True:
            with self._batch_cv:
                while not self._batch_pending and not self._batch_stop:
                    self._batch_cv.wait()
                if self._batch_stop and not self._batch_pending:
                    return
            # Let the window fill: submissions landing during this sleep
            # join the same vectorized solve.
            _time.sleep(self._batch_window_s)
            with self._batch_cv:
                batch = self._batch_pending
                self._batch_pending = []
            if batch:
                self._serve_batch(batch)

    @staticmethod
    def _resolve(future: Future, outcome: Union[PlanResponse, Exception]) -> None:
        try:
            if isinstance(outcome, Exception):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)
        except Exception:  # noqa: BLE001 - future was cancelled; outcome moot
            pass

    def _serve_batch(self, batch: List[tuple]) -> None:
        """Serve one drained window through ``service.request_batch``."""
        registry = obs.get_registry()
        live = []
        for req, key, future, deadline_s, submitted_at in batch:
            if (
                deadline_s is not None
                and _time.monotonic() - submitted_at >= deadline_s
            ):
                with self._lock:
                    self._deadline_exceeded += 1
                    self._errors += 1
                registry.inc(f"{self.name}.deadline_exceeded")
                registry.inc(f"{self.name}.errors")
                self._resolve(
                    future,
                    DispatchDeadlineError(
                        f"request for {req.vehicle_id!r} missed its "
                        f"{deadline_s:.2f} s deadline while queued",
                        vehicle_id=req.vehicle_id,
                        deadline_s=deadline_s,
                    ),
                )
                continue
            live.append((req, key, future))
        if not live:
            return
        try:
            outcomes = self.service.request_batch([req for req, _, _ in live])
        except Exception as exc:  # noqa: BLE001 - fail the window, not the loop
            for _, _, future in live:
                with self._lock:
                    self._errors += 1
                registry.inc(f"{self.name}.errors")
                self._resolve(future, exc)
            return
        with self._lock:
            self._batches += 1
            self._batched += len(live)
        registry.inc(f"{self.name}.batches")
        seen_keys = set()
        for (req, key, future), outcome in zip(live, outcomes):
            first = key not in seen_keys
            seen_keys.add(key)
            if isinstance(outcome, Exception):
                with self._lock:
                    self._errors += 1
                registry.inc(f"{self.name}.errors")
            else:
                # Mirror the single-flight classification: the first
                # request of a key in the window is its leader; later
                # ones count as coalesced only if the warm cache
                # actually answered them.
                if first:
                    with self._lock:
                        self._leaders += 1
                    registry.inc(f"{self.name}.leaders")
                elif outcome.cache_hit:
                    with self._lock:
                        self._coalesced += 1
                    registry.inc(f"{self.name}.coalesced")
                with self._lock:
                    self._completed += 1
                registry.inc(f"{self.name}.completed")
            self._resolve(future, outcome)

    def _account_process_outcome(self, future: Future) -> None:
        """Done-callback counting a process-backend future's outcome."""
        registry = obs.get_registry()
        exc = future.exception()
        if exc is not None:
            with self._lock:
                self._errors += 1
                if isinstance(exc, DispatchDeadlineError):
                    self._deadline_exceeded += 1
            registry.inc(f"{self.name}.errors")
            if isinstance(exc, DispatchDeadlineError):
                registry.inc(f"{self.name}.deadline_exceeded")
            return
        response = future.result()
        with self._lock:
            self._completed += 1
            if response.cache_hit:
                self._coalesced += 1
        registry.inc(f"{self.name}.completed")
        if response.cache_hit:
            registry.inc(f"{self.name}.coalesced")

    # ------------------------------------------------------------------
    # Worker body
    # ------------------------------------------------------------------
    def _check_deadline(
        self,
        req: PlanRequest,
        deadline_s: Optional[float],
        submitted_at: float,
        while_doing: str,
    ) -> float:
        """Remaining budget (inf when unbounded); raises when expired."""
        if deadline_s is None:
            return float("inf")
        remaining = deadline_s - (_time.monotonic() - submitted_at)
        if remaining <= 0:
            with self._lock:
                self._deadline_exceeded += 1
                self._errors += 1
            registry = obs.get_registry()
            registry.inc(f"{self.name}.deadline_exceeded")
            registry.inc(f"{self.name}.errors")
            raise DispatchDeadlineError(
                f"request for {req.vehicle_id!r} missed its {deadline_s:.2f} s "
                f"deadline {while_doing}",
                vehicle_id=req.vehicle_id,
                deadline_s=deadline_s,
            )
        return remaining

    def _run(
        self,
        req: PlanRequest,
        key: Optional[Hashable],
        flight: Optional[_Flight],
        leader: bool,
        deadline_s: Optional[float],
        submitted_at: float,
    ) -> PlanResponse:
        registry = obs.get_registry()
        # The whole worker body runs under the flight-cleanup finally: a
        # leader that dies *anywhere* — including on a deadline that
        # expired while it was still queued — must pop its flight and
        # release its followers, or a follower with no deadline of its
        # own waits forever.
        try:
            self._check_deadline(req, deadline_s, submitted_at, "while queued")
            if key is not None and not leader:
                # Follower: wait for the leader's solve, then serve from
                # the warm cache with an ordinary (cheap) service call.
                remaining = self._check_deadline(
                    req, deadline_s, submitted_at, "while queued"
                )
                timeout = None if remaining == float("inf") else remaining
                if not flight.done.wait(timeout=timeout):
                    self._check_deadline(
                        req, deadline_s, submitted_at, "waiting on a coalesced solve"
                    )
            elif leader:
                with self._lock:
                    self._leaders += 1
                registry.inc(f"{self.name}.leaders")
            try:
                response = self.service.request(req)
            except Exception:
                with self._lock:
                    self._errors += 1
                registry.inc(f"{self.name}.errors")
                raise
            # A follower is only *coalesced* if the warm cache actually
            # answered it.  When its leader failed (or the entry was
            # rejected on revalidation) the serve above fell back to a
            # full solve of its own — counting that as coalesced would
            # overstate the dispatcher's savings.
            if key is not None and not leader and response.cache_hit:
                with self._lock:
                    self._coalesced += 1
                registry.inc(f"{self.name}.coalesced")
            with self._lock:
                self._completed += 1
            registry.inc(f"{self.name}.completed")
            return response
        finally:
            if leader:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()

    # ------------------------------------------------------------------
    # Lifecycle / stats
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the batcher, any worker processes and the pool (idempotent)."""
        if self._batch_thread is not None:
            with self._batch_cv:
                self._batch_stop = True
                self._batch_cv.notify_all()
            if wait:
                self._batch_thread.join(timeout=30.0)
        if self._proc is not None:
            self._proc.shutdown(wait=wait)
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def stats(self) -> DispatcherStats:
        """An immutable snapshot of the counters."""
        with self._lock:
            return DispatcherStats(
                submitted=self._submitted,
                completed=self._completed,
                errors=self._errors,
                leaders=self._leaders,
                coalesced=self._coalesced,
                deadline_exceeded=self._deadline_exceeded,
                workers=self.workers,
                batched=self._batched,
                batches=self._batches,
            )
