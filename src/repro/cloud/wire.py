"""Wire layer: a versioned, schema-checked codec for the serving stack.

The deployment model of [6, 7] has vehicles exchanging plan requests and
velocity profiles with the cloud over wireless — which means a real
serialization boundary, not in-process object passing.  This module is
that boundary: :class:`~repro.cloud.messages.PlanRequest`,
:class:`~repro.cloud.messages.PlanResponse` and
:class:`~repro.core.profile.VelocityProfile` convert to plain dicts and
to canonical JSON bytes, and back, **bit-exactly**:

* floats are emitted with Python's shortest-repr rendering, which
  round-trips every finite IEEE-754 double exactly (including ``-0.0``);
* NaN/inf are rejected at encode time (``allow_nan=False``) and the
  decoder refuses the ``NaN``/``Infinity`` JSON extensions, so
  non-finite values can never cross the wire in either direction;
* dict keys are sorted and separators minimal, so equal messages encode
  to equal bytes (safe to hash, dedupe, or diff).

Every payload carries ``wire_version`` (:data:`WIRE_VERSION`) and a
``kind`` tag.  Decoding is strict: broken JSON, an unknown version, a
wrong kind, missing or unknown keys, and mistyped fields all raise the
typed :class:`~repro.errors.WireProtocolError` (a
:class:`~repro.errors.InputValidationError`, so the guard layer's
handlers apply unchanged).  Payloads that parse but violate the request
contract (negative departure, unknown objective, …) are re-raised as
:class:`WireProtocolError` too — the wire is one boundary with one
error type.

Version policy: ``wire_version`` is bumped only for **incompatible**
schema changes (a removed/renamed key, a semantic change to an existing
key).  Decoders accept exactly the versions they implement and reject
everything else loudly — there is no silent best-effort parsing of
foreign versions; a rolling fleet upgrade keeps old decoders alive until
no old producer remains.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Union

from repro.core.profile import VelocityProfile
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.errors import ConfigurationError, WireProtocolError

__all__ = [
    "WIRE_VERSION",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "profile_from_dict",
    "profile_to_dict",
    "request_from_dict",
    "request_to_dict",
    "response_from_dict",
    "response_to_dict",
    "roundtrip_request",
    "roundtrip_response",
]

#: Current wire schema version; see the module docstring for the bump policy.
WIRE_VERSION = 1

#: ``kind`` tags distinguishing the two message types on the wire.
REQUEST_KIND = "plan_request"
RESPONSE_KIND = "plan_response"

_REQUEST_KEYS = {
    "wire_version", "kind", "vehicle_id", "depart_s", "max_trip_time_s",
    "position_m", "speed_ms", "minimize",
}
_RESPONSE_KEYS = {
    "wire_version", "kind", "vehicle_id", "profile", "energy_mah",
    "trip_time_s", "cache_hit", "compute_time_s",
}
_PROFILE_KEYS = {"positions_m", "speeds_ms", "dwell_s", "start_time_s"}


# ----------------------------------------------------------------------
# Schema checking helpers
# ----------------------------------------------------------------------
def _reject_nonfinite_token(token: str) -> None:
    """``parse_constant`` hook: refuse the NaN/Infinity JSON extensions."""
    raise WireProtocolError(f"non-finite JSON constant {token!r} is not allowed")


def _require_mapping(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_keys(payload: Dict[str, Any], expected: set, what: str) -> None:
    missing = expected - payload.keys()
    if missing:
        raise WireProtocolError(
            f"{what} is missing key(s) {sorted(missing)}", field=sorted(missing)[0]
        )
    unknown = payload.keys() - expected
    if unknown:
        raise WireProtocolError(
            f"{what} carries unknown key(s) {sorted(unknown)}", field=sorted(unknown)[0]
        )


def _check_version_and_kind(payload: Dict[str, Any], kind: str, what: str) -> None:
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"{what} has wire_version {version!r}; this decoder speaks "
            f"version {WIRE_VERSION} only",
            field="wire_version",
            version=version,
        )
    if payload.get("kind") != kind:
        raise WireProtocolError(
            f"{what} has kind {payload.get('kind')!r}, expected {kind!r}",
            field="kind",
        )


def _finite_float(value: Any, field: str, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireProtocolError(
            f"{what}.{field} must be a number, got {type(value).__name__}",
            field=field,
        )
    value = float(value)
    if not math.isfinite(value):
        raise WireProtocolError(f"{what}.{field} must be finite, got {value!r}", field=field)
    return value


def _float_list(value: Any, field: str, what: str) -> List[float]:
    if not isinstance(value, list):
        raise WireProtocolError(
            f"{what}.{field} must be an array, got {type(value).__name__}",
            field=field,
        )
    return [_finite_float(v, f"{field}[{i}]", what) for i, v in enumerate(value)]


def _dumps(document: Dict[str, Any], what: str) -> bytes:
    try:
        text = json.dumps(
            document, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        # json's own refusal of NaN/inf — surface it as the wire error.
        raise WireProtocolError(f"{what} carries a non-finite value: {exc}") from exc
    return text.encode("ascii")


def _loads(data: Union[bytes, bytearray, str], what: str) -> Any:
    if isinstance(data, (bytes, bytearray)):
        try:
            data = bytes(data).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"{what} is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(data, parse_constant=_reject_nonfinite_token)
    except WireProtocolError:
        raise
    except (json.JSONDecodeError, TypeError) as exc:
        raise WireProtocolError(f"{what} is not valid JSON: {exc}") from exc


# ----------------------------------------------------------------------
# VelocityProfile <-> dict
# ----------------------------------------------------------------------
def profile_to_dict(profile: VelocityProfile) -> Dict[str, Any]:
    """A :class:`VelocityProfile` as a plain JSON-ready dict."""
    return {
        "positions_m": [float(v) for v in profile.positions_m],
        "speeds_ms": [float(v) for v in profile.speeds_ms],
        "dwell_s": [float(v) for v in profile.dwell_s],
        "start_time_s": float(profile.start_time_s),
    }


def profile_from_dict(payload: Dict[str, Any]) -> VelocityProfile:
    """Rebuild a :class:`VelocityProfile` from its dict form, strictly.

    Raises:
        WireProtocolError: Missing/unknown keys, mistyped or non-finite
            entries, or arrays the profile's own invariants reject
            (non-increasing positions, negative speeds, …).
    """
    payload = _require_mapping(payload, "profile")
    _check_keys(payload, _PROFILE_KEYS, "profile")
    positions = _float_list(payload["positions_m"], "positions_m", "profile")
    speeds = _float_list(payload["speeds_ms"], "speeds_ms", "profile")
    dwell = _float_list(payload["dwell_s"], "dwell_s", "profile")
    start = _finite_float(payload["start_time_s"], "start_time_s", "profile")
    try:
        return VelocityProfile(
            positions_m=positions, speeds_ms=speeds, dwell_s=dwell, start_time_s=start
        )
    except ConfigurationError as exc:
        raise WireProtocolError(f"profile violates its invariants: {exc}") from exc


# ----------------------------------------------------------------------
# PlanRequest <-> dict <-> bytes
# ----------------------------------------------------------------------
def request_to_dict(req: PlanRequest) -> Dict[str, Any]:
    """A :class:`PlanRequest` as a plain, versioned JSON-ready dict."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": REQUEST_KIND,
        "vehicle_id": req.vehicle_id,
        "depart_s": float(req.depart_s),
        "max_trip_time_s": (
            None if req.max_trip_time_s is None else float(req.max_trip_time_s)
        ),
        "position_m": float(req.position_m),
        "speed_ms": float(req.speed_ms),
        "minimize": req.minimize,
    }


def request_from_dict(payload: Dict[str, Any]) -> PlanRequest:
    """Rebuild a :class:`PlanRequest` from its dict form, strictly."""
    payload = _require_mapping(payload, "plan request")
    _check_keys(payload, _REQUEST_KEYS, "plan request")
    _check_version_and_kind(payload, REQUEST_KIND, "plan request")
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str):
        raise WireProtocolError(
            f"plan request vehicle_id must be a string, got {type(vehicle_id).__name__}",
            field="vehicle_id",
        )
    minimize = payload["minimize"]
    if not isinstance(minimize, str):
        raise WireProtocolError(
            f"plan request minimize must be a string, got {type(minimize).__name__}",
            field="minimize",
        )
    budget: Optional[float] = None
    if payload["max_trip_time_s"] is not None:
        budget = _finite_float(payload["max_trip_time_s"], "max_trip_time_s", "plan request")
    try:
        return PlanRequest(
            vehicle_id=vehicle_id,
            depart_s=_finite_float(payload["depart_s"], "depart_s", "plan request"),
            max_trip_time_s=budget,
            position_m=_finite_float(payload["position_m"], "position_m", "plan request"),
            speed_ms=_finite_float(payload["speed_ms"], "speed_ms", "plan request"),
            minimize=minimize,
        )
    except ConfigurationError as exc:
        # Includes InputValidationError from the request's own contract.
        raise WireProtocolError(f"plan request violates its contract: {exc}") from exc


def encode_request(req: PlanRequest) -> bytes:
    """Canonical JSON bytes of a request (equal requests → equal bytes)."""
    return _dumps(request_to_dict(req), "plan request")


def decode_request(data: Union[bytes, bytearray, str]) -> PlanRequest:
    """Parse and validate wire bytes into a :class:`PlanRequest`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, mistyped or non-finite
            fields, or a payload violating the request contract.
    """
    return request_from_dict(_loads(data, "plan request"))


# ----------------------------------------------------------------------
# PlanResponse <-> dict <-> bytes
# ----------------------------------------------------------------------
def response_to_dict(resp: PlanResponse) -> Dict[str, Any]:
    """A :class:`PlanResponse` as a plain, versioned JSON-ready dict.

    ``profile`` may be ``None`` (degraded tiers can answer without one);
    it is encoded as JSON ``null``.
    """
    return {
        "wire_version": WIRE_VERSION,
        "kind": RESPONSE_KIND,
        "vehicle_id": resp.vehicle_id,
        "profile": None if resp.profile is None else profile_to_dict(resp.profile),
        "energy_mah": float(resp.energy_mah),
        "trip_time_s": float(resp.trip_time_s),
        "cache_hit": bool(resp.cache_hit),
        "compute_time_s": float(resp.compute_time_s),
    }


def response_from_dict(payload: Dict[str, Any]) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from its dict form, strictly."""
    payload = _require_mapping(payload, "plan response")
    _check_keys(payload, _RESPONSE_KEYS, "plan response")
    _check_version_and_kind(payload, RESPONSE_KIND, "plan response")
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str) or not vehicle_id:
        raise WireProtocolError(
            "plan response vehicle_id must be a non-empty string", field="vehicle_id"
        )
    if not isinstance(payload["cache_hit"], bool):
        raise WireProtocolError(
            "plan response cache_hit must be a boolean", field="cache_hit"
        )
    profile = (
        None if payload["profile"] is None else profile_from_dict(payload["profile"])
    )
    return PlanResponse(
        vehicle_id=vehicle_id,
        profile=profile,
        energy_mah=_finite_float(payload["energy_mah"], "energy_mah", "plan response"),
        trip_time_s=_finite_float(payload["trip_time_s"], "trip_time_s", "plan response"),
        cache_hit=payload["cache_hit"],
        compute_time_s=_finite_float(
            payload["compute_time_s"], "compute_time_s", "plan response"
        ),
    )


def encode_response(resp: PlanResponse) -> bytes:
    """Canonical JSON bytes of a response (equal responses → equal bytes)."""
    return _dumps(response_to_dict(resp), "plan response")


def decode_response(data: Union[bytes, bytearray, str]) -> PlanResponse:
    """Parse and validate wire bytes into a :class:`PlanResponse`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, or mistyped/non-finite fields.
    """
    return response_from_dict(_loads(data, "plan response"))


def roundtrip_request(req: PlanRequest) -> PlanRequest:
    """``decode(encode(req))`` — the full serialization boundary, bit-exact."""
    return decode_request(encode_request(req))


def roundtrip_response(resp: PlanResponse) -> PlanResponse:
    """``decode(encode(resp))`` — the full serialization boundary, bit-exact."""
    return decode_response(encode_response(resp))
