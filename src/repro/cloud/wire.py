"""Wire layer: a versioned, schema-checked codec for the serving stack.

The deployment model of [6, 7] has vehicles exchanging plan requests and
velocity profiles with the cloud over wireless — which means a real
serialization boundary, not in-process object passing.  This module is
that boundary: :class:`~repro.cloud.messages.PlanRequest`,
:class:`~repro.cloud.messages.PlanResponse` and
:class:`~repro.core.profile.VelocityProfile` convert to plain dicts and
to canonical JSON bytes, and back, **bit-exactly**:

* floats are emitted with Python's shortest-repr rendering, which
  round-trips every finite IEEE-754 double exactly (including ``-0.0``);
* NaN/inf are rejected at encode time (``allow_nan=False``) and the
  decoder refuses the ``NaN``/``Infinity`` JSON extensions, so
  non-finite values can never cross the wire in either direction;
* dict keys are sorted and separators minimal, so equal messages encode
  to equal bytes (safe to hash, dedupe, or diff).

Every payload carries ``wire_version`` (:data:`WIRE_VERSION`) and a
``kind`` tag.  Decoding is strict: broken JSON, an unknown version, a
wrong kind, missing or unknown keys, and mistyped fields all raise the
typed :class:`~repro.errors.WireProtocolError` (a
:class:`~repro.errors.InputValidationError`, so the guard layer's
handlers apply unchanged).  Payloads that parse but violate the request
contract (negative departure, unknown objective, …) are re-raised as
:class:`WireProtocolError` too — the wire is one boundary with one
error type.

Version policy: ``wire_version`` is bumped only for **incompatible**
schema changes (a removed/renamed key, a semantic change to an existing
key).  Decoders accept exactly the versions they implement and reject
everything else loudly — there is no silent best-effort parsing of
foreign versions; a rolling fleet upgrade keeps old decoders alive until
no old producer remains.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.profile import VelocityProfile
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.errors import ConfigurationError, WireProtocolError

__all__ = [
    "WIRE_VERSION",
    "ERROR_BUSY",
    "ERROR_INTERNAL",
    "ERROR_PLANNING_FAILED",
    "ERROR_PROTOCOL",
    "ERROR_TIMEOUT",
    "ErrorFrame",
    "HealthStatus",
    "decode_message",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_health_request",
    "encode_health_response",
    "encode_request",
    "encode_response",
    "encode_stats_request",
    "encode_stats_response",
    "profile_from_dict",
    "profile_to_dict",
    "request_from_dict",
    "request_to_dict",
    "response_from_dict",
    "response_to_dict",
    "roundtrip_request",
    "roundtrip_response",
]

#: Current wire schema version; see the module docstring for the bump policy.
WIRE_VERSION = 1

#: ``kind`` tags distinguishing the message types on the wire.
REQUEST_KIND = "plan_request"
RESPONSE_KIND = "plan_response"
ERROR_KIND = "error"
HEALTH_REQUEST_KIND = "health_request"
HEALTH_RESPONSE_KIND = "health_response"
STATS_REQUEST_KIND = "stats_request"
STATS_RESPONSE_KIND = "stats_response"

#: Error-frame codes.  ``retryable`` travels alongside the code so a
#: client does not need a table of which failures are transient.
ERROR_BUSY = "busy"                       # shed by admission control
ERROR_PLANNING_FAILED = "planning_failed"  # served, but infeasible
ERROR_PROTOCOL = "protocol"               # the peer's bytes were invalid
ERROR_TIMEOUT = "timeout"                 # server-side deadline expired
ERROR_INTERNAL = "internal"               # unexpected server failure
_ERROR_CODES = (
    ERROR_BUSY, ERROR_PLANNING_FAILED, ERROR_PROTOCOL, ERROR_TIMEOUT,
    ERROR_INTERNAL,
)

#: Health statuses a server reports.
HEALTH_OK = "ok"
HEALTH_DRAINING = "draining"

_REQUEST_KEYS = {
    "wire_version", "kind", "vehicle_id", "depart_s", "max_trip_time_s",
    "position_m", "speed_ms", "minimize",
}
_RESPONSE_KEYS = {
    "wire_version", "kind", "vehicle_id", "profile", "energy_mah",
    "trip_time_s", "cache_hit", "compute_time_s",
}
_PROFILE_KEYS = {"positions_m", "speeds_ms", "dwell_s", "start_time_s"}
_ERROR_KEYS = {
    "wire_version", "kind", "code", "message", "retryable", "vehicle_id",
    "queue_depth", "capacity",
}
_HEALTH_REQUEST_KEYS = {"wire_version", "kind"}
_HEALTH_RESPONSE_KEYS = {"wire_version", "kind", "status", "in_flight", "capacity"}
_STATS_REQUEST_KEYS = {"wire_version", "kind"}
_STATS_RESPONSE_KEYS = {"wire_version", "kind", "document"}


# ----------------------------------------------------------------------
# Schema checking helpers
# ----------------------------------------------------------------------
def _reject_nonfinite_token(token: str) -> None:
    """``parse_constant`` hook: refuse the NaN/Infinity JSON extensions."""
    raise WireProtocolError(f"non-finite JSON constant {token!r} is not allowed")


def _require_mapping(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_keys(payload: Dict[str, Any], expected: set, what: str) -> None:
    missing = expected - payload.keys()
    if missing:
        raise WireProtocolError(
            f"{what} is missing key(s) {sorted(missing)}", field=sorted(missing)[0]
        )
    unknown = payload.keys() - expected
    if unknown:
        raise WireProtocolError(
            f"{what} carries unknown key(s) {sorted(unknown)}", field=sorted(unknown)[0]
        )


def _check_version_and_kind(payload: Dict[str, Any], kind: str, what: str) -> None:
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"{what} has wire_version {version!r}; this decoder speaks "
            f"version {WIRE_VERSION} only",
            field="wire_version",
            version=version,
        )
    if payload.get("kind") != kind:
        raise WireProtocolError(
            f"{what} has kind {payload.get('kind')!r}, expected {kind!r}",
            field="kind",
        )


def _finite_float(value: Any, field: str, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireProtocolError(
            f"{what}.{field} must be a number, got {type(value).__name__}",
            field=field,
        )
    value = float(value)
    if not math.isfinite(value):
        raise WireProtocolError(f"{what}.{field} must be finite, got {value!r}", field=field)
    return value


def _float_list(value: Any, field: str, what: str) -> List[float]:
    if not isinstance(value, list):
        raise WireProtocolError(
            f"{what}.{field} must be an array, got {type(value).__name__}",
            field=field,
        )
    return [_finite_float(v, f"{field}[{i}]", what) for i, v in enumerate(value)]


def _dumps(document: Dict[str, Any], what: str) -> bytes:
    try:
        text = json.dumps(
            document, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        # json's own refusal of NaN/inf — surface it as the wire error.
        raise WireProtocolError(f"{what} carries a non-finite value: {exc}") from exc
    return text.encode("ascii")


def _loads(data: Union[bytes, bytearray, str], what: str) -> Any:
    if isinstance(data, (bytes, bytearray)):
        try:
            data = bytes(data).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"{what} is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(data, parse_constant=_reject_nonfinite_token)
    except WireProtocolError:
        raise
    except (json.JSONDecodeError, TypeError) as exc:
        raise WireProtocolError(f"{what} is not valid JSON: {exc}") from exc


# ----------------------------------------------------------------------
# VelocityProfile <-> dict
# ----------------------------------------------------------------------
def profile_to_dict(profile: VelocityProfile) -> Dict[str, Any]:
    """A :class:`VelocityProfile` as a plain JSON-ready dict."""
    return {
        "positions_m": [float(v) for v in profile.positions_m],
        "speeds_ms": [float(v) for v in profile.speeds_ms],
        "dwell_s": [float(v) for v in profile.dwell_s],
        "start_time_s": float(profile.start_time_s),
    }


def profile_from_dict(payload: Dict[str, Any]) -> VelocityProfile:
    """Rebuild a :class:`VelocityProfile` from its dict form, strictly.

    Raises:
        WireProtocolError: Missing/unknown keys, mistyped or non-finite
            entries, or arrays the profile's own invariants reject
            (non-increasing positions, negative speeds, …).
    """
    payload = _require_mapping(payload, "profile")
    _check_keys(payload, _PROFILE_KEYS, "profile")
    positions = _float_list(payload["positions_m"], "positions_m", "profile")
    speeds = _float_list(payload["speeds_ms"], "speeds_ms", "profile")
    dwell = _float_list(payload["dwell_s"], "dwell_s", "profile")
    start = _finite_float(payload["start_time_s"], "start_time_s", "profile")
    try:
        return VelocityProfile(
            positions_m=positions, speeds_ms=speeds, dwell_s=dwell, start_time_s=start
        )
    except ConfigurationError as exc:
        raise WireProtocolError(f"profile violates its invariants: {exc}") from exc


# ----------------------------------------------------------------------
# PlanRequest <-> dict <-> bytes
# ----------------------------------------------------------------------
def request_to_dict(req: PlanRequest) -> Dict[str, Any]:
    """A :class:`PlanRequest` as a plain, versioned JSON-ready dict."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": REQUEST_KIND,
        "vehicle_id": req.vehicle_id,
        "depart_s": float(req.depart_s),
        "max_trip_time_s": (
            None if req.max_trip_time_s is None else float(req.max_trip_time_s)
        ),
        "position_m": float(req.position_m),
        "speed_ms": float(req.speed_ms),
        "minimize": req.minimize,
    }


def request_from_dict(payload: Dict[str, Any]) -> PlanRequest:
    """Rebuild a :class:`PlanRequest` from its dict form, strictly."""
    payload = _require_mapping(payload, "plan request")
    _check_keys(payload, _REQUEST_KEYS, "plan request")
    _check_version_and_kind(payload, REQUEST_KIND, "plan request")
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str):
        raise WireProtocolError(
            f"plan request vehicle_id must be a string, got {type(vehicle_id).__name__}",
            field="vehicle_id",
        )
    minimize = payload["minimize"]
    if not isinstance(minimize, str):
        raise WireProtocolError(
            f"plan request minimize must be a string, got {type(minimize).__name__}",
            field="minimize",
        )
    budget: Optional[float] = None
    if payload["max_trip_time_s"] is not None:
        budget = _finite_float(payload["max_trip_time_s"], "max_trip_time_s", "plan request")
    try:
        return PlanRequest(
            vehicle_id=vehicle_id,
            depart_s=_finite_float(payload["depart_s"], "depart_s", "plan request"),
            max_trip_time_s=budget,
            position_m=_finite_float(payload["position_m"], "position_m", "plan request"),
            speed_ms=_finite_float(payload["speed_ms"], "speed_ms", "plan request"),
            minimize=minimize,
        )
    except ConfigurationError as exc:
        # Includes InputValidationError from the request's own contract.
        raise WireProtocolError(f"plan request violates its contract: {exc}") from exc


def encode_request(req: PlanRequest) -> bytes:
    """Canonical JSON bytes of a request (equal requests → equal bytes)."""
    return _dumps(request_to_dict(req), "plan request")


def decode_request(data: Union[bytes, bytearray, str]) -> PlanRequest:
    """Parse and validate wire bytes into a :class:`PlanRequest`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, mistyped or non-finite
            fields, or a payload violating the request contract.
    """
    return request_from_dict(_loads(data, "plan request"))


# ----------------------------------------------------------------------
# PlanResponse <-> dict <-> bytes
# ----------------------------------------------------------------------
def response_to_dict(resp: PlanResponse) -> Dict[str, Any]:
    """A :class:`PlanResponse` as a plain, versioned JSON-ready dict.

    ``profile`` may be ``None`` (degraded tiers can answer without one);
    it is encoded as JSON ``null``.
    """
    return {
        "wire_version": WIRE_VERSION,
        "kind": RESPONSE_KIND,
        "vehicle_id": resp.vehicle_id,
        "profile": None if resp.profile is None else profile_to_dict(resp.profile),
        "energy_mah": float(resp.energy_mah),
        "trip_time_s": float(resp.trip_time_s),
        "cache_hit": bool(resp.cache_hit),
        "compute_time_s": float(resp.compute_time_s),
    }


def response_from_dict(payload: Dict[str, Any]) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from its dict form, strictly."""
    payload = _require_mapping(payload, "plan response")
    _check_keys(payload, _RESPONSE_KEYS, "plan response")
    _check_version_and_kind(payload, RESPONSE_KIND, "plan response")
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str) or not vehicle_id:
        raise WireProtocolError(
            "plan response vehicle_id must be a non-empty string", field="vehicle_id"
        )
    if not isinstance(payload["cache_hit"], bool):
        raise WireProtocolError(
            "plan response cache_hit must be a boolean", field="cache_hit"
        )
    profile = (
        None if payload["profile"] is None else profile_from_dict(payload["profile"])
    )
    return PlanResponse(
        vehicle_id=vehicle_id,
        profile=profile,
        energy_mah=_finite_float(payload["energy_mah"], "energy_mah", "plan response"),
        trip_time_s=_finite_float(payload["trip_time_s"], "trip_time_s", "plan response"),
        cache_hit=payload["cache_hit"],
        compute_time_s=_finite_float(
            payload["compute_time_s"], "compute_time_s", "plan response"
        ),
    )


def encode_response(resp: PlanResponse) -> bytes:
    """Canonical JSON bytes of a response (equal responses → equal bytes)."""
    return _dumps(response_to_dict(resp), "plan response")


def decode_response(data: Union[bytes, bytearray, str]) -> PlanResponse:
    """Parse and validate wire bytes into a :class:`PlanResponse`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, or mistyped/non-finite fields.
    """
    return response_from_dict(_loads(data, "plan response"))


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorFrame:
    """A server's typed failure answer to one frame.

    Attributes:
        code: One of the ``ERROR_*`` codes.
        message: Human-readable detail.
        retryable: Whether the sender may usefully retry (BUSY and
            server-side timeouts are transient; protocol and planning
            failures are not).
        vehicle_id: The request's vehicle, when the server could read it
            (lets a pipelining client correlate; empty otherwise).
        queue_depth: Admission-queue depth at rejection, for ``busy``.
        capacity: Admission bound, for ``busy``.
    """

    code: str
    message: str
    retryable: bool
    vehicle_id: str = ""
    queue_depth: Optional[int] = None
    capacity: Optional[int] = None


def error_to_dict(err: ErrorFrame) -> Dict[str, Any]:
    """An :class:`ErrorFrame` as a plain, versioned JSON-ready dict."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": ERROR_KIND,
        "code": err.code,
        "message": err.message,
        "retryable": bool(err.retryable),
        "vehicle_id": err.vehicle_id,
        "queue_depth": err.queue_depth,
        "capacity": err.capacity,
    }


def error_from_dict(payload: Dict[str, Any]) -> ErrorFrame:
    """Rebuild an :class:`ErrorFrame` from its dict form, strictly."""
    payload = _require_mapping(payload, "error frame")
    _check_keys(payload, _ERROR_KEYS, "error frame")
    _check_version_and_kind(payload, ERROR_KIND, "error frame")
    code = payload["code"]
    if code not in _ERROR_CODES:
        raise WireProtocolError(
            f"error frame has unknown code {code!r}", field="code"
        )
    if not isinstance(payload["message"], str):
        raise WireProtocolError("error frame message must be a string", field="message")
    if not isinstance(payload["retryable"], bool):
        raise WireProtocolError(
            "error frame retryable must be a boolean", field="retryable"
        )
    if not isinstance(payload["vehicle_id"], str):
        raise WireProtocolError(
            "error frame vehicle_id must be a string", field="vehicle_id"
        )
    for field in ("queue_depth", "capacity"):
        value = payload[field]
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise WireProtocolError(
                f"error frame {field} must be an integer or null", field=field
            )
    return ErrorFrame(
        code=code,
        message=payload["message"],
        retryable=payload["retryable"],
        vehicle_id=payload["vehicle_id"],
        queue_depth=payload["queue_depth"],
        capacity=payload["capacity"],
    )


def encode_error(err: ErrorFrame) -> bytes:
    """Canonical JSON bytes of an error frame."""
    return _dumps(error_to_dict(err), "error frame")


# ----------------------------------------------------------------------
# Health and stats frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthStatus:
    """A server's liveness answer.

    Attributes:
        status: ``"ok"`` while serving, ``"draining"`` once shutdown
            began (new work is shed, in-flight work completes).
        in_flight: Admitted-but-unfinished plan requests.
        capacity: The admission bound.
    """

    status: str
    in_flight: int
    capacity: int

    @property
    def draining(self) -> bool:
        """Whether the server has begun its graceful drain."""
        return self.status == HEALTH_DRAINING


def encode_health_request() -> bytes:
    """Canonical JSON bytes of a health probe."""
    return _dumps(
        {"wire_version": WIRE_VERSION, "kind": HEALTH_REQUEST_KIND}, "health request"
    )


def health_to_dict(health: HealthStatus) -> Dict[str, Any]:
    """A :class:`HealthStatus` as a plain, versioned JSON-ready dict."""
    return {
        "wire_version": WIRE_VERSION,
        "kind": HEALTH_RESPONSE_KIND,
        "status": health.status,
        "in_flight": int(health.in_flight),
        "capacity": int(health.capacity),
    }


def health_from_dict(payload: Dict[str, Any]) -> HealthStatus:
    """Rebuild a :class:`HealthStatus` from its dict form, strictly."""
    payload = _require_mapping(payload, "health response")
    _check_keys(payload, _HEALTH_RESPONSE_KEYS, "health response")
    _check_version_and_kind(payload, HEALTH_RESPONSE_KIND, "health response")
    status = payload["status"]
    if status not in (HEALTH_OK, HEALTH_DRAINING):
        raise WireProtocolError(
            f"health response has unknown status {status!r}", field="status"
        )
    for field in ("in_flight", "capacity"):
        value = payload[field]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise WireProtocolError(
                f"health response {field} must be a non-negative integer",
                field=field,
            )
    return HealthStatus(
        status=status, in_flight=payload["in_flight"], capacity=payload["capacity"]
    )


def encode_health_response(health: HealthStatus) -> bytes:
    """Canonical JSON bytes of a health answer."""
    return _dumps(health_to_dict(health), "health response")


def encode_stats_request() -> bytes:
    """Canonical JSON bytes of a stats probe."""
    return _dumps(
        {"wire_version": WIRE_VERSION, "kind": STATS_REQUEST_KIND}, "stats request"
    )


def encode_stats_response(document: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes wrapping one composed stats document.

    The document itself is schema-tagged
    (:data:`repro.cloud.stats.STATS_SCHEMA`); the wire only checks that
    it is a JSON object with finite numbers.
    """
    _require_mapping(document, "stats document")
    return _dumps(
        {
            "wire_version": WIRE_VERSION,
            "kind": STATS_RESPONSE_KIND,
            "document": document,
        },
        "stats response",
    )


def stats_from_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The stats document out of a stats-response dict, strictly."""
    payload = _require_mapping(payload, "stats response")
    _check_keys(payload, _STATS_RESPONSE_KEYS, "stats response")
    _check_version_and_kind(payload, STATS_RESPONSE_KIND, "stats response")
    return _require_mapping(payload["document"], "stats document")


# ----------------------------------------------------------------------
# Generic dispatch
# ----------------------------------------------------------------------
def decode_message(data: Union[bytes, bytearray, str]) -> Tuple[str, Any]:
    """Parse any wire payload and dispatch on its ``kind``.

    The server's per-frame entry point (and the client's reply parser):
    one JSON parse, one version check, then the kind-specific strict
    decoder.

    Returns:
        ``(kind, message)`` where ``message`` is a :class:`PlanRequest`,
        :class:`PlanResponse`, :class:`ErrorFrame`, :class:`HealthStatus`,
        a stats document dict, or ``None`` for the bodyless request
        kinds (``health_request``, ``stats_request``).

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version`` or
            ``kind``, or a payload failing its kind's schema.
    """
    payload = _require_mapping(_loads(data, "wire message"), "wire message")
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"wire message has wire_version {version!r}; this decoder speaks "
            f"version {WIRE_VERSION} only",
            field="wire_version",
            version=version,
        )
    kind = payload.get("kind")
    if kind == REQUEST_KIND:
        return kind, request_from_dict(payload)
    if kind == RESPONSE_KIND:
        return kind, response_from_dict(payload)
    if kind == ERROR_KIND:
        return kind, error_from_dict(payload)
    if kind == HEALTH_RESPONSE_KIND:
        return kind, health_from_dict(payload)
    if kind == STATS_RESPONSE_KIND:
        return kind, stats_from_dict(payload)
    if kind == HEALTH_REQUEST_KIND:
        _check_keys(payload, _HEALTH_REQUEST_KEYS, "health request")
        return kind, None
    if kind == STATS_REQUEST_KIND:
        _check_keys(payload, _STATS_REQUEST_KEYS, "stats request")
        return kind, None
    raise WireProtocolError(
        f"wire message has unknown kind {kind!r}", field="kind"
    )


def roundtrip_request(req: PlanRequest) -> PlanRequest:
    """``decode(encode(req))`` — the full serialization boundary, bit-exact."""
    return decode_request(encode_request(req))


def roundtrip_response(resp: PlanResponse) -> PlanResponse:
    """``decode(encode(resp))`` — the full serialization boundary, bit-exact."""
    return decode_response(encode_response(resp))
