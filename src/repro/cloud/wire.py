"""Wire layer: a versioned, schema-checked codec for the serving stack.

The deployment model of [6, 7] has vehicles exchanging plan requests and
velocity profiles with the cloud over wireless — which means a real
serialization boundary, not in-process object passing.  This module is
that boundary: :class:`~repro.cloud.messages.PlanRequest`,
:class:`~repro.cloud.messages.PlanResponse` and
:class:`~repro.core.profile.VelocityProfile` convert to plain dicts and
to canonical JSON bytes, and back, **bit-exactly**:

* floats are emitted with Python's shortest-repr rendering, which
  round-trips every finite IEEE-754 double exactly (including ``-0.0``);
* NaN/inf are rejected at encode time (``allow_nan=False``) and the
  decoder refuses the ``NaN``/``Infinity`` JSON extensions, so
  non-finite values can never cross the wire in either direction;
* dict keys are sorted and separators minimal, so equal messages encode
  to equal bytes (safe to hash, dedupe, or diff).

Every payload carries ``wire_version`` (:data:`WIRE_VERSION`) and a
``kind`` tag.  Decoding is strict: broken JSON, an unknown version, a
wrong kind, missing or unknown keys, and mistyped fields all raise the
typed :class:`~repro.errors.WireProtocolError` (a
:class:`~repro.errors.InputValidationError`, so the guard layer's
handlers apply unchanged).  Payloads that parse but violate the request
contract (negative departure, unknown objective, …) are re-raised as
:class:`WireProtocolError` too — the wire is one boundary with one
error type.

Version policy: ``wire_version`` is bumped only for **incompatible**
schema changes (a removed/renamed key, a semantic change to an existing
key).  Decoders accept exactly the versions they implement and reject
everything else loudly — there is no silent best-effort parsing of
foreign versions; a rolling fleet upgrade keeps old decoders alive until
no old producer remains.

Version 2 added ``corridor_id`` to plan requests and responses (the
routing key of the sharded serving stack).  Both versions stay decodable
(:data:`SUPPORTED_WIRE_VERSIONS`): a version-1 request carries no
corridor, so it decodes to the configurable ``default_corridor_id``
(:data:`~repro.cloud.messages.DEFAULT_CORRIDOR_ID` unless the caller
says otherwise) — old vehicles keep being served against the original
corridor.  Encoders emit version 2 by default but can render version-1
bytes (``version=1``) so a server can answer a v1 client in its own
dialect; encoding a *non-default-corridor* message at version 1 is
refused, because those bytes would silently drop the routing key.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.profile import VelocityProfile
from repro.cloud.messages import DEFAULT_CORRIDOR_ID, PlanRequest, PlanResponse
from repro.errors import ConfigurationError, WireProtocolError

__all__ = [
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "ERROR_BUSY",
    "ERROR_INTERNAL",
    "ERROR_PLANNING_FAILED",
    "ERROR_PROTOCOL",
    "ERROR_TIMEOUT",
    "ErrorFrame",
    "HealthStatus",
    "decode_message",
    "decode_message_versioned",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_health_request",
    "encode_health_response",
    "encode_request",
    "encode_response",
    "encode_stats_request",
    "encode_stats_response",
    "profile_from_dict",
    "profile_to_dict",
    "request_from_dict",
    "request_to_dict",
    "response_from_dict",
    "response_to_dict",
    "roundtrip_request",
    "roundtrip_response",
]

#: Current wire schema version; see the module docstring for the bump policy.
WIRE_VERSION = 2

#: Versions this decoder still speaks.  Version 1 predates ``corridor_id``;
#: its plan messages decode against a configurable default corridor.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: ``kind`` tags distinguishing the message types on the wire.
REQUEST_KIND = "plan_request"
RESPONSE_KIND = "plan_response"
ERROR_KIND = "error"
HEALTH_REQUEST_KIND = "health_request"
HEALTH_RESPONSE_KIND = "health_response"
STATS_REQUEST_KIND = "stats_request"
STATS_RESPONSE_KIND = "stats_response"

#: Error-frame codes.  ``retryable`` travels alongside the code so a
#: client does not need a table of which failures are transient.
ERROR_BUSY = "busy"                       # shed by admission control
ERROR_PLANNING_FAILED = "planning_failed"  # served, but infeasible
ERROR_PROTOCOL = "protocol"               # the peer's bytes were invalid
ERROR_TIMEOUT = "timeout"                 # server-side deadline expired
ERROR_INTERNAL = "internal"               # unexpected server failure
_ERROR_CODES = (
    ERROR_BUSY, ERROR_PLANNING_FAILED, ERROR_PROTOCOL, ERROR_TIMEOUT,
    ERROR_INTERNAL,
)

#: Health statuses a server reports.
HEALTH_OK = "ok"
HEALTH_DRAINING = "draining"

# Plan-message key sets by wire version: version 2 added ``corridor_id``.
_REQUEST_KEYS_V1 = {
    "wire_version", "kind", "vehicle_id", "depart_s", "max_trip_time_s",
    "position_m", "speed_ms", "minimize",
}
_REQUEST_KEYS = _REQUEST_KEYS_V1 | {"corridor_id"}
_REQUEST_KEYS_BY_VERSION = {1: _REQUEST_KEYS_V1, 2: _REQUEST_KEYS}
_RESPONSE_KEYS_V1 = {
    "wire_version", "kind", "vehicle_id", "profile", "energy_mah",
    "trip_time_s", "cache_hit", "compute_time_s",
}
_RESPONSE_KEYS = _RESPONSE_KEYS_V1 | {"corridor_id"}
_RESPONSE_KEYS_BY_VERSION = {1: _RESPONSE_KEYS_V1, 2: _RESPONSE_KEYS}
_PROFILE_KEYS = {"positions_m", "speeds_ms", "dwell_s", "start_time_s"}
_ERROR_KEYS = {
    "wire_version", "kind", "code", "message", "retryable", "vehicle_id",
    "queue_depth", "capacity",
}
_HEALTH_REQUEST_KEYS = {"wire_version", "kind"}
_HEALTH_RESPONSE_KEYS = {"wire_version", "kind", "status", "in_flight", "capacity"}
_STATS_REQUEST_KEYS = {"wire_version", "kind"}
_STATS_RESPONSE_KEYS = {"wire_version", "kind", "document"}


# ----------------------------------------------------------------------
# Schema checking helpers
# ----------------------------------------------------------------------
def _reject_nonfinite_token(token: str) -> None:
    """``parse_constant`` hook: refuse the NaN/Infinity JSON extensions."""
    raise WireProtocolError(f"non-finite JSON constant {token!r} is not allowed")


def _require_mapping(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_keys(payload: Dict[str, Any], expected: set, what: str) -> None:
    missing = expected - payload.keys()
    if missing:
        raise WireProtocolError(
            f"{what} is missing key(s) {sorted(missing)}", field=sorted(missing)[0]
        )
    unknown = payload.keys() - expected
    if unknown:
        raise WireProtocolError(
            f"{what} carries unknown key(s) {sorted(unknown)}", field=sorted(unknown)[0]
        )


def _check_version(payload: Dict[str, Any], what: str) -> int:
    version = payload.get("wire_version")
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireProtocolError(
            f"{what} has wire_version {version!r}; this decoder speaks "
            f"versions {SUPPORTED_WIRE_VERSIONS} only",
            field="wire_version",
            version=version,
        )
    return version


def _check_version_and_kind(payload: Dict[str, Any], kind: str, what: str) -> int:
    version = _check_version(payload, what)
    if payload.get("kind") != kind:
        raise WireProtocolError(
            f"{what} has kind {payload.get('kind')!r}, expected {kind!r}",
            field="kind",
        )
    return version


def _check_encode_version(
    version: int, corridor_id: str, what: str, default_corridor_id: str
) -> None:
    """Refuse encodings that would silently lose the routing key.

    Version-1 bytes carry no ``corridor_id``; dropping it is only safe
    when the peer's configured default corridor would restore exactly
    the corridor being dropped.
    """
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireProtocolError(
            f"cannot encode {what} at wire_version {version!r}; this encoder "
            f"speaks versions {SUPPORTED_WIRE_VERSIONS} only",
            field="wire_version",
            version=version,
        )
    if version < 2 and corridor_id != default_corridor_id:
        raise WireProtocolError(
            f"cannot encode {what} for corridor {corridor_id!r} at "
            "wire_version 1: version-1 bytes carry no corridor_id, so the "
            f"routing key would be silently replaced by the default "
            f"({default_corridor_id!r})",
            field="corridor_id",
            version=version,
        )


def _finite_float(value: Any, field: str, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireProtocolError(
            f"{what}.{field} must be a number, got {type(value).__name__}",
            field=field,
        )
    value = float(value)
    if not math.isfinite(value):
        raise WireProtocolError(f"{what}.{field} must be finite, got {value!r}", field=field)
    return value


def _float_list(value: Any, field: str, what: str) -> List[float]:
    if not isinstance(value, list):
        raise WireProtocolError(
            f"{what}.{field} must be an array, got {type(value).__name__}",
            field=field,
        )
    return [_finite_float(v, f"{field}[{i}]", what) for i, v in enumerate(value)]


def _dumps(document: Dict[str, Any], what: str) -> bytes:
    try:
        text = json.dumps(
            document, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        # json's own refusal of NaN/inf — surface it as the wire error.
        raise WireProtocolError(f"{what} carries a non-finite value: {exc}") from exc
    return text.encode("ascii")


def _loads(data: Union[bytes, bytearray, str], what: str) -> Any:
    if isinstance(data, (bytes, bytearray)):
        try:
            data = bytes(data).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"{what} is not valid UTF-8: {exc}") from exc
    try:
        return json.loads(data, parse_constant=_reject_nonfinite_token)
    except WireProtocolError:
        raise
    except (json.JSONDecodeError, TypeError) as exc:
        raise WireProtocolError(f"{what} is not valid JSON: {exc}") from exc


# ----------------------------------------------------------------------
# VelocityProfile <-> dict
# ----------------------------------------------------------------------
def profile_to_dict(profile: VelocityProfile) -> Dict[str, Any]:
    """A :class:`VelocityProfile` as a plain JSON-ready dict."""
    return {
        "positions_m": [float(v) for v in profile.positions_m],
        "speeds_ms": [float(v) for v in profile.speeds_ms],
        "dwell_s": [float(v) for v in profile.dwell_s],
        "start_time_s": float(profile.start_time_s),
    }


def profile_from_dict(payload: Dict[str, Any]) -> VelocityProfile:
    """Rebuild a :class:`VelocityProfile` from its dict form, strictly.

    Raises:
        WireProtocolError: Missing/unknown keys, mistyped or non-finite
            entries, or arrays the profile's own invariants reject
            (non-increasing positions, negative speeds, …).
    """
    payload = _require_mapping(payload, "profile")
    _check_keys(payload, _PROFILE_KEYS, "profile")
    positions = _float_list(payload["positions_m"], "positions_m", "profile")
    speeds = _float_list(payload["speeds_ms"], "speeds_ms", "profile")
    dwell = _float_list(payload["dwell_s"], "dwell_s", "profile")
    start = _finite_float(payload["start_time_s"], "start_time_s", "profile")
    try:
        return VelocityProfile(
            positions_m=positions, speeds_ms=speeds, dwell_s=dwell, start_time_s=start
        )
    except ConfigurationError as exc:
        raise WireProtocolError(f"profile violates its invariants: {exc}") from exc


# ----------------------------------------------------------------------
# PlanRequest <-> dict <-> bytes
# ----------------------------------------------------------------------
def request_to_dict(
    req: PlanRequest,
    version: int = WIRE_VERSION,
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> Dict[str, Any]:
    """A :class:`PlanRequest` as a plain, versioned JSON-ready dict.

    ``version=1`` renders the pre-corridor dialect (for talking to an
    old server); that is only legal when the request's corridor matches
    ``default_corridor_id``, because v1 bytes carry no routing key.
    """
    _check_encode_version(version, req.corridor_id, "plan request", default_corridor_id)
    document = {
        "wire_version": version,
        "kind": REQUEST_KIND,
        "vehicle_id": req.vehicle_id,
        "depart_s": float(req.depart_s),
        "max_trip_time_s": (
            None if req.max_trip_time_s is None else float(req.max_trip_time_s)
        ),
        "position_m": float(req.position_m),
        "speed_ms": float(req.speed_ms),
        "minimize": req.minimize,
    }
    if version >= 2:
        document["corridor_id"] = req.corridor_id
    return document


def request_from_dict(
    payload: Dict[str, Any],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> PlanRequest:
    """Rebuild a :class:`PlanRequest` from its dict form, strictly.

    A version-1 payload (no ``corridor_id`` key) decodes against
    ``default_corridor_id``; a version-2 payload must carry its corridor.
    """
    payload = _require_mapping(payload, "plan request")
    version = _check_version_and_kind(payload, REQUEST_KIND, "plan request")
    _check_keys(payload, _REQUEST_KEYS_BY_VERSION[version], "plan request")
    corridor_id = payload.get("corridor_id", default_corridor_id)
    if not isinstance(corridor_id, str):
        raise WireProtocolError(
            f"plan request corridor_id must be a string, got {type(corridor_id).__name__}",
            field="corridor_id",
        )
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str):
        raise WireProtocolError(
            f"plan request vehicle_id must be a string, got {type(vehicle_id).__name__}",
            field="vehicle_id",
        )
    minimize = payload["minimize"]
    if not isinstance(minimize, str):
        raise WireProtocolError(
            f"plan request minimize must be a string, got {type(minimize).__name__}",
            field="minimize",
        )
    budget: Optional[float] = None
    if payload["max_trip_time_s"] is not None:
        budget = _finite_float(payload["max_trip_time_s"], "max_trip_time_s", "plan request")
    try:
        return PlanRequest(
            vehicle_id=vehicle_id,
            depart_s=_finite_float(payload["depart_s"], "depart_s", "plan request"),
            max_trip_time_s=budget,
            position_m=_finite_float(payload["position_m"], "position_m", "plan request"),
            speed_ms=_finite_float(payload["speed_ms"], "speed_ms", "plan request"),
            minimize=minimize,
            corridor_id=corridor_id,
        )
    except ConfigurationError as exc:
        # Includes InputValidationError from the request's own contract.
        raise WireProtocolError(f"plan request violates its contract: {exc}") from exc


def encode_request(
    req: PlanRequest,
    version: int = WIRE_VERSION,
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> bytes:
    """Canonical JSON bytes of a request (equal requests → equal bytes)."""
    return _dumps(request_to_dict(req, version, default_corridor_id), "plan request")


def decode_request(
    data: Union[bytes, bytearray, str],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> PlanRequest:
    """Parse and validate wire bytes into a :class:`PlanRequest`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, mistyped or non-finite
            fields, or a payload violating the request contract.
    """
    return request_from_dict(_loads(data, "plan request"), default_corridor_id)


# ----------------------------------------------------------------------
# PlanResponse <-> dict <-> bytes
# ----------------------------------------------------------------------
def response_to_dict(
    resp: PlanResponse,
    version: int = WIRE_VERSION,
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> Dict[str, Any]:
    """A :class:`PlanResponse` as a plain, versioned JSON-ready dict.

    ``profile`` may be ``None`` (degraded tiers can answer without one);
    it is encoded as JSON ``null``.  ``version=1`` renders the
    pre-corridor dialect for answering v1 clients; legal only when the
    response's corridor matches ``default_corridor_id``.
    """
    _check_encode_version(
        version, resp.corridor_id, "plan response", default_corridor_id
    )
    document = {
        "wire_version": version,
        "kind": RESPONSE_KIND,
        "vehicle_id": resp.vehicle_id,
        "profile": None if resp.profile is None else profile_to_dict(resp.profile),
        "energy_mah": float(resp.energy_mah),
        "trip_time_s": float(resp.trip_time_s),
        "cache_hit": bool(resp.cache_hit),
        "compute_time_s": float(resp.compute_time_s),
    }
    if version >= 2:
        document["corridor_id"] = resp.corridor_id
    return document


def response_from_dict(
    payload: Dict[str, Any],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from its dict form, strictly."""
    payload = _require_mapping(payload, "plan response")
    version = _check_version_and_kind(payload, RESPONSE_KIND, "plan response")
    _check_keys(payload, _RESPONSE_KEYS_BY_VERSION[version], "plan response")
    corridor_id = payload.get("corridor_id", default_corridor_id)
    if not isinstance(corridor_id, str) or not corridor_id:
        raise WireProtocolError(
            "plan response corridor_id must be a non-empty string",
            field="corridor_id",
        )
    vehicle_id = payload["vehicle_id"]
    if not isinstance(vehicle_id, str) or not vehicle_id:
        raise WireProtocolError(
            "plan response vehicle_id must be a non-empty string", field="vehicle_id"
        )
    if not isinstance(payload["cache_hit"], bool):
        raise WireProtocolError(
            "plan response cache_hit must be a boolean", field="cache_hit"
        )
    profile = (
        None if payload["profile"] is None else profile_from_dict(payload["profile"])
    )
    return PlanResponse(
        vehicle_id=vehicle_id,
        profile=profile,
        energy_mah=_finite_float(payload["energy_mah"], "energy_mah", "plan response"),
        trip_time_s=_finite_float(payload["trip_time_s"], "trip_time_s", "plan response"),
        cache_hit=payload["cache_hit"],
        compute_time_s=_finite_float(
            payload["compute_time_s"], "compute_time_s", "plan response"
        ),
        corridor_id=corridor_id,
    )


def encode_response(
    resp: PlanResponse,
    version: int = WIRE_VERSION,
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> bytes:
    """Canonical JSON bytes of a response (equal responses → equal bytes)."""
    return _dumps(response_to_dict(resp, version, default_corridor_id), "plan response")


def decode_response(
    data: Union[bytes, bytearray, str],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> PlanResponse:
    """Parse and validate wire bytes into a :class:`PlanResponse`.

    Raises:
        WireProtocolError: Broken JSON, unknown ``wire_version``, wrong
            ``kind``, missing/unknown keys, or mistyped/non-finite fields.
    """
    return response_from_dict(_loads(data, "plan response"), default_corridor_id)


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorFrame:
    """A server's typed failure answer to one frame.

    Attributes:
        code: One of the ``ERROR_*`` codes.
        message: Human-readable detail.
        retryable: Whether the sender may usefully retry (BUSY and
            server-side timeouts are transient; protocol and planning
            failures are not).
        vehicle_id: The request's vehicle, when the server could read it
            (lets a pipelining client correlate; empty otherwise).
        queue_depth: Admission-queue depth at rejection, for ``busy``.
        capacity: Admission bound, for ``busy``.
    """

    code: str
    message: str
    retryable: bool
    vehicle_id: str = ""
    queue_depth: Optional[int] = None
    capacity: Optional[int] = None


def error_to_dict(err: ErrorFrame, version: int = WIRE_VERSION) -> Dict[str, Any]:
    """An :class:`ErrorFrame` as a plain, versioned JSON-ready dict.

    The error-frame schema is identical in every supported version; the
    ``version`` parameter only stamps the dialect the peer speaks.
    """
    _check_encode_version(version, DEFAULT_CORRIDOR_ID, "error frame", DEFAULT_CORRIDOR_ID)
    return {
        "wire_version": version,
        "kind": ERROR_KIND,
        "code": err.code,
        "message": err.message,
        "retryable": bool(err.retryable),
        "vehicle_id": err.vehicle_id,
        "queue_depth": err.queue_depth,
        "capacity": err.capacity,
    }


def error_from_dict(payload: Dict[str, Any]) -> ErrorFrame:
    """Rebuild an :class:`ErrorFrame` from its dict form, strictly."""
    payload = _require_mapping(payload, "error frame")
    _check_keys(payload, _ERROR_KEYS, "error frame")
    _check_version_and_kind(payload, ERROR_KIND, "error frame")
    code = payload["code"]
    if code not in _ERROR_CODES:
        raise WireProtocolError(
            f"error frame has unknown code {code!r}", field="code"
        )
    if not isinstance(payload["message"], str):
        raise WireProtocolError("error frame message must be a string", field="message")
    if not isinstance(payload["retryable"], bool):
        raise WireProtocolError(
            "error frame retryable must be a boolean", field="retryable"
        )
    if not isinstance(payload["vehicle_id"], str):
        raise WireProtocolError(
            "error frame vehicle_id must be a string", field="vehicle_id"
        )
    for field in ("queue_depth", "capacity"):
        value = payload[field]
        if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
            raise WireProtocolError(
                f"error frame {field} must be an integer or null", field=field
            )
    return ErrorFrame(
        code=code,
        message=payload["message"],
        retryable=payload["retryable"],
        vehicle_id=payload["vehicle_id"],
        queue_depth=payload["queue_depth"],
        capacity=payload["capacity"],
    )


def encode_error(err: ErrorFrame, version: int = WIRE_VERSION) -> bytes:
    """Canonical JSON bytes of an error frame."""
    return _dumps(error_to_dict(err, version), "error frame")


# ----------------------------------------------------------------------
# Health and stats frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthStatus:
    """A server's liveness answer.

    Attributes:
        status: ``"ok"`` while serving, ``"draining"`` once shutdown
            began (new work is shed, in-flight work completes).
        in_flight: Admitted-but-unfinished plan requests.
        capacity: The admission bound.
    """

    status: str
    in_flight: int
    capacity: int

    @property
    def draining(self) -> bool:
        """Whether the server has begun its graceful drain."""
        return self.status == HEALTH_DRAINING


def encode_health_request(version: int = WIRE_VERSION) -> bytes:
    """Canonical JSON bytes of a health probe."""
    _check_encode_version(
        version, DEFAULT_CORRIDOR_ID, "health request", DEFAULT_CORRIDOR_ID
    )
    return _dumps(
        {"wire_version": version, "kind": HEALTH_REQUEST_KIND}, "health request"
    )


def health_to_dict(health: HealthStatus, version: int = WIRE_VERSION) -> Dict[str, Any]:
    """A :class:`HealthStatus` as a plain, versioned JSON-ready dict."""
    _check_encode_version(
        version, DEFAULT_CORRIDOR_ID, "health response", DEFAULT_CORRIDOR_ID
    )
    return {
        "wire_version": version,
        "kind": HEALTH_RESPONSE_KIND,
        "status": health.status,
        "in_flight": int(health.in_flight),
        "capacity": int(health.capacity),
    }


def health_from_dict(payload: Dict[str, Any]) -> HealthStatus:
    """Rebuild a :class:`HealthStatus` from its dict form, strictly."""
    payload = _require_mapping(payload, "health response")
    _check_keys(payload, _HEALTH_RESPONSE_KEYS, "health response")
    _check_version_and_kind(payload, HEALTH_RESPONSE_KIND, "health response")
    status = payload["status"]
    if status not in (HEALTH_OK, HEALTH_DRAINING):
        raise WireProtocolError(
            f"health response has unknown status {status!r}", field="status"
        )
    for field in ("in_flight", "capacity"):
        value = payload[field]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise WireProtocolError(
                f"health response {field} must be a non-negative integer",
                field=field,
            )
    return HealthStatus(
        status=status, in_flight=payload["in_flight"], capacity=payload["capacity"]
    )


def encode_health_response(health: HealthStatus, version: int = WIRE_VERSION) -> bytes:
    """Canonical JSON bytes of a health answer."""
    return _dumps(health_to_dict(health, version), "health response")


def encode_stats_request(version: int = WIRE_VERSION) -> bytes:
    """Canonical JSON bytes of a stats probe."""
    _check_encode_version(
        version, DEFAULT_CORRIDOR_ID, "stats request", DEFAULT_CORRIDOR_ID
    )
    return _dumps(
        {"wire_version": version, "kind": STATS_REQUEST_KIND}, "stats request"
    )


def encode_stats_response(document: Dict[str, Any], version: int = WIRE_VERSION) -> bytes:
    """Canonical JSON bytes wrapping one composed stats document.

    The document itself is schema-tagged
    (:data:`repro.cloud.stats.STATS_SCHEMA`); the wire only checks that
    it is a JSON object with finite numbers.
    """
    _require_mapping(document, "stats document")
    _check_encode_version(
        version, DEFAULT_CORRIDOR_ID, "stats response", DEFAULT_CORRIDOR_ID
    )
    return _dumps(
        {
            "wire_version": version,
            "kind": STATS_RESPONSE_KIND,
            "document": document,
        },
        "stats response",
    )


def stats_from_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The stats document out of a stats-response dict, strictly."""
    payload = _require_mapping(payload, "stats response")
    _check_keys(payload, _STATS_RESPONSE_KEYS, "stats response")
    _check_version_and_kind(payload, STATS_RESPONSE_KIND, "stats response")
    return _require_mapping(payload["document"], "stats document")


# ----------------------------------------------------------------------
# Generic dispatch
# ----------------------------------------------------------------------
def decode_message_versioned(
    data: Union[bytes, bytearray, str],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> Tuple[str, Any, int]:
    """Parse any wire payload; dispatch on ``kind``, report the dialect.

    The server's per-frame entry point: one JSON parse, one version
    check, then the kind-specific strict decoder.  The returned version
    lets the server answer a version-1 vehicle in version-1 bytes.

    Returns:
        ``(kind, message, version)`` where ``message`` is a
        :class:`PlanRequest`, :class:`PlanResponse`, :class:`ErrorFrame`,
        :class:`HealthStatus`, a stats document dict, or ``None`` for
        the bodyless request kinds (``health_request``,
        ``stats_request``), and ``version`` is the payload's
        ``wire_version`` (one of :data:`SUPPORTED_WIRE_VERSIONS`).

    Raises:
        WireProtocolError: Broken JSON, unsupported ``wire_version``,
            unknown ``kind``, or a payload failing its kind's schema.
    """
    payload = _require_mapping(_loads(data, "wire message"), "wire message")
    version = _check_version(payload, "wire message")
    kind = payload.get("kind")
    if kind == REQUEST_KIND:
        return kind, request_from_dict(payload, default_corridor_id), version
    if kind == RESPONSE_KIND:
        return kind, response_from_dict(payload, default_corridor_id), version
    if kind == ERROR_KIND:
        return kind, error_from_dict(payload), version
    if kind == HEALTH_RESPONSE_KIND:
        return kind, health_from_dict(payload), version
    if kind == STATS_RESPONSE_KIND:
        return kind, stats_from_dict(payload), version
    if kind == HEALTH_REQUEST_KIND:
        _check_keys(payload, _HEALTH_REQUEST_KEYS, "health request")
        return kind, None, version
    if kind == STATS_REQUEST_KIND:
        _check_keys(payload, _STATS_REQUEST_KEYS, "stats request")
        return kind, None, version
    raise WireProtocolError(
        f"wire message has unknown kind {kind!r}", field="kind"
    )


def decode_message(
    data: Union[bytes, bytearray, str],
    default_corridor_id: str = DEFAULT_CORRIDOR_ID,
) -> Tuple[str, Any]:
    """:func:`decode_message_versioned` without the dialect — for callers
    (like the client's reply parser) that don't answer in kind."""
    kind, message, _ = decode_message_versioned(data, default_corridor_id)
    return kind, message


def roundtrip_request(req: PlanRequest) -> PlanRequest:
    """``decode(encode(req))`` — the full serialization boundary, bit-exact."""
    return decode_request(encode_request(req))


def roundtrip_response(resp: PlanResponse) -> PlanResponse:
    """``decode(encode(resp))`` — the full serialization boundary, bit-exact."""
    return decode_response(encode_response(resp))
