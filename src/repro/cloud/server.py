"""The network front door: an asyncio TCP plan server.

Everything below this module already worked in-process — the versioned
wire codec, the bounded :class:`~repro.cloud.plan_cache.PlanCache`, the
coalescing/batching :class:`~repro.cloud.dispatcher.PlanDispatcher` —
but nothing *listened*.  :class:`PlanServer` is the missing layer: a
socket endpoint speaking the wire protocol over length-prefixed frames
(:mod:`repro.cloud.framing`), built so that overload and garbage
degrade into typed, bounded failures rather than hangs:

* **Bounded admission with load shedding** — at most ``max_pending``
  plan requests are in flight; request number ``max_pending + 1`` is
  answered immediately with a typed ``busy`` error frame (surfaced
  client-side as :class:`~repro.errors.ServerOverloadError`, which
  feeds the resilient client's circuit breaker).  The server never
  queues unboundedly, so admitted-request latency stays bounded no
  matter the offered load.
* **Per-connection deadlines** — an idle read deadline reaps silent
  connections, a write deadline bounds slow consumers, and every
  admitted request carries a serving deadline through the dispatcher;
  expiry answers a retryable ``timeout`` error frame.
* **Malformed-frame containment** — a payload that fails the wire
  schema is answered with a ``protocol`` error frame and the connection
  lives on; broken *framing* (oversized/zero-length header, truncated
  stream) also gets the typed frame but then closes the connection,
  since stream framing cannot resynchronize.  One bad client never
  takes down the accept loop or other connections.
* **Health and stats kinds** — ``health_request`` answers liveness and
  drain state without touching the planner; ``stats_request`` returns
  the composed serving-stack document
  (:func:`repro.cloud.stats.compose_stats_document`) with a ``server``
  section added.
* **Graceful drain** — :meth:`PlanServer.drain` stops accepting, sheds
  not-yet-admitted requests with ``busy``, lets every admitted request
  finish and flush its response, then flushes the final stats document
  exactly once and closes what remains.

Synchronous callers (tests, benchmarks, the CLI) use
:func:`serve_in_background`, which runs the event loop in a daemon
thread and returns a :class:`ServerHandle` with the bound address and a
thread-safe :meth:`~ServerHandle.drain`.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.cloud import wire
from repro.cloud.dispatcher import PlanDispatcher
from repro.cloud.messages import DEFAULT_CORRIDOR_ID
from repro.cloud.framing import DEFAULT_MAX_FRAME_BYTES, FrameAssembler, encode_frame
from repro.cloud.service import CloudPlannerService
from repro.cloud.stats import compose_stats_document
from repro.errors import (
    ConfigurationError,
    DispatchDeadlineError,
    InputValidationError,
    PlanningFailedError,
    WireProtocolError,
)

__all__ = ["PlanServer", "ServerHandle", "ServerStats", "serve_in_background"]


@dataclass
class ServerStats:
    """Operational counters of one plan server.

    Attributes:
        connections: Connections accepted.
        frames: Well-framed payloads received.
        plan_requests: Plan requests decoded (admitted or shed).
        served: Plan responses written.
        planning_failures: Requests answered ``planning_failed``.
        busy_rejections: Requests shed with a ``busy`` frame (admission
            bound hit, or draining).
        drain_rejections: The subset of ``busy_rejections`` issued while
            draining.
        timeouts: Requests answered ``timeout`` (serving deadline).
        protocol_errors: Payloads answered with a ``protocol`` frame
            (schema violations and invalid requests).
        malformed_frames: The subset of protocol errors raised by the
            frame layer itself (bad header, truncated stream) — these
            also close the connection.
        internal_errors: Requests answered ``internal``.
        health_requests: Health probes answered.
        stats_requests: Stats probes answered.
        read_timeouts: Connections reaped by the idle read deadline.
        write_timeouts: Connections reaped by the write deadline.
        peak_in_flight: High-water mark of admitted concurrent requests.
    """

    connections: int = 0
    frames: int = 0
    plan_requests: int = 0
    served: int = 0
    planning_failures: int = 0
    busy_rejections: int = 0
    drain_rejections: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    malformed_frames: int = 0
    internal_errors: int = 0
    health_requests: int = 0
    stats_requests: int = 0
    read_timeouts: int = 0
    write_timeouts: int = 0
    peak_in_flight: int = 0


class PlanServer:
    """An asyncio TCP front door over a planning service.

    Args:
        service: The synchronous :class:`CloudPlannerService` to serve.
        host: Bind host (loopback by default).
        port: Bind port; 0 picks an ephemeral port (read
            :attr:`address` after :meth:`start`).
        dispatcher: The :class:`PlanDispatcher` that threads the
            service; built (and owned, i.e. shut down on drain) when
            ``None``.
        workers: Pool size for an owned dispatcher.
        max_pending: Admission bound — admitted-but-unfinished plan
            requests above this are shed with ``busy``.
        request_timeout_s: Serving deadline per admitted request; also
            the dispatcher deadline, so queued work expires typed.
        idle_timeout_s: Per-connection read deadline between frames.
        write_timeout_s: Per-response write (drain) deadline.
        max_frame_bytes: Frame-size cap enforced before allocation.
        stats_path: When set, the drain flushes the final stats
            document to this JSON file.
        name: Metrics namespace for :mod:`repro.obs` counters.
        default_corridor_id: The corridor that version-1 wire clients
            (whose requests carry no ``corridor_id``) are served
            against.  Replies always speak the caller's wire dialect,
            so a fleet of v1 clients keeps working across the sharding
            upgrade unchanged.
    """

    def __init__(
        self,
        service: CloudPlannerService,
        host: str = "127.0.0.1",
        port: int = 0,
        dispatcher: Optional[PlanDispatcher] = None,
        workers: int = 2,
        max_pending: int = 16,
        request_timeout_s: float = 30.0,
        idle_timeout_s: float = 30.0,
        write_timeout_s: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        stats_path: Optional[str] = None,
        name: str = "cloud.server",
        default_corridor_id: str = DEFAULT_CORRIDOR_ID,
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError(
                f"admission bound must be >= 1, got {max_pending}"
            )
        if request_timeout_s <= 0 or idle_timeout_s <= 0 or write_timeout_s <= 0:
            raise ConfigurationError("server deadlines must be positive")
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_pending = int(max_pending)
        self.request_timeout_s = float(request_timeout_s)
        self.idle_timeout_s = float(idle_timeout_s)
        self.write_timeout_s = float(write_timeout_s)
        self.max_frame_bytes = int(max_frame_bytes)
        self.stats_path = stats_path
        self.name = name
        self.default_corridor_id = str(default_corridor_id)
        self._owns_dispatcher = dispatcher is None
        self.dispatcher = dispatcher or PlanDispatcher(
            service, workers=workers, name=f"{name}.dispatch"
        )
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._flushed = False
        self.final_stats: Optional[Dict[str, Any]] = None
        self._in_flight = 0
        self._idle: Optional[asyncio.Event] = None
        self._writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        obs.get_registry().inc(f"{self.name}.started")

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        """Whether the graceful drain has begun."""
        return self._draining

    @property
    def in_flight(self) -> int:
        """Admitted-but-unfinished plan requests."""
        return self._in_flight

    async def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown: shed new work, finish in-flight, flush once.

        Idempotent — a second drain returns the already-flushed stats
        document.  Sequence: stop accepting (new connects are refused at
        the socket), mark draining (plan requests arriving on live
        connections are shed with ``busy``), wait for every admitted
        request's response to be written, flush the final stats document
        exactly once, close remaining connections, and shut down an
        owned dispatcher.

        Returns:
            The final composed stats document.
        """
        if self._flushed:
            return self.final_stats
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
        except asyncio.TimeoutError:
            pass  # flush what we have; stragglers get their sockets closed
        document = self._flush_stats()
        for writer in list(self._writers):
            writer.close()
        if self._owns_dispatcher:
            self.dispatcher.shutdown(wait=False)
        obs.get_registry().inc(f"{self.name}.drained")
        return document

    def _flush_stats(self) -> Dict[str, Any]:
        """Compose and (once) persist the final stats document."""
        if self._flushed:
            return self.final_stats
        self._flushed = True
        document = self.stats_document()
        self.final_stats = document
        if self.stats_path:
            with open(self.stats_path, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return document

    def stats_document(self) -> Dict[str, Any]:
        """The composed serving-stack document plus a ``server`` section."""
        document = compose_stats_document(
            service=self.service, dispatcher=self.dispatcher
        )
        document["server"] = {
            **self.stats.__dict__,
            "in_flight": self._in_flight,
            "max_pending": self.max_pending,
            "draining": self._draining,
        }
        return document

    def stats_snapshot(self) -> ServerStats:
        """A point-in-time copy of the counters."""
        return replace(self.stats)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> bool:
        """Write one frame under the write deadline; False closes the conn."""
        try:
            writer.write(encode_frame(payload, self.max_frame_bytes))
            await asyncio.wait_for(writer.drain(), timeout=self.write_timeout_s)
            return True
        except asyncio.TimeoutError:
            self.stats.write_timeouts += 1
            obs.get_registry().inc(f"{self.name}.write_timeouts")
            return False
        except (ConnectionError, OSError):
            return False

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        code: str,
        message: str,
        retryable: bool,
        vehicle_id: str = "",
        queue_depth: Optional[int] = None,
        capacity: Optional[int] = None,
        version: int = wire.WIRE_VERSION,
    ) -> bool:
        return await self._send(
            writer,
            wire.encode_error(
                wire.ErrorFrame(
                    code=code,
                    message=message,
                    retryable=retryable,
                    vehicle_id=vehicle_id,
                    queue_depth=queue_depth,
                    capacity=capacity,
                ),
                version=version,
            ),
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = obs.get_registry()
        self.stats.connections += 1
        registry.inc(f"{self.name}.connections")
        self._writers.add(writer)
        peer = writer.get_extra_info("peername")
        assembler = FrameAssembler(
            max_frame_bytes=self.max_frame_bytes, what=f"connection {peer}"
        )
        try:
            while True:
                try:
                    chunk = await asyncio.wait_for(
                        reader.read(65536), timeout=self.idle_timeout_s
                    )
                except asyncio.TimeoutError:
                    self.stats.read_timeouts += 1
                    registry.inc(f"{self.name}.read_timeouts")
                    return
                except (ConnectionError, OSError):
                    return
                if not chunk:
                    # EOF.  A partial buffered frame is a truncation the
                    # peer will never complete; count it, then drop the
                    # connection (there is no one left to answer).
                    try:
                        assembler.finish()
                    except WireProtocolError:
                        self.stats.malformed_frames += 1
                        self.stats.protocol_errors += 1
                        registry.inc(f"{self.name}.malformed_frames")
                    return
                try:
                    frames = assembler.feed(chunk)
                except WireProtocolError as exc:
                    # Broken framing poisons the stream: answer typed,
                    # then close — resync is impossible.
                    self.stats.malformed_frames += 1
                    self.stats.protocol_errors += 1
                    registry.inc(f"{self.name}.malformed_frames")
                    await self._send_error(
                        writer, wire.ERROR_PROTOCOL, str(exc), retryable=False
                    )
                    return
                for payload in frames:
                    self.stats.frames += 1
                    if not await self._handle_frame(payload, writer, registry):
                        return
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_frame(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        registry: obs.MetricsRegistry,
    ) -> bool:
        """Serve one well-framed payload; False tears down the connection.

        Replies speak the caller's wire dialect: the decoded frame's
        version is threaded into every response/error encode, so a v1
        client never sees a v2 key it cannot parse.
        """
        try:
            kind, message, version = wire.decode_message_versioned(
                payload, default_corridor_id=self.default_corridor_id
            )
        except WireProtocolError as exc:
            # Payload-level garbage is contained: typed answer, and the
            # connection (whose framing is intact) lives on.
            self.stats.protocol_errors += 1
            registry.inc(f"{self.name}.protocol_errors")
            return await self._send_error(
                writer, wire.ERROR_PROTOCOL, str(exc), retryable=False
            )
        if kind == wire.HEALTH_REQUEST_KIND:
            self.stats.health_requests += 1
            registry.inc(f"{self.name}.health_requests")
            status = wire.HEALTH_DRAINING if self._draining else wire.HEALTH_OK
            return await self._send(
                writer,
                wire.encode_health_response(
                    wire.HealthStatus(
                        status=status,
                        in_flight=self._in_flight,
                        capacity=self.max_pending,
                    ),
                    version=version,
                ),
            )
        if kind == wire.STATS_REQUEST_KIND:
            self.stats.stats_requests += 1
            registry.inc(f"{self.name}.stats_requests")
            return await self._send(
                writer,
                wire.encode_stats_response(self.stats_document(), version=version),
            )
        if kind == wire.REQUEST_KIND:
            return await self._handle_plan_request(
                message, writer, registry, version
            )
        # A client pushing server->client kinds (responses, errors) is
        # off-protocol; answer typed and keep listening.
        self.stats.protocol_errors += 1
        registry.inc(f"{self.name}.protocol_errors")
        return await self._send_error(
            writer,
            wire.ERROR_PROTOCOL,
            f"unexpected {kind!r} message sent to a server",
            retryable=False,
            version=version,
        )

    async def _handle_plan_request(
        self,
        req,
        writer: asyncio.StreamWriter,
        registry: obs.MetricsRegistry,
        version: int = wire.WIRE_VERSION,
    ) -> bool:
        self.stats.plan_requests += 1
        registry.inc(f"{self.name}.plan_requests")
        if self._draining or self._in_flight >= self.max_pending:
            self.stats.busy_rejections += 1
            registry.inc(f"{self.name}.busy_rejections")
            if self._draining:
                self.stats.drain_rejections += 1
                registry.inc(f"{self.name}.drain_rejections")
                detail = "server is draining"
            else:
                detail = (
                    f"admission queue full ({self._in_flight}/{self.max_pending})"
                )
            return await self._send_error(
                writer,
                wire.ERROR_BUSY,
                f"request for {req.vehicle_id!r} shed: {detail}",
                retryable=True,
                vehicle_id=req.vehicle_id,
                queue_depth=self._in_flight,
                capacity=self.max_pending,
                version=version,
            )
        self._in_flight += 1
        self.stats.peak_in_flight = max(self.stats.peak_in_flight, self._in_flight)
        self._idle.clear()
        try:
            future = self.dispatcher.submit(req, deadline_s=self.request_timeout_s)
            try:
                response = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=self.request_timeout_s
                )
            except asyncio.TimeoutError:
                future.cancel()
                self.stats.timeouts += 1
                registry.inc(f"{self.name}.timeouts")
                return await self._send_error(
                    writer,
                    wire.ERROR_TIMEOUT,
                    f"request for {req.vehicle_id!r} missed the server's "
                    f"{self.request_timeout_s:.2f} s serving deadline",
                    retryable=True,
                    vehicle_id=req.vehicle_id,
                    version=version,
                )
            except DispatchDeadlineError as exc:
                self.stats.timeouts += 1
                registry.inc(f"{self.name}.timeouts")
                return await self._send_error(
                    writer,
                    wire.ERROR_TIMEOUT,
                    str(exc),
                    retryable=True,
                    vehicle_id=req.vehicle_id,
                    version=version,
                )
            except PlanningFailedError as exc:
                self.stats.planning_failures += 1
                registry.inc(f"{self.name}.planning_failures")
                return await self._send_error(
                    writer,
                    wire.ERROR_PLANNING_FAILED,
                    str(exc),
                    retryable=False,
                    vehicle_id=req.vehicle_id,
                    version=version,
                )
            except InputValidationError as exc:
                # The request parsed but violated the service contract
                # (position beyond the route, say) — the client's fault.
                self.stats.protocol_errors += 1
                registry.inc(f"{self.name}.protocol_errors")
                return await self._send_error(
                    writer,
                    wire.ERROR_PROTOCOL,
                    str(exc),
                    retryable=False,
                    vehicle_id=req.vehicle_id,
                    version=version,
                )
            except Exception as exc:  # noqa: BLE001 - contained per-request
                self.stats.internal_errors += 1
                registry.inc(f"{self.name}.internal_errors")
                return await self._send_error(
                    writer,
                    wire.ERROR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    retryable=False,
                    vehicle_id=req.vehicle_id,
                    version=version,
                )
            ok = await self._send(
                writer,
                wire.encode_response(
                    response,
                    version=version,
                    default_corridor_id=self.default_corridor_id,
                ),
            )
            if ok:
                self.stats.served += 1
                registry.inc(f"{self.name}.served")
            return ok
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()


class ServerHandle:
    """Thread-safe handle to a :class:`PlanServer` running in a thread.

    Usable as a context manager; exiting drains the server.
    """

    def __init__(
        self, server: PlanServer, loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        """The server's bound ``(host, port)``."""
        return self.server.address

    def stats_snapshot(self) -> ServerStats:
        """The server's counters (int reads are atomic under the GIL)."""
        return self.server.stats_snapshot()

    @property
    def final_stats(self) -> Optional[Dict[str, Any]]:
        """The flushed stats document (``None`` before the drain)."""
        return self.server.final_stats

    def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Run the graceful drain and stop the loop thread (idempotent)."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(timeout_s=timeout_s), self._loop
            )
            document = future.result(timeout=timeout_s + 10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            return document
        return self.server.final_stats

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()


def serve_in_background(service: CloudPlannerService, **kwargs) -> ServerHandle:
    """Start a :class:`PlanServer` on a daemon thread; returns its handle.

    The server is fully started (bound, accepting) when this returns, so
    ``handle.address`` is immediately connectable.  Any other keyword
    argument is passed through to :class:`PlanServer`.
    """
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            server = PlanServer(service, **kwargs)
            loop.run_until_complete(server.start())
            holder["server"] = server
            holder["loop"] = loop
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            holder["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="plan-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise ConfigurationError("plan server failed to start within 30 s")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)
