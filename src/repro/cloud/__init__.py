"""Vehicular-cloud planning service.

The paper's introduction describes the deployment model of [6, 7]: each
vehicle uploads its state (starting time and route) to a cloud service
over wireless, and the cloud computes the optimal velocity profile.  This
subpackage implements that service as a four-layer serving stack on top
of the planners:

* :mod:`repro.cloud.messages` — the request/response records vehicles
  exchange with the service.
* :mod:`repro.cloud.wire` — the wire layer: a versioned, schema-checked
  codec between those records and canonical JSON bytes (bit-exact round
  trips; malformed payloads raise typed errors).
* :mod:`repro.cloud.plan_cache` — the cache layer: a bounded,
  thread-safe LRU+TTL store with full hit/miss/eviction accounting.
* :mod:`repro.cloud.service` — the serving layer: a thin phase-aware
  facade that validates, consults the caches and plans on misses.
* :mod:`repro.cloud.dispatcher` — the dispatch layer: a worker pool with
  single-flight coalescing and per-request deadlines.
* :mod:`repro.cloud.stats` — one JSON document composing every
  serving-stack counter.
* :mod:`repro.cloud.fleet` — fleet-scale evaluation: many EVs request
  plans (serially or through the dispatcher) and the study aggregates
  fleet energy against human-driving references.
* :mod:`repro.cloud.framing` — length-prefixed frames restoring message
  boundaries on a TCP byte stream, with typed truncation/oversize errors.
* :mod:`repro.cloud.server` — the network front door: an asyncio TCP
  server with bounded admission (typed BUSY sheds), per-connection
  deadlines, malformed-frame containment and graceful drain.
* :mod:`repro.cloud.netclient` — the vehicle-side socket transport,
  mapping every wire failure into the resilience stack's typed errors.
* :mod:`repro.cloud.registry` — the corridor registry: immutable
  corridor specs (road, traffic, planner recipe) and a catalog that
  lazily builds one isolated serving runtime per corridor.
* :mod:`repro.cloud.router` — the request router: corridor-sharded
  serving behind the same service facade, so the whole stack above it
  (dispatcher, server, transport, fleet study) is corridor-aware for
  free.
"""

from repro.cloud.messages import DEFAULT_CORRIDOR_ID, PlanRequest, PlanResponse
from repro.cloud.plan_cache import CacheStats, PlanCache
from repro.cloud.registry import (
    CorridorCatalog,
    CorridorRuntime,
    CorridorSpec,
    builtin_catalog,
)
from repro.cloud.router import PlanRouter, RouterStats
from repro.cloud.service import CloudPlannerService, ServiceStats
from repro.cloud.dispatcher import DispatcherStats, PlanDispatcher
from repro.cloud.fleet import CorridorFleetSlice, FleetStudy, FleetResult
from repro.cloud.framing import FrameAssembler, encode_frame, split_frames
from repro.cloud.netclient import NetworkPlanTransport, TransportStats
from repro.cloud.server import PlanServer, ServerHandle, ServerStats, serve_in_background
from repro.cloud.stats import STATS_SCHEMA, compose_stats_document

__all__ = [
    "CacheStats",
    "CloudPlannerService",
    "CorridorCatalog",
    "CorridorFleetSlice",
    "CorridorRuntime",
    "CorridorSpec",
    "DEFAULT_CORRIDOR_ID",
    "DispatcherStats",
    "FleetResult",
    "FleetStudy",
    "FrameAssembler",
    "NetworkPlanTransport",
    "PlanCache",
    "PlanDispatcher",
    "PlanRequest",
    "PlanResponse",
    "PlanRouter",
    "PlanServer",
    "RouterStats",
    "STATS_SCHEMA",
    "ServerHandle",
    "ServerStats",
    "ServiceStats",
    "TransportStats",
    "builtin_catalog",
    "compose_stats_document",
    "encode_frame",
    "serve_in_background",
    "split_frames",
]
