"""Vehicular-cloud planning service.

The paper's introduction describes the deployment model of [6, 7]: each
vehicle uploads its state (starting time and route) to a cloud service
over wireless, and the cloud computes the optimal velocity profile.  This
subpackage implements that service layer on top of the planners:

* :mod:`repro.cloud.messages` — the request/response records vehicles
  exchange with the service.
* :mod:`repro.cloud.service` — the planning service with a phase-aware
  plan cache (plans repeat every signal cycle, so most requests are hits).
* :mod:`repro.cloud.fleet` — fleet-scale evaluation: many EVs request
  plans over a horizon and drive them through the corridor simulator.
"""

from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService, ServiceStats
from repro.cloud.fleet import FleetStudy, FleetResult

__all__ = [
    "CloudPlannerService",
    "FleetResult",
    "FleetStudy",
    "PlanRequest",
    "PlanResponse",
    "ServiceStats",
]
