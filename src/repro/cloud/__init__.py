"""Vehicular-cloud planning service.

The paper's introduction describes the deployment model of [6, 7]: each
vehicle uploads its state (starting time and route) to a cloud service
over wireless, and the cloud computes the optimal velocity profile.  This
subpackage implements that service as a four-layer serving stack on top
of the planners:

* :mod:`repro.cloud.messages` — the request/response records vehicles
  exchange with the service.
* :mod:`repro.cloud.wire` — the wire layer: a versioned, schema-checked
  codec between those records and canonical JSON bytes (bit-exact round
  trips; malformed payloads raise typed errors).
* :mod:`repro.cloud.plan_cache` — the cache layer: a bounded,
  thread-safe LRU+TTL store with full hit/miss/eviction accounting.
* :mod:`repro.cloud.service` — the serving layer: a thin phase-aware
  facade that validates, consults the caches and plans on misses.
* :mod:`repro.cloud.dispatcher` — the dispatch layer: a worker pool with
  single-flight coalescing and per-request deadlines.
* :mod:`repro.cloud.stats` — one JSON document composing every
  serving-stack counter.
* :mod:`repro.cloud.fleet` — fleet-scale evaluation: many EVs request
  plans (serially or through the dispatcher) and the study aggregates
  fleet energy against human-driving references.
"""

from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.plan_cache import CacheStats, PlanCache
from repro.cloud.service import CloudPlannerService, ServiceStats
from repro.cloud.dispatcher import DispatcherStats, PlanDispatcher
from repro.cloud.fleet import FleetStudy, FleetResult
from repro.cloud.stats import STATS_SCHEMA, compose_stats_document

__all__ = [
    "CacheStats",
    "CloudPlannerService",
    "DispatcherStats",
    "FleetResult",
    "FleetStudy",
    "PlanCache",
    "PlanDispatcher",
    "PlanRequest",
    "PlanResponse",
    "STATS_SCHEMA",
    "ServiceStats",
    "compose_stats_document",
]
