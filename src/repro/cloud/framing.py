"""Length-prefixed framing for the wire protocol's byte stream.

TCP delivers a byte stream, not messages; the framing layer restores
message boundaries so the codec in :mod:`repro.cloud.wire` always sees
one complete payload.  A frame is a 4-byte big-endian unsigned length
``N`` followed by exactly ``N`` payload bytes.

The decode side is defensive — this is the first code that touches
attacker-controllable bytes, so it never lets a raw ``struct`` or
slicing error escape:

* a declared length of zero, or above the frame cap, raises a typed
  :class:`~repro.errors.WireProtocolError` carrying the **byte offset**
  of the offending header and the declared/available byte counts;
* a stream that ends mid-header or mid-body (truncation) raises the
  same typed error from :meth:`FrameAssembler.finish`, again with
  offsets, instead of silently dropping the partial frame;
* :class:`FrameAssembler` is incremental — feed it chunks as they
  arrive off a socket and collect whole payloads — so a slow sender
  never blocks on artificial read sizes.

The frame cap bounds per-connection memory *before* any allocation: an
adversarial 4 GiB length prefix is rejected from its 4 header bytes
alone.
"""

from __future__ import annotations

import struct
from typing import List, Union

from repro.errors import ConfigurationError, WireProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "FrameAssembler",
    "encode_frame",
    "split_frames",
]

#: Bytes of the big-endian unsigned length prefix.
HEADER_BYTES = 4

#: Default cap on one frame's payload.  Generous for this protocol — the
#: largest legitimate message (a plan response over a fine grid) is tens
#: of kilobytes — while keeping a hostile length prefix cheap to refuse.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


def encode_frame(
    payload: Union[bytes, bytearray],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """``payload`` wrapped in its length prefix.

    Raises:
        WireProtocolError: Empty payload, or payload above the cap —
            refusing at encode time keeps a compliant peer from ever
            producing a frame its counterpart must reject.
    """
    size = len(payload)
    if size == 0:
        raise WireProtocolError("cannot encode an empty frame")
    if size > max_frame_bytes:
        raise WireProtocolError(
            f"frame payload of {size} bytes exceeds the {max_frame_bytes}-byte cap",
            expected_bytes=max_frame_bytes,
            got_bytes=size,
        )
    return _HEADER.pack(size) + bytes(payload)


class FrameAssembler:
    """Incremental frame decoder over an arriving byte stream.

    Feed it chunks in arrival order; it returns every completed payload
    and buffers the rest.  All offsets in raised errors are absolute
    byte positions in the stream since construction, so a log line can
    point at the exact corrupt header.

    Args:
        max_frame_bytes: Reject any frame declaring a larger payload.
        what: Stream name used in error messages (peer address, say).
    """

    def __init__(
        self,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        what: str = "frame stream",
    ) -> None:
        if max_frame_bytes < 1:
            raise ConfigurationError(
                f"frame cap must be >= 1 byte, got {max_frame_bytes}"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self.what = what
        self._buffer = bytearray()
        self._offset = 0  # absolute stream offset of buffer[0]

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: Union[bytes, bytearray]) -> List[bytes]:
        """Absorb ``data``; return every payload completed by it.

        Raises:
            WireProtocolError: A frame header declared a zero-length or
                over-cap payload.  The assembler is then poisoned —
                stream framing cannot be resynchronized after a bad
                header, so the connection must be torn down.
        """
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return frames
            (size,) = _HEADER.unpack_from(self._buffer)
            if size == 0:
                raise WireProtocolError(
                    f"{self.what}: zero-length frame at byte {self._offset}",
                    offset=self._offset,
                    expected_bytes=1,
                    got_bytes=0,
                )
            if size > self.max_frame_bytes:
                raise WireProtocolError(
                    f"{self.what}: frame at byte {self._offset} declares "
                    f"{size} bytes, above the {self.max_frame_bytes}-byte cap",
                    offset=self._offset,
                    expected_bytes=self.max_frame_bytes,
                    got_bytes=size,
                )
            if len(self._buffer) < HEADER_BYTES + size:
                return frames
            frames.append(bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + size]))
            del self._buffer[: HEADER_BYTES + size]
            self._offset += HEADER_BYTES + size

    def finish(self) -> None:
        """Declare end-of-stream; a buffered partial frame is an error.

        Raises:
            WireProtocolError: The stream ended mid-header or mid-body
                (a truncated frame), with the offset of the incomplete
                frame and how many of its bytes arrived.
        """
        pending = len(self._buffer)
        if pending == 0:
            return
        if pending < HEADER_BYTES:
            raise WireProtocolError(
                f"{self.what}: stream ended mid-header at byte {self._offset} "
                f"({pending} of {HEADER_BYTES} header bytes)",
                offset=self._offset,
                expected_bytes=HEADER_BYTES,
                got_bytes=pending,
            )
        (size,) = _HEADER.unpack_from(self._buffer)
        raise WireProtocolError(
            f"{self.what}: stream ended mid-frame at byte {self._offset} "
            f"({pending - HEADER_BYTES} of {size} payload bytes)",
            offset=self._offset,
            expected_bytes=size,
            got_bytes=pending - HEADER_BYTES,
        )


def split_frames(
    data: Union[bytes, bytearray],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    what: str = "frame buffer",
) -> List[bytes]:
    """All payloads in a complete buffer; trailing partial data raises."""
    assembler = FrameAssembler(max_frame_bytes=max_frame_bytes, what=what)
    frames = assembler.feed(data)
    assembler.finish()
    return frames
