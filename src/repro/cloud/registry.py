"""Corridor registry: immutable specs, lazily built per-corridor runtimes.

The paper's deployment serves one arterial; a production vehicular cloud
fronts many.  This module is the catalog that makes "many" a first-class
notion: a :class:`CorridorSpec` is everything needed to reconstruct one
corridor's serving stack (the road geometry and signal plan, the traffic
forecast, the planner recipe and its discretization), and a
:class:`CorridorCatalog` maps corridor ids to specs and builds — lazily,
thread-safely, at most once per corridor — the live runtime behind each:
an :class:`~repro.core.engine.ArtifactStore`, a planner, and a
:class:`~repro.cloud.service.CloudPlannerService` bound to that corridor
id.

Laziness matters because planner construction is the expensive step (the
corridor precomputation builds DP tables); a catalog of fifty corridors
must not pay fifty builds at server start when tonight's traffic only
touches three.  Binding matters because isolation is structural: each
runtime's service carries its ``corridor_id`` and rejects any request
naming another corridor (:class:`~repro.errors.UnknownCorridorError`),
so a plan cached for corridor A can never be served for corridor B even
if departure phase and budget collide.

:func:`builtin_catalog` ships the US-25 corridor of the source paper
plus two synthetic :mod:`repro.route.builder` variants with distinct
signal plans — enough to exercise multi-corridor serving end to end
(CLI ``--list-corridors``, the router, the fleet study's interleaved
mode) without any external data.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.cloud.messages import DEFAULT_CORRIDOR_ID
from repro.cloud.service import CloudPlannerService
from repro.core.engine import ArtifactStore
from repro.core.planner import (
    BaselineDpPlanner,
    DpPlannerBase,
    PlannerConfig,
    QueueAwareDpPlanner,
    UnconstrainedDpPlanner,
)
from repro.errors import ConfigurationError, UnknownCorridorError
from repro.route.road import RoadSegment
from repro.route.builder import CorridorBuilder
from repro.route.us25 import us25_greenville_segment
from repro.units import vehicles_per_hour_to_per_second
from repro.vehicle.catalog import DEFAULT_VEHICLE_ID, get_vehicle
from repro.vehicle.environment import EnvironmentConditions
from repro.vehicle.params import VehicleParams
from repro.vehicle.scenarios import get_scenario

__all__ = [
    "PLANNER_KINDS",
    "CorridorSpec",
    "CorridorRuntime",
    "CorridorCatalog",
    "builtin_catalog",
]

#: Planner recipes a spec may name (mirrors the CLI's ``--planner``).
PLANNER_KINDS = ("proposed", "baseline", "unconstrained")


@dataclass(frozen=True)
class CorridorSpec:
    """Everything needed to build one corridor's serving stack.

    Immutable by design: a spec is registered once and shared between
    the catalog, the router, and documentation/CLI listings; runtime
    state (caches, counters, planners) lives in the
    :class:`CorridorRuntime` built from it.

    Attributes:
        corridor_id: The routing key requests carry.
        road: Geometry, zones, stop signs and signal plan.
        arrival_rate_vph: Stationary cross-traffic forecast feeding the
            queue-aware planner's VM/QL models (vehicles/hour).
        planner: Recipe name from :data:`PLANNER_KINDS` — ``"proposed"``
            is the paper's queue-aware DP.
        config: Discretization; ``None`` uses planner defaults.
        description: One line for ``--list-corridors`` output.
        vehicle_id: Catalog id of the vehicle this corridor plans for
            (:mod:`repro.vehicle.catalog`).  ``None`` defers to the
            scenario pack's vehicle, falling back to the catalog default.
            Validated at spec construction: a typo'd id raises
            :class:`~repro.errors.UnknownVehicleError` before any
            planner is built or any serving counter moves.
        scenario: Scenario-pack id (:mod:`repro.vehicle.scenarios`)
            supplying the ambient environment (and, when ``vehicle_id``
            is not given, the vehicle).  ``None`` is nominal.  Also
            validated at spec construction
            (:class:`~repro.errors.UnknownScenarioError`).
    """

    corridor_id: str
    road: RoadSegment
    arrival_rate_vph: float = 300.0
    planner: str = "proposed"
    config: Optional[PlannerConfig] = None
    description: str = ""
    vehicle_id: Optional[str] = None
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.corridor_id, str) or not self.corridor_id:
            raise ConfigurationError("corridor id must be a non-empty string")
        if self.planner not in PLANNER_KINDS:
            raise ConfigurationError(
                f"unknown planner recipe {self.planner!r}; expected one of {PLANNER_KINDS}"
            )
        if not self.arrival_rate_vph >= 0:
            raise ConfigurationError(
                f"arrival rate must be >= 0 vph, got {self.arrival_rate_vph}"
            )
        # Fail typed on unknown ids *now*, at registration time.
        if self.scenario is not None:
            get_scenario(self.scenario)
        if self.vehicle_id is not None:
            get_vehicle(self.vehicle_id)

    def resolved_vehicle_id(self) -> str:
        """The catalog id this spec plans for (explicit > scenario > default)."""
        if self.vehicle_id is not None:
            return self.vehicle_id
        if self.scenario is not None:
            return get_scenario(self.scenario).vehicle_id
        return DEFAULT_VEHICLE_ID

    def resolve_vehicle(self) -> VehicleParams:
        """The resolved vehicle's parameters, fresh from the catalog."""
        return get_vehicle(self.resolved_vehicle_id())

    def resolve_environment(self) -> Optional[EnvironmentConditions]:
        """The pack's environment, or ``None`` (nominal) without a scenario."""
        if self.scenario is None:
            return None
        return get_scenario(self.scenario).environment

    def build_planner(self, store: Optional[ArtifactStore] = None) -> DpPlannerBase:
        """Construct this spec's planner (the expensive step)."""
        vehicle = self.resolve_vehicle()
        environment = self.resolve_environment()
        if self.planner == "proposed":
            return QueueAwareDpPlanner(
                self.road,
                arrival_rates=vehicles_per_hour_to_per_second(self.arrival_rate_vph),
                vehicle=vehicle,
                config=self.config,
                store=store,
                environment=environment,
            )
        if self.planner == "baseline":
            return BaselineDpPlanner(
                self.road, vehicle=vehicle, config=self.config, store=store,
                environment=environment,
            )
        return UnconstrainedDpPlanner(
            self.road, vehicle=vehicle, config=self.config, store=store,
            environment=environment,
        )


@dataclass(frozen=True)
class CorridorRuntime:
    """One corridor's live serving stack, built from its spec.

    Attributes:
        spec: The immutable recipe this runtime was built from.
        store: The corridor's own artifact store (per-corridor metric
            namespace ``engine.store.<corridor_id>``).
        planner: The built planner, sharing ``store``.
        service: The corridor-bound planning service (metric namespace
            ``cloud.<corridor_id>``); rejects requests naming any other
            corridor.
    """

    spec: CorridorSpec
    store: ArtifactStore
    planner: DpPlannerBase
    service: CloudPlannerService

    @property
    def corridor_id(self) -> str:
        return self.spec.corridor_id


class CorridorCatalog:
    """Corridor ids → specs, with lazily built per-corridor runtimes.

    Args:
        specs: Corridor specs to register up front (``register`` adds
            more later).  Ids must be unique.
        store_capacity: Per-corridor artifact-store bound.  Each corridor
            gets its *own* store — eviction pressure on one corridor's
            artifacts never touches another's.
        cache_capacity: Per-corridor plan/min-time cache bound.
        cache_ttl_s: Optional TTL on the per-corridor caches.
        validator: Optional shared plan validator handed to every
            corridor's service (validators are stateless).
        service_kwargs: Extra keyword arguments for every corridor's
            :class:`CloudPlannerService` (quanta, budget slack, …).

    Thread-safety: registration and runtime construction hold locks; a
    corridor's runtime is built at most once, and two threads racing on
    *different* cold corridors build concurrently (per-corridor build
    locks), so one corridor's expensive first build never serializes
    another's.
    """

    def __init__(
        self,
        specs: Iterable[CorridorSpec] = (),
        store_capacity: int = 4,
        cache_capacity: int = 256,
        cache_ttl_s: Optional[float] = None,
        validator=None,
        service_kwargs: Optional[dict] = None,
    ) -> None:
        self.store_capacity = int(store_capacity)
        self.cache_capacity = int(cache_capacity)
        self.cache_ttl_s = cache_ttl_s
        self.validator = validator
        self.service_kwargs = dict(service_kwargs or {})
        self._mutex = threading.Lock()
        self._specs: "Dict[str, CorridorSpec]" = {}
        self._build_locks: Dict[str, threading.Lock] = {}
        self._runtimes: Dict[str, CorridorRuntime] = {}
        for spec in specs:
            self.register(spec)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, spec: CorridorSpec) -> CorridorSpec:
        """Add one corridor spec; duplicate ids are a configuration error."""
        with self._mutex:
            if spec.corridor_id in self._specs:
                raise ConfigurationError(
                    f"corridor {spec.corridor_id!r} is already registered"
                )
            self._specs[spec.corridor_id] = spec
            self._build_locks[spec.corridor_id] = threading.Lock()
        return spec

    def ids(self) -> Tuple[str, ...]:
        """All registered corridor ids, in registration order."""
        with self._mutex:
            return tuple(self._specs)

    def __contains__(self, corridor_id: str) -> bool:
        with self._mutex:
            return corridor_id in self._specs

    def __len__(self) -> int:
        with self._mutex:
            return len(self._specs)

    def __iter__(self) -> Iterator[CorridorSpec]:
        with self._mutex:
            return iter(tuple(self._specs.values()))

    def spec(self, corridor_id: str) -> CorridorSpec:
        """The spec under an id.

        Raises:
            UnknownCorridorError: No such corridor; the error carries the
                offending id and the ids the catalog does hold.
        """
        with self._mutex:
            spec = self._specs.get(corridor_id)
            known = tuple(self._specs)
        if spec is None:
            raise UnknownCorridorError(
                f"unknown corridor {corridor_id!r}; catalog holds {sorted(known)}",
                corridor_id=corridor_id,
                known_ids=known,
            )
        return spec

    # ------------------------------------------------------------------
    # Lazy runtimes
    # ------------------------------------------------------------------
    def runtime(self, corridor_id: str) -> CorridorRuntime:
        """The corridor's live serving stack, built on first request.

        Raises:
            UnknownCorridorError: The id is not registered.
        """
        runtime = self._runtimes.get(corridor_id)
        if runtime is not None:
            return runtime
        spec = self.spec(corridor_id)  # raises UnknownCorridorError
        with self._build_locks[corridor_id]:
            runtime = self._runtimes.get(corridor_id)
            if runtime is not None:
                return runtime
            store = ArtifactStore(
                capacity=self.store_capacity, name=f"engine.store.{corridor_id}"
            )
            planner = spec.build_planner(store)
            service = CloudPlannerService(
                planner,
                validator=self.validator,
                cache_capacity=self.cache_capacity,
                cache_ttl_s=self.cache_ttl_s,
                name=f"cloud.{corridor_id}",
                corridor_id=corridor_id,
                **self.service_kwargs,
            )
            runtime = CorridorRuntime(
                spec=spec, store=store, planner=planner, service=service
            )
            with self._mutex:
                self._runtimes[corridor_id] = runtime
        return runtime

    def service(self, corridor_id: str) -> CloudPlannerService:
        """Shorthand: the corridor's (lazily built) planning service."""
        return self.runtime(corridor_id).service

    def built_ids(self) -> Tuple[str, ...]:
        """Ids whose runtimes exist (have served at least one build)."""
        with self._mutex:
            return tuple(self._runtimes)

    def built_runtimes(self) -> Tuple[CorridorRuntime, ...]:
        """Snapshot of the live runtimes, in build order."""
        with self._mutex:
            return tuple(self._runtimes.values())


# ----------------------------------------------------------------------
# Built-in corridors
# ----------------------------------------------------------------------
def _elm_street_segment() -> RoadSegment:
    """A short downtown arterial: closely spaced, offset-coordinated lights."""
    return (
        CorridorBuilder("Elm Street downtown", 2600.0)
        .speed_limits(v_max_kmh=50.0, v_min_kmh=25.0)
        .zone(0.0, 400.0, v_max_kmh=40.0, v_min_kmh=20.0)
        .stop_sign(at_m=380.0)
        .signal(at_m=900.0, red_s=25.0, green_s=35.0, offset_s=5.0,
                turn_ratio=0.85, queue_spacing_m=7.5)
        .signal(at_m=1500.0, red_s=25.0, green_s=35.0, offset_s=20.0,
                turn_ratio=0.85, queue_spacing_m=7.5)
        .signal(at_m=2100.0, red_s=25.0, green_s=35.0, offset_s=35.0,
                turn_ratio=0.85, queue_spacing_m=7.5)
        .build()
    )


def _airport_loop_segment() -> RoadSegment:
    """A long suburban connector: fast, sparse signals with long reds."""
    return (
        CorridorBuilder("Airport connector loop", 5600.0)
        .speed_limits(v_max_kmh=80.0, v_min_kmh=45.0)
        .zone(2400.0, 3200.0, v_max_kmh=60.0, v_min_kmh=35.0)
        .signal(at_m=1400.0, red_s=40.0, green_s=20.0, offset_s=0.0,
                turn_ratio=0.7, queue_spacing_m=9.0)
        .signal(at_m=4200.0, red_s=40.0, green_s=20.0, offset_s=30.0,
                turn_ratio=0.7, queue_spacing_m=9.0)
        .build()
    )


def builtin_catalog(
    config: Optional[PlannerConfig] = None, **catalog_kwargs
) -> CorridorCatalog:
    """The catalog every CLI/server starts from: US-25 plus two variants.

    The three corridors have deliberately distinct signal plans (cycle
    lengths 60 s, 60 s with different splits/offsets, and 60 s with a
    40/20 split) and different lengths/limits, so cross-corridor cache
    collisions would be *visible* if isolation ever broke — identical
    phase bins map to different optimal profiles on each corridor.

    Args:
        config: One discretization shared by all three specs (``None``
            uses planner defaults; tests pass a coarse grid).
        **catalog_kwargs: Forwarded to :class:`CorridorCatalog`.
    """
    specs = (
        CorridorSpec(
            corridor_id=DEFAULT_CORRIDOR_ID,
            road=us25_greenville_segment(),
            arrival_rate_vph=300.0,
            planner="proposed",
            config=config,
            description="US-25 Greenville arterial segment (the paper's corridor)",
        ),
        CorridorSpec(
            corridor_id="elm-street",
            road=_elm_street_segment(),
            arrival_rate_vph=420.0,
            planner="proposed",
            config=config,
            description="Downtown arterial: three offset-coordinated 25/35 s signals",
        ),
        CorridorSpec(
            corridor_id="airport-loop",
            road=_airport_loop_segment(),
            arrival_rate_vph=180.0,
            planner="proposed",
            config=config,
            description="Suburban connector: two sparse 40/20 s signals at 80 km/h",
        ),
    )
    return CorridorCatalog(specs, **catalog_kwargs)
