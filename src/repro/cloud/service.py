"""The cloud planning service with a phase-aware plan cache.

With fixed-time signals and a stationary arrival-rate forecast, the
planning problem is periodic: a departure at ``t`` and one at
``t + P`` (``P`` = the common signal period) have identical optimal
profiles, merely shifted in time.  The service exploits this — requests
are keyed by the departure's phase within ``P`` (quantized) and the trip
budget, so a warm cache answers most of a fleet's requests without
running the DP at all.  This is what makes the vehicular-cloud deployment
of [6, 7] economical.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cloud.messages import PlanRequest, PlanResponse
from repro.core.planner import DpPlannerBase
from repro.core.profile import VelocityProfile
from repro.errors import ConfigurationError


@dataclass
class ServiceStats:
    """Operational counters of the service."""

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    total_compute_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction; 0 when idle."""
        return self.cache_hits / self.requests if self.requests else 0.0


class CloudPlannerService:
    """Serves velocity plans to vehicles, caching by signal phase.

    Args:
        planner: Any planner from :mod:`repro.core.planner` (typically the
            queue-aware one).  Callable arrival rates disable caching —
            a time-varying forecast breaks periodicity.
        phase_quantum_s: Cache key resolution within the signal period.
        budget_quantum_s: Cache key resolution of the trip budget.
        default_budget_slack_s: Slack added to the fastest-feasible trip
            when a request carries no budget.
    """

    def __init__(
        self,
        planner: DpPlannerBase,
        phase_quantum_s: float = 1.0,
        budget_quantum_s: float = 5.0,
        default_budget_slack_s: float = 30.0,
    ) -> None:
        if phase_quantum_s <= 0 or budget_quantum_s <= 0:
            raise ConfigurationError("cache quanta must be positive")
        if default_budget_slack_s < 0:
            raise ConfigurationError("budget slack must be >= 0")
        self.planner = planner
        self.phase_quantum_s = float(phase_quantum_s)
        self.budget_quantum_s = float(budget_quantum_s)
        self.default_budget_slack_s = float(default_budget_slack_s)
        self.stats = ServiceStats()
        self._cache: Dict[Tuple[int, int], Tuple[VelocityProfile, float, float]] = {}
        self._min_time_cache: Dict[int, float] = {}
        self._period_s = self._common_signal_period()
        self._cacheable = self._period_s is not None and not self._rates_time_varying()

    # ------------------------------------------------------------------
    # Periodicity analysis
    # ------------------------------------------------------------------
    def _common_signal_period(self) -> Optional[float]:
        """LCM of all signal cycles (decisecond precision), if signals exist."""
        cycles = [site.light.cycle_s for site in self.planner.road.signals]
        if not cycles:
            return None
        decis = [int(round(c * 10.0)) for c in cycles]
        lcm = decis[0]
        for d in decis[1:]:
            lcm = lcm * d // math.gcd(lcm, d)
        return lcm / 10.0

    def _rates_time_varying(self) -> bool:
        rates = getattr(self.planner, "arrival_rates", None)
        if rates is None:
            return False
        if callable(rates):
            return True
        if isinstance(rates, dict):
            return any(callable(r) for r in rates.values())
        return False

    @property
    def cache_enabled(self) -> bool:
        """Whether phase caching applies to this planner/road combination."""
        return self._cacheable

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def request(self, req: PlanRequest) -> PlanResponse:
        """Answer one vehicle's plan request."""
        self.stats.requests += 1
        budget = req.max_trip_time_s
        if budget is None:
            budget = self._fastest_trip(req.depart_s) + self.default_budget_slack_s

        key = None
        if self._cacheable:
            phase_bin = int((req.depart_s % self._period_s) / self.phase_quantum_s)
            budget_bin = int(budget / self.budget_quantum_s)
            key = (phase_bin, budget_bin)
            cached = self._cache.get(key)
            if cached is not None:
                profile, energy_mah, trip_time = cached
                self.stats.cache_hits += 1
                return PlanResponse(
                    vehicle_id=req.vehicle_id,
                    profile=self._shift_profile(profile, req.depart_s),
                    energy_mah=energy_mah,
                    trip_time_s=trip_time,
                    cache_hit=True,
                    compute_time_s=0.0,
                )

        t0 = _time.perf_counter()
        solution = self.planner.plan(start_time_s=req.depart_s, max_trip_time_s=budget)
        compute = _time.perf_counter() - t0
        self.stats.cache_misses += 1
        self.stats.total_compute_s += compute
        if key is not None:
            self._cache[key] = (
                solution.profile,
                solution.energy_mah,
                solution.trip_time_s,
            )
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=solution.profile,
            energy_mah=solution.energy_mah,
            trip_time_s=solution.trip_time_s,
            cache_hit=False,
            compute_time_s=compute,
        )

    def _fastest_trip(self, depart_s: float) -> float:
        """Minimum feasible trip time, phase-cached like the plans."""
        if not self._cacheable:
            return self.planner.min_trip_time(depart_s)
        phase_bin = int((depart_s % self._period_s) / self.phase_quantum_s)
        cached = self._min_time_cache.get(phase_bin)
        if cached is None:
            t0 = _time.perf_counter()
            cached = self.planner.min_trip_time(depart_s)
            self.stats.total_compute_s += _time.perf_counter() - t0
            self._min_time_cache[phase_bin] = cached
        return cached

    @staticmethod
    def _shift_profile(profile: VelocityProfile, depart_s: float) -> VelocityProfile:
        """The cached profile re-anchored at a new departure time."""
        return VelocityProfile(
            positions_m=profile.positions_m,
            speeds_ms=profile.speeds_ms,
            dwell_s=profile.dwell_s,
            start_time_s=depart_s,
        )

    def clear_cache(self) -> None:
        """Drop all cached plans (e.g. after a forecast update)."""
        self._cache.clear()
        self._min_time_cache.clear()
