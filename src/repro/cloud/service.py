"""The cloud planning service: a thin facade over the serving layers.

With fixed-time signals and a stationary arrival-rate forecast, the
planning problem is periodic: a departure at ``t`` and one at
``t + P`` (``P`` = the common signal period) have identical optimal
profiles, merely shifted in time.  The service exploits this — requests
are keyed by the departure's phase within ``P`` (quantized) and the trip
budget, so a warm cache answers most of a fleet's requests without
running the DP at all.  This is what makes the vehicular-cloud deployment
of [6, 7] economical.

The service itself is deliberately thin.  It owns the serving *policy*
(quantization, revalidation, budget defaults, the accounting invariant)
and composes the mechanism layers:

* :mod:`repro.cloud.plan_cache` — the bounded, thread-safe LRU+TTL
  caches behind the phase cache and both min-time memos (previously
  three unbounded dicts);
* :mod:`repro.cloud.dispatcher` — concurrency and request coalescing on
  top of :meth:`CloudPlannerService.request` (the service stays
  synchronous; the dispatcher threads it);
* :mod:`repro.cloud.wire` — the serialization boundary, exercised by
  clients that round-trip requests/responses through the codec.

Thread-safety: :meth:`request` may be called from multiple dispatcher
workers concurrently.  The caches lock internally and the stats counters
mutate under the service's own lock, so the
``requests == cache_hits + cache_misses + errors`` invariant holds under
concurrency too.
"""

from __future__ import annotations

import math
import threading
import time as _time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.cloud.messages import DEFAULT_CORRIDOR_ID, PlanRequest, PlanResponse
from repro.cloud.plan_cache import CacheStats, PlanCache
from repro.core.planner import DpPlannerBase
from repro.core.profile import VelocityProfile
from repro.errors import (
    ConfigurationError,
    InfeasibleProblemError,
    PlanRejectedError,
    PlanningFailedError,
    UnknownCorridorError,
)
from repro.guard.contracts import validate_plan_request
from repro.guard.plan_check import PlanValidator


@dataclass
class ServiceStats:
    """Operational counters of the service.

    Every request increments exactly one of ``cache_hits``,
    ``cache_misses`` or ``errors``, so
    ``requests == cache_hits + cache_misses + errors`` always holds —
    including when the planner raises mid-request, and under concurrent
    dispatch (the service mutates these under a lock).

    Attributes:
        requests: Total requests received (served or not).
        cache_hits: Requests answered from the phase cache.
        cache_misses: Requests answered by running the planner.
        errors: Requests the planner could not satisfy
            (:class:`~repro.errors.PlanningFailedError` was raised).
        revalidation_misses: Cache hits discarded because the shifted
            profile no longer satisfied the arrival windows at the new
            departure; each one is also counted as a ``cache_misses``
            (the plan was recomputed), never as a hit.
        total_compute_s: Planner wall time, including failed solves.
    """

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    revalidation_misses: int = 0
    total_compute_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction of *served* requests; 0 when idle.

        Failed requests (``errors``) never reached a serve decision, so
        they are excluded — a planner failure does not skew the rate.
        """
        served = self.cache_hits + self.cache_misses
        return self.cache_hits / served if served else 0.0


# Sentinels returned by the batched per-request serve step: the request
# cannot complete this round and is deferred (its key needs a solve that
# is not in hand, or its budget floor expired mid-batch).
_NEED_SOLVE = object()
_NEED_MIN = object()


@dataclass
class _FlowItem:
    """Mutable per-request state threaded through the batched serve rounds."""

    idx: int
    req: PlanRequest
    phase_bin: int
    budget: Optional[float] = None
    key: Optional[Tuple[int, int]] = None
    min_err: Optional[InfeasibleProblemError] = None
    # The plan-cache lookup (and a possible revalidation miss) has been
    # accounted in an earlier round; on retry go straight to the solve.
    solve_pending: bool = False


class CloudPlannerService:
    """Serves velocity plans to vehicles, caching by signal phase.

    Args:
        planner: Any planner from :mod:`repro.core.planner` (typically the
            queue-aware one).  Callable arrival rates disable caching —
            a time-varying forecast breaks periodicity.
        phase_quantum_s: Cache key resolution within the signal period.
        budget_quantum_s: Cache key resolution of the trip budget.
        default_budget_slack_s: Slack added to the fastest-feasible trip
            when a request carries no budget.
        validator: Optional :class:`~repro.guard.plan_check.PlanValidator`;
            when given, every freshly solved plan is audited against the
            planner's own arrival windows before it is served or cached.
            An invalid plan raises :class:`~repro.errors.PlanningFailedError`
            (accounted like any planner failure) so clients degrade
            instead of executing a degenerate profile.
        cache_capacity: Bound of each of the three serving caches (the
            phase-keyed plan cache and both min-time memos).
        cache_ttl_s: Optional TTL on cache entries (``None`` = no age
            expiry; with fixed-time signals plans only go stale on
            forecast updates, which call :meth:`clear_cache`).
        name: Metric namespace of this service's counters and caches
            (``<name>.requests``, ``<name>.plan_cache.hits``, …).  The
            default preserves the historical ``cloud.*`` names; a
            corridor shard passes e.g. ``cloud.elm-street`` so
            ``--metrics`` and the server stats frame break hit rates
            down by corridor.
        corridor_id: The corridor this service is bound to.  A request
            naming any other corridor is rejected with
            :class:`~repro.errors.UnknownCorridorError` — the structural
            guarantee that a plan cached for corridor A is never served
            for corridor B.  Single-corridor deployments keep the
            default and never notice.
    """

    def __init__(
        self,
        planner: DpPlannerBase,
        phase_quantum_s: float = 1.0,
        budget_quantum_s: float = 5.0,
        default_budget_slack_s: float = 30.0,
        validator: Optional[PlanValidator] = None,
        cache_capacity: int = 256,
        cache_ttl_s: Optional[float] = None,
        name: str = "cloud",
        corridor_id: str = DEFAULT_CORRIDOR_ID,
    ) -> None:
        if phase_quantum_s <= 0 or budget_quantum_s <= 0:
            raise ConfigurationError("cache quanta must be positive")
        if default_budget_slack_s < 0:
            raise ConfigurationError("budget slack must be >= 0")
        if not isinstance(corridor_id, str) or not corridor_id:
            raise ConfigurationError("corridor id must be a non-empty string")
        self.planner = planner
        self.validator = validator
        self.name = str(name)
        self.corridor_id = corridor_id
        self.phase_quantum_s = float(phase_quantum_s)
        self.budget_quantum_s = float(budget_quantum_s)
        self.default_budget_slack_s = float(default_budget_slack_s)
        self.stats = ServiceStats()
        self._mutex = threading.Lock()
        self.plan_cache = PlanCache(
            capacity=cache_capacity, ttl_s=cache_ttl_s, name=f"{self.name}.plan_cache"
        )
        self.min_time_cache = PlanCache(
            capacity=cache_capacity, ttl_s=cache_ttl_s, name=f"{self.name}.min_time_cache"
        )
        self.min_time_exact = PlanCache(
            capacity=cache_capacity, ttl_s=cache_ttl_s, name=f"{self.name}.min_time_exact"
        )
        self._period_s = self._common_signal_period()
        self._cacheable = self._period_s is not None and not self._rates_time_varying()

    def _check_corridor(self, req: PlanRequest) -> None:
        """Reject a request routed to the wrong corridor's service."""
        if req.corridor_id != self.corridor_id:
            raise UnknownCorridorError(
                f"request from {req.vehicle_id!r} names corridor "
                f"{req.corridor_id!r}, but this service is bound to "
                f"{self.corridor_id!r}",
                corridor_id=req.corridor_id,
                known_ids=(self.corridor_id,),
                source=f"service {self.name!r}",
            )

    # ------------------------------------------------------------------
    # Periodicity analysis
    # ------------------------------------------------------------------
    def _common_signal_period(self) -> Optional[float]:
        """LCM of all signal cycles (decisecond precision), if signals exist."""
        cycles = [site.light.cycle_s for site in self.planner.road.signals]
        if not cycles:
            return None
        decis = [int(round(c * 10.0)) for c in cycles]
        lcm = decis[0]
        for d in decis[1:]:
            lcm = lcm * d // math.gcd(lcm, d)
        return lcm / 10.0

    def _rates_time_varying(self) -> bool:
        rates = getattr(self.planner, "arrival_rates", None)
        if rates is None:
            return False
        if callable(rates):
            return True
        if isinstance(rates, dict):
            return any(callable(r) for r in rates.values())
        return False

    @property
    def cache_enabled(self) -> bool:
        """Whether phase caching applies to this planner/road combination."""
        return self._cacheable

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    def _phase_bin(self, depart_s: float) -> int:
        return int((depart_s % self._period_s) / self.phase_quantum_s)

    def coalesce_key(self, req: PlanRequest) -> Optional[Tuple]:
        """The key under which concurrent requests may share one solve.

        Two requests with equal keys are guaranteed to resolve to the
        same plan-cache entry, so the dispatch layer lets one of them
        solve and serves the rest from the warm cache.  ``None`` means
        the request is uncoalescable (uncacheable planner, mid-route
        replan, or a non-energy objective) and must run on its own.

        A budget-less request keys on ``(phase_bin, None)``: its budget
        derives deterministically from the phase bin (min-time memo +
        slack), so equal bins imply equal budgets.
        """
        if not self._cacheable or req.is_replan or req.minimize != "energy":
            return None
        phase_bin = self._phase_bin(req.depart_s)
        if req.max_trip_time_s is None:
            return (phase_bin, None)
        return (phase_bin, int(req.max_trip_time_s / self.budget_quantum_s))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def request(self, req: PlanRequest) -> PlanResponse:
        """Answer one vehicle's plan request.

        Cache hits are *revalidated*: the cached profile is shifted to the
        request's departure and its signal arrivals are re-checked against
        the (margin-shrunk) arrival windows at that departure.  This
        bounds the phase-quantization error — a hit whose shifted
        arrivals drifted out of the windows (possible when
        ``phase_quantum_s`` exceeds the planner's window margin) falls
        back to a fresh solve instead of handing out a stale plan.

        Raises:
            PlanningFailedError: The planner found the request infeasible.
                ``stats.errors`` is incremented and any planner wall time
                spent is accounted in ``stats.total_compute_s`` before the
                raise, so counters stay consistent for callers that catch
                it and continue.
        """
        registry = obs.get_registry()
        # Screen the one thing the frozen request could not check about
        # itself: its position against this service's route.  The
        # request's own field contract (finiteness, ceilings) already ran
        # in ``PlanRequest.__post_init__`` and the request is immutable,
        # so those checks are skipped here rather than run twice.
        self._check_corridor(req)
        validate_plan_request(
            req,
            route_length_m=self.planner.road.length_m,
            source=f"plan request from {req.vehicle_id!r}",
            check_fields=False,
        )
        t_req = _time.perf_counter()
        with self._mutex:
            self.stats.requests += 1
        registry.inc(f"{self.name}.requests")
        try:
            response = self._serve(req, registry)
        except (InfeasibleProblemError, PlanRejectedError) as exc:
            with self._mutex:
                self.stats.errors += 1
            registry.inc(f"{self.name}.errors")
            if isinstance(exc, PlanRejectedError):
                registry.inc(f"{self.name}.guard_rejections")
            registry.observe(f"{self.name}.request_s", _time.perf_counter() - t_req)
            raise PlanningFailedError(
                f"no feasible plan for {req.vehicle_id!r} departing at "
                f"{req.depart_s:.1f} s: {exc}",
                vehicle_id=req.vehicle_id,
                depart_s=req.depart_s,
            ) from exc
        registry.observe(f"{self.name}.request_s", _time.perf_counter() - t_req)
        return response

    def _serve(self, req: PlanRequest, registry: obs.MetricsRegistry) -> PlanResponse:
        """Serve one request: cache lookup + revalidation, else a solve."""
        if req.is_replan or req.minimize != "energy":
            return self._serve_uncached(req, registry)
        budget = req.max_trip_time_s
        if budget is None:
            budget = self._fastest_trip(req.depart_s) + self.default_budget_slack_s

        key = None
        if self._cacheable:
            key = (self._phase_bin(req.depart_s), int(budget / self.budget_quantum_s))
            cached = self.plan_cache.get(key)
            if cached is not None:
                profile, energy_mah, trip_time = cached
                shifted = self._shift_profile(profile, req.depart_s)
                if self._revalidate(shifted, req.depart_s):
                    with self._mutex:
                        self.stats.cache_hits += 1
                    registry.inc(f"{self.name}.hits")
                    return PlanResponse(
                        vehicle_id=req.vehicle_id,
                        profile=shifted,
                        energy_mah=energy_mah,
                        trip_time_s=trip_time,
                        cache_hit=True,
                        compute_time_s=0.0,
                        corridor_id=req.corridor_id,
                    )
                self.plan_cache.note_revalidation_miss()
                with self._mutex:
                    self.stats.revalidation_misses += 1
                registry.inc(f"{self.name}.revalidation_misses")

        t0 = _time.perf_counter()
        try:
            solution = self.planner.plan(
                start_time_s=req.depart_s, max_trip_time_s=budget
            )
        finally:
            # Failed solves burn real planner time too; account it so the
            # service's compute economics stay honest under errors.
            compute = _time.perf_counter() - t0
            with self._mutex:
                self.stats.total_compute_s += compute
        self._screen(solution, req.depart_s)
        with self._mutex:
            self.stats.cache_misses += 1
        registry.inc(f"{self.name}.misses")
        if key is not None:
            self.plan_cache.put(
                key,
                (solution.profile, solution.energy_mah, solution.trip_time_s),
            )
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=solution.profile,
            energy_mah=solution.energy_mah,
            trip_time_s=solution.trip_time_s,
            cache_hit=False,
            compute_time_s=compute,
            corridor_id=req.corridor_id,
        )

    def _serve_uncached(
        self, req: PlanRequest, registry: obs.MetricsRegistry
    ) -> PlanResponse:
        """Serve a mid-route replan or a non-energy objective.

        Phase caching does not apply: a replan is specific to the
        vehicle's ``(position, speed, time)`` state, and the cache stores
        energy-optimal profiles only.  The solve is accounted as a cache
        miss so the ``requests == hits + misses + errors`` invariant
        holds unchanged.  A ``None`` budget falls through to the solver's
        horizon default — the route-start fastest-trip floor is
        meaningless mid-route.
        """
        t0 = _time.perf_counter()
        try:
            if req.is_replan:
                solution = self.planner.replan(
                    position_m=req.position_m,
                    speed_ms=req.speed_ms,
                    time_s=req.depart_s,
                    max_trip_time_s=req.max_trip_time_s,
                    minimize=req.minimize,
                )
            else:
                solution = self.planner.plan(
                    start_time_s=req.depart_s,
                    max_trip_time_s=req.max_trip_time_s,
                    minimize=req.minimize,
                )
        finally:
            compute = _time.perf_counter() - t0
            with self._mutex:
                self.stats.total_compute_s += compute
        self._screen(solution, req.depart_s)
        with self._mutex:
            self.stats.cache_misses += 1
        registry.inc(f"{self.name}.misses")
        registry.inc(f"{self.name}.replans" if req.is_replan else f"{self.name}.uncached")
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=solution.profile,
            energy_mah=solution.energy_mah,
            trip_time_s=solution.trip_time_s,
            cache_hit=False,
            compute_time_s=compute,
            corridor_id=req.corridor_id,
        )

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def request_batch(
        self, reqs: Sequence[PlanRequest]
    ) -> List[Union[PlanResponse, Exception]]:
        """Serve many requests at once, solving cold keys as one batched DP.

        Semantically this is ``[self.request(r) for r in reqs]`` with
        exceptions captured in place of responses: every request gets the
        same plan (bit-identical profile), the same error (same message),
        and the caches and counters end in the same state a serial loop
        would have left them in — hits, misses, expirations,
        revalidation misses and the ``requests == hits + misses +
        errors`` invariant included.  What changes is *how* the cold
        solves run: all requests needing a fresh DP in a given round are
        stacked and solved through :meth:`DpPlannerBase.plan_batch` as
        one numpy program, which is where the fleet-level speedup comes
        from (see ``repro.core.engine.stage_kernel``).

        Uncoalescable requests (replans, non-energy objectives, or an
        uncacheable planner — :meth:`coalesce_key` returns ``None``) fall
        back to a plain :meth:`request` call inside the batch, in order.

        Counter exactness assumes this batch is the only writer of the
        serving caches while it runs — which is how the batching
        dispatcher uses it.  Concurrent solo requests stay *correct*
        (the caches are locked), but the batch may then solve a key a
        concurrent request also solved, spending a redundant solve where
        serial serving would have hit.  One further caveat: when a
        request is deferred across solve rounds (a revalidation miss
        behind a warm entry), its cache *put* lands after later
        requests' operations, so the LRU recency order — though not the
        key set or any counter — can differ from serial; under capacity
        pressure that may change which entry is evicted first.

        Returns:
            One entry per request, in order: a :class:`PlanResponse`, or
            the exception :meth:`request` would have raised for it.
        """
        registry = obs.get_registry()
        outcomes: List[Union[PlanResponse, Exception]] = [None] * len(reqs)
        flow: List[_FlowItem] = []
        for idx, req in enumerate(reqs):
            try:
                self._check_corridor(req)
                validate_plan_request(
                    req,
                    route_length_m=self.planner.road.length_m,
                    source=f"plan request from {req.vehicle_id!r}",
                    check_fields=False,
                )
            except Exception as exc:  # noqa: BLE001 - mirrored to caller
                outcomes[idx] = exc
                continue
            key = self.coalesce_key(req)
            if key is None:
                try:
                    outcomes[idx] = self.request(req)
                except Exception as exc:  # noqa: BLE001 - mirrored to caller
                    outcomes[idx] = exc
            else:
                with self._mutex:
                    self.stats.requests += 1
                registry.inc(f"{self.name}.requests")
                flow.append(_FlowItem(idx=idx, req=req, phase_bin=key[0]))
        if flow:
            self._serve_flow(flow, outcomes, registry)
        return outcomes

    def _serve_flow(
        self,
        flow: List[_FlowItem],
        outcomes: List[Union[PlanResponse, Exception]],
        registry: obs.MetricsRegistry,
    ) -> None:
        """Round-based batched serving of the coalescable requests.

        Each round: (1) batch-solve the min-time floors missing for
        budget-less requests, (2) resolve every request's budget and
        plan-cache key, (3) batch-solve one plan per key that needs one
        (the *head* — the first pending request of that key, exactly the
        request that would have solved serially), (4) serve the requests
        in submission order, replaying the serial cache/counter
        operations; a request whose key needs a solve that is not in
        hand is deferred to the next round, along with everything behind
        it on the same key (per-key serial order is what makes followers
        hit the leader's warm entry).  Every round completes at least
        each key's head, so the loop terminates.
        """
        remaining = flow
        # Min-time floors solved this batch but possibly not yet put()
        # into the memo (the put happens at serve time, in serial order).
        min_hand: Dict[int, Union[float, InfeasibleProblemError]] = {}
        while remaining:
            # (1) Discover and batch-solve missing min-time floors.
            need_bins: List[Tuple[int, float]] = []
            claimed = set()
            for it in remaining:
                if it.req.max_trip_time_s is not None or it.min_err is not None:
                    continue
                pb = it.phase_bin
                if pb in claimed or pb in min_hand or pb in self.min_time_cache:
                    continue
                claimed.add(pb)
                need_bins.append((pb, it.req.depart_s))
            if need_bins:
                t0 = _time.perf_counter()
                floors = self.planner.min_trip_time_batch(
                    [depart for _, depart in need_bins]
                )
                with self._mutex:
                    self.stats.total_compute_s += _time.perf_counter() - t0
                for (pb, _), floor in zip(need_bins, floors):
                    min_hand[pb] = floor
            # (2) Resolve budgets and real cache keys.
            for it in remaining:
                if it.budget is not None or it.min_err is not None:
                    continue
                if it.req.max_trip_time_s is not None:
                    it.budget = it.req.max_trip_time_s
                else:
                    floor = self.min_time_cache.peek(it.phase_bin)
                    if floor is None:
                        res = min_hand.get(it.phase_bin)
                        if isinstance(res, InfeasibleProblemError):
                            it.min_err = res
                            continue
                        if res is None:
                            # The memo expired between discovery and now;
                            # leave unresolved — next round re-solves it.
                            continue
                        floor = res
                    it.budget = floor + self.default_budget_slack_s
                it.key = (it.phase_bin, int(it.budget / self.budget_quantum_s))
            # (3) Batch-solve one plan per key whose head needs one.
            heads: Dict[Tuple[int, int], _FlowItem] = {}
            for it in remaining:
                if it.key is not None and it.min_err is None:
                    heads.setdefault(it.key, it)
            to_solve = [
                it
                for it in heads.values()
                if it.solve_pending or it.key not in self.plan_cache
            ]
            hand: Dict[Tuple[int, int], Union[object, InfeasibleProblemError]] = {}
            if to_solve:
                t0 = _time.perf_counter()
                sols = self.planner.plan_batch(
                    [(it.req.depart_s, it.budget) for it in to_solve]
                )
                with self._mutex:
                    self.stats.total_compute_s += _time.perf_counter() - t0
                for it, sol in zip(to_solve, sols):
                    hand[it.key] = sol
            # (4) Serve in submission order, deferring blocked keys.
            deferred: List[_FlowItem] = []
            blocked = set()
            for it in remaining:
                if it.min_err is None and it.key is None:
                    # Budget still unresolved (expired floor); retry.
                    deferred.append(it)
                    continue
                if it.key is not None and it.key in blocked:
                    deferred.append(it)
                    continue
                result = self._flow_serve_one(it, min_hand, hand, registry)
                if result is _NEED_SOLVE:
                    blocked.add(it.key)
                    deferred.append(it)
                elif result is _NEED_MIN:
                    # The memoized floor expired between key resolution
                    # and the serve; re-derive budget and key next round.
                    it.budget = None
                    it.key = None
                    deferred.append(it)
                else:
                    outcomes[it.idx] = result
            remaining = deferred

    def _flow_serve_one(
        self,
        it: _FlowItem,
        min_hand: Dict[int, object],
        hand: Dict[Tuple[int, int], object],
        registry: obs.MetricsRegistry,
    ):
        """Serve one batched request, replaying serial cache accounting.

        Returns a :class:`PlanResponse`, an exception to hand back, or
        one of the deferral sentinels.
        """
        req = it.req
        t_req = _time.perf_counter()
        if it.min_err is not None:
            # Serial would re-run the failed min-time solve per request:
            # replay its (miss-counted) lookup and its error.
            self.min_time_cache.get(it.phase_bin)
            return self._flow_error(req, it.min_err, registry, t_req)
        if req.max_trip_time_s is None and not it.solve_pending:
            # Replay the serial budget-floor lookup (and first-miss put)
            # exactly once per request — a deferred retry resumes past it.
            floor = self.min_time_cache.get(it.phase_bin)
            if floor is None:
                res = min_hand.get(it.phase_bin)
                if res is None or isinstance(res, InfeasibleProblemError):
                    return _NEED_MIN
                self.min_time_cache.put(it.phase_bin, res)
        key = it.key
        if not it.solve_pending:
            cached = self.plan_cache.get(key)
            if cached is not None:
                profile, energy_mah, trip_time = cached
                shifted = self._shift_profile(profile, req.depart_s)
                if self._revalidate(shifted, req.depart_s):
                    with self._mutex:
                        self.stats.cache_hits += 1
                    registry.inc(f"{self.name}.hits")
                    registry.observe(
                        f"{self.name}.request_s", _time.perf_counter() - t_req
                    )
                    return PlanResponse(
                        vehicle_id=req.vehicle_id,
                        profile=shifted,
                        energy_mah=energy_mah,
                        trip_time_s=trip_time,
                        cache_hit=True,
                        compute_time_s=0.0,
                        corridor_id=req.corridor_id,
                    )
                self.plan_cache.note_revalidation_miss()
                with self._mutex:
                    self.stats.revalidation_misses += 1
                registry.inc(f"{self.name}.revalidation_misses")
            # Lookup (and any revalidation miss) is now accounted; a
            # deferred retry must not count it again.
            it.solve_pending = True
        solution = hand.pop(key, None)
        if solution is None:
            return _NEED_SOLVE
        it.solve_pending = False
        if isinstance(solution, InfeasibleProblemError):
            return self._flow_error(req, solution, registry, t_req)
        try:
            self._screen(solution, req.depart_s)
        except PlanRejectedError as exc:
            return self._flow_error(req, exc, registry, t_req)
        with self._mutex:
            self.stats.cache_misses += 1
        registry.inc(f"{self.name}.misses")
        self.plan_cache.put(
            key, (solution.profile, solution.energy_mah, solution.trip_time_s)
        )
        registry.observe(f"{self.name}.request_s", _time.perf_counter() - t_req)
        return PlanResponse(
            vehicle_id=req.vehicle_id,
            profile=solution.profile,
            energy_mah=solution.energy_mah,
            trip_time_s=solution.trip_time_s,
            cache_hit=False,
            compute_time_s=solution.solve_time_s,
            corridor_id=req.corridor_id,
        )

    def _flow_error(
        self,
        req: PlanRequest,
        exc: Exception,
        registry: obs.MetricsRegistry,
        t_req: float,
    ) -> PlanningFailedError:
        """The error accounting and wrapping of :meth:`request`, as a value."""
        with self._mutex:
            self.stats.errors += 1
        registry.inc(f"{self.name}.errors")
        if isinstance(exc, PlanRejectedError):
            registry.inc(f"{self.name}.guard_rejections")
        registry.observe(f"{self.name}.request_s", _time.perf_counter() - t_req)
        wrapped = PlanningFailedError(
            f"no feasible plan for {req.vehicle_id!r} departing at "
            f"{req.depart_s:.1f} s: {exc}",
            vehicle_id=req.vehicle_id,
            depart_s=req.depart_s,
        )
        wrapped.__cause__ = exc
        return wrapped

    def _screen(self, solution, depart_s: float) -> None:
        """Audit a freshly solved plan before it is served or cached.

        Raises:
            PlanRejectedError: The configured validator found the plan
                degenerate (non-finite values, envelope breaches, or an
                arrival outside the planner's own ``T_q``/green windows).
        """
        if self.validator is None:
            return
        verdict = self.validator.check_solution(
            solution, constraints=self.planner.signal_constraints(depart_s)
        )
        if not verdict.ok:
            raise PlanRejectedError(
                "served plan failed its safety audit: " + verdict.summary(),
                violations=verdict.violations,
            )

    def _revalidate(self, profile: VelocityProfile, depart_s: float) -> bool:
        """Whether a shifted cached profile still hits every arrival window.

        The cache key quantizes the departure phase, so a shifted profile's
        arrivals can drift up to ``phase_quantum_s`` relative to the solve
        that produced it.  The planner's window margin normally absorbs
        that drift; this check catches the cases it cannot (quantum larger
        than the margin, windows whose edges moved between cycles).
        """
        for constraint in self.planner.signal_constraints(depart_s):
            arrival = profile.arrival_time_at(constraint.position_m)
            if not bool(constraint.windows.contains(np.asarray([arrival]))[0]):
                return False
        return True

    def _fastest_trip(self, depart_s: float) -> float:
        """Minimum feasible trip time, memoized per departure bin.

        Cacheable (periodic) planners share one entry per quantized phase
        bin.  Uncacheable planners (time-varying rates) still memoize per
        *exact* departure — the solve is deterministic, so repeated
        budget-less requests at one departure pay a single ``minimize=
        "time"`` DP instead of one each, without any quantization that
        could alter budgets (and therefore plans).
        """
        if not self._cacheable:
            cached = self.min_time_exact.get(depart_s)
            if cached is None:
                t0 = _time.perf_counter()
                try:
                    cached = self.planner.min_trip_time(depart_s)
                finally:
                    with self._mutex:
                        self.stats.total_compute_s += _time.perf_counter() - t0
                self.min_time_exact.put(depart_s, cached)
            return cached
        phase_bin = self._phase_bin(depart_s)
        cached = self.min_time_cache.get(phase_bin)
        if cached is None:
            t0 = _time.perf_counter()
            try:
                cached = self.planner.min_trip_time(depart_s)
            finally:
                with self._mutex:
                    self.stats.total_compute_s += _time.perf_counter() - t0
            self.min_time_cache.put(phase_bin, cached)
        return cached

    @staticmethod
    def _shift_profile(profile: VelocityProfile, depart_s: float) -> VelocityProfile:
        """The cached profile re-anchored at a new departure time."""
        return VelocityProfile(
            positions_m=profile.positions_m,
            speeds_ms=profile.speeds_ms,
            dwell_s=profile.dwell_s,
            start_time_s=depart_s,
        )

    @property
    def artifact_store(self):
        """The planner's shared corridor-artifact store, if it has one.

        The service itself never builds corridor artifacts — the planner's
        solver does, once, at construction — but fleet/CLI summaries want
        the store counters next to the plan-cache counters, so the store
        is surfaced here.
        """
        return getattr(self.planner, "store", None)

    def stats_snapshot(self) -> ServiceStats:
        """A point-in-time copy of the counters, safe to keep in results.

        ``stats`` itself is the *live* mutable record — later requests
        keep mutating it.  Result objects (fleet studies, benchmarks)
        must hold this snapshot instead, so a finished study's numbers
        cannot drift afterwards.
        """
        with self._mutex:
            return replace(self.stats)

    def cache_stats(self) -> Tuple[CacheStats, CacheStats, CacheStats]:
        """Snapshots of (plan cache, min-time memo, exact min-time memo)."""
        return (
            self.plan_cache.stats(),
            self.min_time_cache.stats(),
            self.min_time_exact.stats(),
        )

    def clear_cache(self) -> None:
        """Drop all cached plans (e.g. after a forecast update)."""
        self.plan_cache.clear()
        self.min_time_cache.clear()
        self.min_time_exact.clear()
