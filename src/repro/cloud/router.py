"""Request routing across corridor shards, behind one service facade.

:class:`PlanRouter` is the seam that turns the single-corridor serving
stack into a sharded one.  It fronts a
:class:`~repro.cloud.registry.CorridorCatalog` and exposes **exactly the
protocol of a** :class:`~repro.cloud.service.CloudPlannerService` —
``request``/``request_batch``/``coalesce_key`` plus the stats surface —
so every layer above it (:class:`~repro.cloud.dispatcher.PlanDispatcher`,
:class:`~repro.cloud.server.PlanServer`,
:class:`~repro.cloud.netclient.NetworkPlanTransport`,
:class:`~repro.resilience.client.ResilientPlanClient`,
:class:`~repro.cloud.fleet.FleetStudy`) drops on top unchanged.

Routing is deterministic: ``corridor_id`` hashes (CRC-32 — *not*
Python's randomized ``hash``) to one of N shards, and the corridor's
runtime (its own plan caches, artifact store, and corridor-bound
service) is built lazily by the catalog on first touch.  Each shard can
own a **dispatcher lane** (``lane_workers > 0``): a per-shard thread
pool, so a storm of solves on one corridor's cold cache saturates only
its own lane while other shards keep serving — per-shard isolation of
serving concurrency, not just of state.  With ``lane_workers=0`` (the
default) routing is a plain synchronous call, and a single-corridor
workload through the router is **bit-identical** to the direct service
path (gated in ``benchmarks/bench_pr9.py``).

Coalesce keys are prefixed with the corridor id, so a dispatcher sitting
on top of the router can never coalesce two corridors' requests into one
flight even when their phase bins and budgets collide — the router-level
guarantee matching the service-level
:class:`~repro.errors.UnknownCorridorError` binding check below it.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.cloud.dispatcher import PlanDispatcher
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.plan_cache import CacheStats
from repro.cloud.registry import CorridorCatalog
from repro.cloud.service import CloudPlannerService, ServiceStats
from repro.core.engine import StoreStats
from repro.errors import ConfigurationError, UnknownCorridorError

__all__ = ["PlanRouter", "RouterStats", "shard_of"]


def shard_of(corridor_id: str, shards: int) -> int:
    """The shard index a corridor id routes to.

    CRC-32 of the UTF-8 id, modulo the shard count — stable across
    processes and Python versions, unlike the built-in ``hash`` (which
    is randomized for strings and would scatter a corridor across
    different shards on every restart).
    """
    return zlib.crc32(corridor_id.encode("utf-8")) % shards


@dataclass(frozen=True)
class RouterStats:
    """Immutable snapshot of one router's counters.

    Attributes:
        shards: Shard count.
        corridors_registered: Ids the catalog holds.
        corridors_built: Ids whose runtimes exist (were actually served).
        routed: Requests resolved to a corridor service.
        rejected: Requests naming an unknown corridor
            (:class:`~repro.errors.UnknownCorridorError`).
        per_shard: Routed-request count per shard index.
    """

    shards: int
    corridors_registered: int
    corridors_built: int
    routed: int
    rejected: int
    per_shard: Tuple[int, ...]

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        return (
            f"{self.routed} routed / {self.rejected} rejected across "
            f"{self.shards} shard(s), "
            f"{self.corridors_built}/{self.corridors_registered} corridor(s) built"
        )


class _LaneView:
    """The duck-typed 'service' a shard's dispatcher lane calls into.

    Lanes must serve *directly* (no re-entry into the lane layer), so
    this view forwards to the router's direct-routing internals while
    sharing its corridor-prefixed coalesce keys.
    """

    __slots__ = ("_router",)

    def __init__(self, router: "PlanRouter") -> None:
        self._router = router

    def coalesce_key(self, req: PlanRequest):
        return self._router.coalesce_key(req)

    def request(self, req: PlanRequest) -> PlanResponse:
        return self._router._request_direct(req)

    def request_batch(self, reqs: Sequence[PlanRequest]):
        return self._router._request_batch_direct(reqs)


class _AggregateCaches:
    """A ``plan_cache``-shaped view summing the corridor caches.

    Exists so callers written against ``service.plan_cache.stats()``
    (the fleet study, CLI summaries) read a fleet-wide roll-up without
    knowing the stack is sharded.
    """

    __slots__ = ("_router", "_which", "name")

    def __init__(self, router: "PlanRouter", which: int, name: str) -> None:
        self._router = router
        self._which = which
        self.name = name

    def stats(self) -> CacheStats:
        merged = CacheStats(name=self.name)
        for service in self._router.per_corridor_services().values():
            merged = _sum_dataclasses(merged, service.cache_stats()[self._which])
        return merged


class _AggregateStore:
    """An ``artifact_store``-shaped view summing the corridor stores."""

    __slots__ = ("_router", "name")

    def __init__(self, router: "PlanRouter") -> None:
        self._router = router
        self.name = f"{router.name}.store"

    def stats(self) -> StoreStats:
        merged = StoreStats()
        for runtime in self._router.catalog.built_runtimes():
            merged = _sum_dataclasses(merged, runtime.store.stats())
        return merged


def _sum_dataclasses(acc, nxt):
    """Field-wise sum of two stats dataclasses (non-numeric fields kept)."""
    updates = {}
    for f in fields(acc):
        a, b = getattr(acc, f.name), getattr(nxt, f.name)
        if isinstance(a, bool) or not isinstance(a, (int, float)):
            continue
        if isinstance(b, (int, float)) and not isinstance(b, bool):
            updates[f.name] = a + b
    return replace(acc, **updates)


class PlanRouter:
    """Route plan requests to per-corridor shards, behind one facade.

    Args:
        catalog: The corridor registry; runtimes build lazily on first
            request per corridor.
        shards: Shard count (>= 1).  Defaults to the number of
            registered corridors (each corridor its own shard, modulo
            CRC collisions).
        lane_workers: Per-shard dispatcher-lane threads.  0 (default)
            serves synchronously in the caller's thread — deterministic,
            bit-identical to the direct service path.  > 0 gives each
            shard its own pool with corridor-prefixed single-flight
            coalescing.
        name: Metric namespace (``<name>.routed``, ``<name>.rejected``,
            ``<name>.shard<i>.routed``, lane namespaces below it).

    Use as a context manager, or call :meth:`shutdown` when lanes exist.
    """

    def __init__(
        self,
        catalog: CorridorCatalog,
        shards: Optional[int] = None,
        lane_workers: int = 0,
        name: str = "cloud.router",
    ) -> None:
        if shards is None:
            shards = max(1, len(catalog))
        if shards < 1:
            raise ConfigurationError(f"router needs >= 1 shard, got {shards}")
        if lane_workers < 0:
            raise ConfigurationError(
                f"lane workers must be >= 0 (0 = synchronous), got {lane_workers}"
            )
        self.catalog = catalog
        self.shards = int(shards)
        self.lane_workers = int(lane_workers)
        self.name = name
        self._mutex = threading.Lock()
        self._routed = 0
        self._rejected = 0
        self._per_shard = [0] * self.shards
        self._lanes: Tuple[PlanDispatcher, ...] = ()
        if self.lane_workers > 0:
            view = _LaneView(self)
            self._lanes = tuple(
                PlanDispatcher(
                    view,
                    workers=self.lane_workers,
                    name=f"{name}.shard{i}.dispatch",
                )
                for i in range(self.shards)
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, corridor_id: str) -> int:
        """The shard index this corridor routes to (deterministic)."""
        return shard_of(corridor_id, self.shards)

    def _resolve(self, req: PlanRequest) -> CloudPlannerService:
        """The corridor service for a request, with routing accounting."""
        registry = obs.get_registry()
        try:
            service = self.catalog.service(req.corridor_id)
        except UnknownCorridorError:
            with self._mutex:
                self._rejected += 1
            registry.inc(f"{self.name}.rejected")
            raise
        shard = self.shard_of(req.corridor_id)
        with self._mutex:
            self._routed += 1
            self._per_shard[shard] += 1
        registry.inc(f"{self.name}.routed")
        registry.inc(f"{self.name}.shard{shard}.routed")
        return service

    def _request_direct(self, req: PlanRequest) -> PlanResponse:
        return self._resolve(req).request(req)

    def _request_batch_direct(
        self, reqs: Sequence[PlanRequest]
    ) -> List[Union[PlanResponse, Exception]]:
        """Group by corridor (order preserved within each), serve, scatter."""
        outcomes: List[Union[PlanResponse, Exception]] = [None] * len(reqs)
        groups: "Dict[str, List[int]]" = {}
        for idx, req in enumerate(reqs):
            groups.setdefault(req.corridor_id, []).append(idx)
        for corridor_id, indices in groups.items():
            try:
                service = self.catalog.service(corridor_id)
            except UnknownCorridorError as exc:
                registry = obs.get_registry()
                with self._mutex:
                    self._rejected += len(indices)
                for idx in indices:
                    registry.inc(f"{self.name}.rejected")
                    outcomes[idx] = exc
                continue
            shard = self.shard_of(corridor_id)
            registry = obs.get_registry()
            with self._mutex:
                self._routed += len(indices)
                self._per_shard[shard] += len(indices)
            for idx in indices:
                registry.inc(f"{self.name}.routed")
                registry.inc(f"{self.name}.shard{shard}.routed")
            sub = service.request_batch([reqs[idx] for idx in indices])
            for idx, outcome in zip(indices, sub):
                outcomes[idx] = outcome
        return outcomes

    # ------------------------------------------------------------------
    # The CloudPlannerService protocol
    # ------------------------------------------------------------------
    def coalesce_key(self, req: PlanRequest):
        """The corridor-prefixed coalesce key (or ``None``).

        Prefixing with the corridor id means a dispatcher fronting the
        router can never merge two corridors' requests into one flight,
        even when their phase bins and budget bins collide.  An unknown
        corridor is uncoalescable — it runs solo so :meth:`request` can
        surface the typed rejection.
        """
        if req.corridor_id not in self.catalog:
            return None
        inner = self.catalog.service(req.corridor_id).coalesce_key(req)
        if inner is None:
            return None
        return (req.corridor_id,) + tuple(inner)

    def request(self, req: PlanRequest) -> PlanResponse:
        """Route one request to its corridor's service.

        Raises:
            UnknownCorridorError: The request's corridor is not in the
                catalog (the error carries the offending id and the ids
                the catalog holds).
            PlanningFailedError: The corridor's planner found the
                request infeasible.
        """
        if not self._lanes:
            return self._request_direct(req)
        return self._lanes[self.shard_of(req.corridor_id)].request(req)

    def request_batch(
        self, reqs: Sequence[PlanRequest]
    ) -> List[Union[PlanResponse, Exception]]:
        """Serve many requests, batched per corridor, results in order.

        Without lanes this is the corridor-grouped equivalent of
        :meth:`CloudPlannerService.request_batch` — every corridor's
        sub-batch is served as one vectorized program.  With lanes, each
        request is submitted to its shard's dispatcher (submission order
        preserved, so per-key leadership matches the serial order) and
        the shards serve concurrently.
        """
        if not self._lanes:
            return self._request_batch_direct(reqs)
        futures = [
            self._lanes[self.shard_of(req.corridor_id)].submit(req) for req in reqs
        ]
        outcomes: List[Union[PlanResponse, Exception]] = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 - mirrored to caller
                outcomes.append(exc)
        return outcomes

    # ------------------------------------------------------------------
    # Aggregated stats surface (ducks as a CloudPlannerService)
    # ------------------------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        """Whether every built corridor service has phase caching on."""
        services = self.per_corridor_services().values()
        return all(s.cache_enabled for s in services) if services else True

    def stats_snapshot(self) -> ServiceStats:
        """Fleet-wide service counters: field-wise sum over corridors."""
        merged = ServiceStats()
        for service in self.per_corridor_services().values():
            merged = _sum_dataclasses(merged, service.stats_snapshot())
        return merged

    def cache_stats(self) -> Tuple[CacheStats, CacheStats, CacheStats]:
        """Aggregated (plan cache, min-time memo, exact memo) snapshots."""
        return (
            self.plan_cache.stats(),
            self.min_time_cache.stats(),
            self.min_time_exact.stats(),
        )

    @property
    def plan_cache(self) -> _AggregateCaches:
        """A summing view over every corridor's plan cache."""
        return _AggregateCaches(self, 0, f"{self.name}.plan_cache")

    @property
    def min_time_cache(self) -> _AggregateCaches:
        return _AggregateCaches(self, 1, f"{self.name}.min_time_cache")

    @property
    def min_time_exact(self) -> _AggregateCaches:
        return _AggregateCaches(self, 2, f"{self.name}.min_time_exact")

    @property
    def artifact_store(self) -> _AggregateStore:
        """A summing view over every corridor's artifact store."""
        return _AggregateStore(self)

    def clear_cache(self) -> None:
        """Drop every corridor's cached plans."""
        for service in self.per_corridor_services().values():
            service.clear_cache()

    # ------------------------------------------------------------------
    # Per-corridor breakdown (consumed by repro.cloud.stats)
    # ------------------------------------------------------------------
    def per_corridor_services(self) -> Dict[str, CloudPlannerService]:
        """The built corridor services, keyed by corridor id."""
        return {
            runtime.corridor_id: runtime.service
            for runtime in self.catalog.built_runtimes()
        }

    def router_stats(self) -> RouterStats:
        """An immutable snapshot of the routing counters."""
        with self._mutex:
            return RouterStats(
                shards=self.shards,
                corridors_registered=len(self.catalog),
                corridors_built=len(self.catalog.built_ids()),
                routed=self._routed,
                rejected=self._rejected,
                per_shard=tuple(self._per_shard),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the shard lanes, if any (idempotent)."""
        for lane in self._lanes:
            lane.shutdown(wait=wait)

    def __enter__(self) -> "PlanRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)
