"""Process-parallel dispatch backend: key-sharded planner workers.

Thread-pooled serving cannot scale the DP past one core — the stage
kernels are numpy-on-Python and hold the GIL for most of a solve.  This
backend puts the solves in **worker processes** instead:

* the parent exports the planner's corridor artifacts once into shared
  memory (:class:`repro.core.engine.shm.SharedCorridor`); every worker
  maps the same read-only pages instead of rebuilding (or copying) the
  tens-of-MB build;
* each worker constructs its own planner + service from a small recipe
  and the mapped artifacts, then serves requests from its task queue;
* requests are **sharded by coalesce key**: equal keys always land on
  the same worker, so that worker's phase cache serves followers exactly
  like serial serving would — the first request of a key solves, later
  ones hit the warm cache.  Uncoalescable requests round-robin.

What is shared and what is not: corridor artifacts are shared
(one mapping machine-wide); the *serving caches and counters* are
per-worker — the parent service's ``stats`` do not see process-served
requests, only the dispatcher's own counters do.  Plans remain
bit-identical to serial serving because the solver is deterministic
over identical artifacts and key-sharding preserves per-key request
order.

This backend is honest about platform limits: on a single-core host the
workers time-slice one CPU and throughput gains come from the batched
thread path instead (see ``PlanDispatcher(batch_window_s=...)``).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time as _time
from concurrent.futures import Future
from typing import Dict, Hashable, List, Optional

from repro.cloud.messages import PlanRequest
from repro.cloud.service import CloudPlannerService
from repro.core.engine.shm import SharedCorridor
from repro.core.engine.store import ArtifactStore
from repro.errors import ConfigurationError, DispatchDeadlineError

__all__ = ["ProcessBackend"]


def _build_planner(recipe: dict, store: ArtifactStore):
    """Reconstruct the parent's planner class over pre-mapped artifacts."""
    cls = recipe["planner_cls"]
    if recipe["arrival_rates"] is not None:
        return cls(
            recipe["road"],
            recipe["arrival_rates"],
            vehicle=recipe["vehicle"],
            config=recipe["config"],
            store=store,
            environment=recipe.get("environment"),
        )
    return cls(
        recipe["road"],
        vehicle=recipe["vehicle"],
        config=recipe["config"],
        store=store,
        environment=recipe.get("environment"),
    )


def _worker_main(recipe: dict, shm_spec: dict, task_q, result_q) -> None:
    """Worker loop: map artifacts, build a service, answer tasks."""
    service = None
    init_err: Optional[Exception] = None
    shared = None
    try:
        shared = SharedCorridor.attach(shm_spec)
        # Seed a tiny store with the mapped build; the solver's
        # get_or_build finds it by digest and never re-prices a table.
        store = ArtifactStore(capacity=2)
        store.put(shared.artifacts())
        planner = _build_planner(recipe, store)
        service = CloudPlannerService(planner, **recipe["service_kwargs"])
    except Exception as exc:  # noqa: BLE001 - reported per task below
        init_err = exc
    while True:
        task = task_q.get()
        if task is None:
            break
        task_id, req, deadline_s, submitted_at = task
        if init_err is not None:
            result_q.put((task_id, init_err))
            continue
        # CLOCK_MONOTONIC is system-wide on Linux, so the parent's
        # submission stamp is comparable here.
        if deadline_s is not None and _time.monotonic() - submitted_at >= deadline_s:
            result_q.put(
                (
                    task_id,
                    DispatchDeadlineError(
                        f"request for {req.vehicle_id!r} missed its "
                        f"{deadline_s:.2f} s deadline while queued",
                        vehicle_id=req.vehicle_id,
                        deadline_s=deadline_s,
                    ),
                )
            )
            continue
        try:
            result_q.put((task_id, service.request(req)))
        except Exception as exc:  # noqa: BLE001 - outcome, not a crash
            result_q.put((task_id, exc))
    if shared is not None:
        shared.close()


class ProcessBackend:
    """Key-sharded worker processes behind a :class:`PlanDispatcher`.

    Args:
        service: The parent-side service; its planner supplies the
            corridor artifacts to export and the recipe the workers
            rebuild from.  Callable arrival rates cannot cross a spawn
            boundary; under the default Linux ``fork`` start method they
            are inherited and work fine.
        workers: Number of worker processes (>= 1).
    """

    def __init__(self, service: CloudPlannerService, workers: int = 4) -> None:
        if workers < 1:
            raise ConfigurationError(f"process backend needs >= 1 worker, got {workers}")
        planner = service.planner
        solver = getattr(planner, "solver", None)
        artifacts = getattr(solver, "artifacts", None)
        if artifacts is None:
            raise ConfigurationError(
                "process backend needs a planner with solver artifacts to share"
            )
        self.workers = int(workers)
        self._shared = SharedCorridor.export(artifacts)
        recipe = {
            "planner_cls": type(planner),
            "road": planner.road,
            "vehicle": planner.vehicle,
            "config": planner.config,
            "environment": getattr(planner, "environment", None),
            "arrival_rates": getattr(planner, "arrival_rates", None),
            "service_kwargs": {
                "phase_quantum_s": service.phase_quantum_s,
                "budget_quantum_s": service.budget_quantum_s,
                "default_budget_slack_s": service.default_budget_slack_s,
                "validator": service.validator,
                "cache_capacity": service.plan_cache.capacity,
                "cache_ttl_s": service.plan_cache.ttl_s,
            },
        }
        ctx = mp.get_context()
        self._tasks = [ctx.Queue() for _ in range(self.workers)]
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(recipe, self._shared.spec, task_q, self._results),
                daemon=True,
                name=f"plan-worker-{i}",
            )
            for i, task_q in enumerate(self._tasks)
        ]
        for proc in self._procs:
            proc.start()
        self._lock = threading.Lock()
        self._futures: Dict[int, Future] = {}
        self._task_seq = 0
        self._round_robin = 0
        self._down = False
        self._collector = threading.Thread(
            target=self._collect, name="plan-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------
    # Submission / collection
    # ------------------------------------------------------------------
    def submit(
        self,
        req: PlanRequest,
        key: Optional[Hashable],
        deadline_s: Optional[float],
        submitted_at: float,
    ) -> Future:
        """Route one request to its key's worker; returns its future."""
        future: Future = Future()
        with self._lock:
            if self._down:
                future.set_exception(
                    RuntimeError("process backend is shut down")
                )
                return future
            task_id = self._task_seq
            self._task_seq += 1
            self._futures[task_id] = future
            if key is None:
                shard = self._round_robin % self.workers
                self._round_robin += 1
            else:
                shard = hash(key) % self.workers
        self._tasks[shard].put((task_id, req, deadline_s, submitted_at))
        return future

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is None:
                return
            task_id, outcome = item
            with self._lock:
                future = self._futures.pop(task_id, None)
            if future is None:
                continue
            try:
                if isinstance(outcome, Exception):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
            except Exception:  # noqa: BLE001 - future was cancelled
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers, drain results, release the shared block."""
        with self._lock:
            if self._down:
                return
            self._down = True
        for task_q in self._tasks:
            task_q.put(None)
        if wait:
            for proc in self._procs:
                proc.join(timeout=30.0)
        # Workers enqueue every result before exiting, and the queue is
        # FIFO — the sentinel lands after all real results.
        self._results.put(None)
        self._collector.join(timeout=30.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        leftovers: List[Future] = []
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
        for future in leftovers:
            try:
                future.set_exception(
                    RuntimeError("process backend shut down before serving")
                )
            except Exception:  # noqa: BLE001 - future was cancelled
                pass
        self._shared.unlink()
