"""Cache layer: a bounded, thread-safe LRU+TTL cache for served plans.

:class:`PlanCache` replaces the serving stack's previously unbounded
in-process dicts (the phase-keyed plan cache and both min-time memos of
:class:`~repro.cloud.service.CloudPlannerService`) with one explicit
primitive, mirroring the engine layer's
:class:`~repro.core.engine.ArtifactStore`:

* **bounded** — a capacity-bounded LRU; inserting past capacity evicts
  the least-recently-used entry and counts it;
* **TTL** — entries older than ``ttl_s`` (monotonic seconds since
  insertion) are treated as absent: the lookup counts an expiration
  *and* a miss, and the entry is dropped.  ``ttl_s=None`` disables
  expiry (the service default — with fixed-time signals a cached plan
  never goes stale by age, only by forecast updates, which call
  :meth:`clear`);
* **thread-safe** — every operation holds an internal lock, so the
  dispatch layer's worker threads share one cache safely;
* **counted** — hits, misses, expirations, evictions and revalidation
  misses are tracked exactly (under the lock) and mirrored into
  :mod:`repro.obs` under ``<name>.hits`` / ``.misses`` / ``.expirations``
  / ``.evictions`` / ``.revalidation_misses``.

Revalidation is a *serving* decision, not a lookup decision — the
service re-checks a hit's shifted arrivals against the signal windows
and may reject it.  The cache only counts those rejections
(:meth:`note_revalidation_miss`) so cache economics stay in one place.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Tuple

from repro import obs
from repro.errors import ConfigurationError

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one cache's counters.

    Attributes:
        name: The cache's metrics namespace (e.g. ``"cloud.plan_cache"``).
        hits: Lookups answered from the cache.
        misses: Lookups that found nothing usable (includes expirations).
        expirations: Entries dropped because their TTL had lapsed; each
            one is also counted as a miss.
        evictions: Entries dropped to respect the capacity bound.
        revalidation_misses: Hits the serving layer discarded after
            revalidating them against the signal windows.
        size: Entries currently held.
        capacity: The bound.
        ttl_s: The expiry horizon (``None`` = no expiry).
    """

    name: str = ""
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    revalidation_misses: int = 0
    size: int = 0
    capacity: int = 0
    ttl_s: Optional[float] = None

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction of all lookups; 0 when the cache was never asked."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable form for CLI/report output."""
        line = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.evictions} eviction(s), hit rate {self.hit_rate:.2f}"
        )
        if self.expirations:
            line += f", {self.expirations} expired"
        if self.revalidation_misses:
            line += f", {self.revalidation_misses} failed revalidation"
        return line


class PlanCache:
    """Bounded, thread-safe LRU+TTL cache keyed by hashable tuples.

    Args:
        capacity: Maximum entries held at once.  The service's plan
            cache holds one entry per ``(phase bin, budget bin)`` pair —
            a 60 s signal period at 1 s quanta and a handful of budget
            bins fits comfortably in the default.
        ttl_s: Entry lifetime in (monotonic) seconds; ``None`` = no
            expiry.
        name: Metrics namespace for the mirrored :mod:`repro.obs`
            counters; also reported in :class:`CacheStats`.
        clock: Monotonic time source, injectable for tests; defaults to
            :func:`time.monotonic`.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_s: Optional[float] = None,
        name: str = "cloud.plan_cache",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError(f"cache TTL must be positive, got {ttl_s}")
        self.capacity = int(capacity)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.name = name
        self._clock = clock if clock is not None else time.monotonic
        self._entries: "OrderedDict[Hashable, Tuple[Any, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._expirations = 0
        self._evictions = 0
        self._revalidation_misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership with :meth:`get`'s expiry semantics, without a lookup.

        An entry past its TTL is dropped and counted as an expiration —
        exactly as :meth:`get` would have done — so ``size`` and the
        eviction order never disagree with what a lookup would observe.
        No hit/miss is counted and recency is not refreshed: membership
        tests are not serving decisions.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if self._expired(entry[1]):
                del self._entries[key]
                self._expirations += 1
                obs.get_registry().inc(f"{self.name}.expirations")
                return False
            return True

    def peek(self, key: Hashable) -> Optional[Any]:
        """The cached value with **no** side effects at all.

        Unlike :meth:`get`, nothing is counted, recency is not refreshed
        and an expired entry is left in place (it merely reads as
        absent).  The batched serving path uses this to *plan* its cache
        interactions ahead of replaying them with :meth:`get`/:meth:`put`
        in serial order, so the counters still reflect the serial
        story exactly.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry[1]):
                return None
            return entry[0]

    def keys(self) -> List[Hashable]:
        """The currently held keys, least-recently-used first."""
        with self._lock:
            return list(self._entries.keys())

    def _expired(self, inserted_at: float) -> bool:
        return self.ttl_s is not None and self._clock() - inserted_at > self.ttl_s

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshing recency), else ``None``.

        An entry past its TTL is dropped and counted as an expiration
        plus a miss — from the caller's perspective it was never there.
        """
        registry = obs.get_registry()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry[1]):
                del self._entries[key]
                self._expirations += 1
                registry.inc(f"{self.name}.expirations")
                entry = None
            if entry is None:
                self._misses += 1
                registry.inc(f"{self.name}.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            registry.inc(f"{self.name}.hits")
            return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) one entry, evicting LRU overflow."""
        registry = obs.get_registry()
        with self._lock:
            self._entries[key] = (value, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                registry.inc(f"{self.name}.evictions")

    def note_revalidation_miss(self) -> None:
        """Record a hit the serving layer rejected after revalidation."""
        with self._lock:
            self._revalidation_misses += 1
        obs.get_registry().inc(f"{self.name}.revalidation_misses")

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """An immutable snapshot of the counters."""
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                expirations=self._expirations,
                evictions=self._evictions,
                revalidation_misses=self._revalidation_misses,
                size=len(self._entries),
                capacity=self.capacity,
                ttl_s=self.ttl_s,
            )
