"""One JSON document composing every serving-stack counter.

Downstream tooling (dashboards, regression trackers, the CLI's
``--service-stats-json``) wants the whole serving picture in one place:
service accounting, the three plan caches, the dispatcher, the resilient
client and the corridor-artifact store.  :func:`compose_stats_document`
snapshots whichever components the caller has and renders them as plain
JSON-serializable types — absent components are simply omitted, so the
document shape is stable regardless of how much of the stack a run
stood up.

When the ``service`` is a :class:`~repro.cloud.router.PlanRouter` the
top-level sections hold the fleet-wide roll-up (so dashboards keyed on
them keep working), and two extra sections appear: ``router`` (shard
count and routed/rejected counters) and ``corridors`` — one full
service/cache/store breakdown per built corridor, so hit rates are
inspectable per corridor, not just in aggregate.  The sections are
duck-typed (``per_corridor_services``/``router_stats``), so anything
exposing that surface gets the same treatment.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

#: Document schema tag; bump on incompatible layout changes.
STATS_SCHEMA = "repro.cloud.stats/v1"

__all__ = ["STATS_SCHEMA", "compose_stats_document"]


def _service_section(service) -> Dict[str, Any]:
    stats = service.stats_snapshot()
    section = asdict(stats)
    section["hit_rate"] = stats.hit_rate
    section["cache_enabled"] = service.cache_enabled
    return section


def _cache_section(cache_stats) -> Dict[str, Any]:
    section = asdict(cache_stats)
    section["hit_rate"] = cache_stats.hit_rate
    return section


def _client_section(client) -> Dict[str, Any]:
    stats = client.stats
    return {
        "requests": stats.requests,
        "served": stats.served,
        "attempts": stats.attempts,
        "retries": stats.retries,
        "drops": stats.drops,
        "outage_drops": stats.outage_drops,
        "deadline_exceeded": stats.deadline_exceeded,
        "failures": stats.failures,
        "fast_fails": stats.fast_fails,
        "transport_errors": stats.transport_errors,
        "busy_rejections": stats.busy_rejections,
        "wire_roundtrips": stats.wire_roundtrips,
        "breaker_state": stats.breaker_state,
        "breaker_opens": stats.breaker_opens,
    }


def compose_stats_document(
    service=None,
    dispatcher=None,
    client=None,
    store=None,
) -> Dict[str, Any]:
    """The composed serving-stack counters as one JSON-ready dict.

    Args:
        service: Optional :class:`~repro.cloud.service.CloudPlannerService`;
            contributes the ``service`` section plus one section per
            serving cache (``plan_cache``, ``min_time_cache``,
            ``min_time_exact``) and, when the planner holds a store and
            none was passed explicitly, the ``artifact_store`` section.
        dispatcher: Optional :class:`~repro.cloud.dispatcher.PlanDispatcher`.
        client: Optional :class:`~repro.resilience.client.ResilientPlanClient`.
        store: Optional :class:`~repro.core.engine.ArtifactStore`
            (overrides the service's own).
    """
    document: Dict[str, Any] = {"schema": STATS_SCHEMA}
    if service is not None:
        document["service"] = _service_section(service)
        plan, min_time, min_time_exact = service.cache_stats()
        document["plan_cache"] = _cache_section(plan)
        document["min_time_cache"] = _cache_section(min_time)
        document["min_time_exact"] = _cache_section(min_time_exact)
        if store is None:
            store = service.artifact_store
        router_stats = getattr(service, "router_stats", None)
        if callable(router_stats):
            snapshot = router_stats()
            router_section = asdict(snapshot)
            router_section["per_shard"] = list(snapshot.per_shard)
            document["router"] = router_section
        per_corridor = getattr(service, "per_corridor_services", None)
        if callable(per_corridor):
            corridors: Dict[str, Any] = {}
            for corridor_id, corridor_service in sorted(per_corridor().items()):
                plan, min_time, min_time_exact = corridor_service.cache_stats()
                entry: Dict[str, Any] = {
                    "service": _service_section(corridor_service),
                    "plan_cache": _cache_section(plan),
                    "min_time_cache": _cache_section(min_time),
                    "min_time_exact": _cache_section(min_time_exact),
                }
                corridor_store = corridor_service.artifact_store
                if corridor_store is not None:
                    store_stats = corridor_store.stats()
                    store_section = asdict(store_stats)
                    store_section["hit_rate"] = store_stats.hit_rate
                    entry["artifact_store"] = store_section
                corridors[corridor_id] = entry
            document["corridors"] = corridors
    if dispatcher is not None:
        stats = dispatcher.stats()
        section = asdict(stats)
        section["in_flight"] = stats.in_flight
        document["dispatcher"] = section
    if client is not None:
        document["client"] = _client_section(client)
    if store is not None:
        store_stats = store.stats()
        section = asdict(store_stats)
        section["hit_rate"] = store_stats.hit_rate
        document["artifact_store"] = section
    return document
