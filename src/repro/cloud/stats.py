"""One JSON document composing every serving-stack counter.

Downstream tooling (dashboards, regression trackers, the CLI's
``--service-stats-json``) wants the whole serving picture in one place:
service accounting, the three plan caches, the dispatcher, the resilient
client and the corridor-artifact store.  :func:`compose_stats_document`
snapshots whichever components the caller has and renders them as plain
JSON-serializable types — absent components are simply omitted, so the
document shape is stable regardless of how much of the stack a run
stood up.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

#: Document schema tag; bump on incompatible layout changes.
STATS_SCHEMA = "repro.cloud.stats/v1"

__all__ = ["STATS_SCHEMA", "compose_stats_document"]


def _service_section(service) -> Dict[str, Any]:
    stats = service.stats_snapshot()
    section = asdict(stats)
    section["hit_rate"] = stats.hit_rate
    section["cache_enabled"] = service.cache_enabled
    return section


def _cache_section(cache_stats) -> Dict[str, Any]:
    section = asdict(cache_stats)
    section["hit_rate"] = cache_stats.hit_rate
    return section


def _client_section(client) -> Dict[str, Any]:
    stats = client.stats
    return {
        "requests": stats.requests,
        "served": stats.served,
        "attempts": stats.attempts,
        "retries": stats.retries,
        "drops": stats.drops,
        "outage_drops": stats.outage_drops,
        "deadline_exceeded": stats.deadline_exceeded,
        "failures": stats.failures,
        "fast_fails": stats.fast_fails,
        "transport_errors": stats.transport_errors,
        "busy_rejections": stats.busy_rejections,
        "wire_roundtrips": stats.wire_roundtrips,
        "breaker_state": stats.breaker_state,
        "breaker_opens": stats.breaker_opens,
    }


def compose_stats_document(
    service=None,
    dispatcher=None,
    client=None,
    store=None,
) -> Dict[str, Any]:
    """The composed serving-stack counters as one JSON-ready dict.

    Args:
        service: Optional :class:`~repro.cloud.service.CloudPlannerService`;
            contributes the ``service`` section plus one section per
            serving cache (``plan_cache``, ``min_time_cache``,
            ``min_time_exact``) and, when the planner holds a store and
            none was passed explicitly, the ``artifact_store`` section.
        dispatcher: Optional :class:`~repro.cloud.dispatcher.PlanDispatcher`.
        client: Optional :class:`~repro.resilience.client.ResilientPlanClient`.
        store: Optional :class:`~repro.core.engine.ArtifactStore`
            (overrides the service's own).
    """
    document: Dict[str, Any] = {"schema": STATS_SCHEMA}
    if service is not None:
        document["service"] = _service_section(service)
        plan, min_time, min_time_exact = service.cache_stats()
        document["plan_cache"] = _cache_section(plan)
        document["min_time_cache"] = _cache_section(min_time)
        document["min_time_exact"] = _cache_section(min_time_exact)
        if store is None:
            store = service.artifact_store
    if dispatcher is not None:
        stats = dispatcher.stats()
        section = asdict(stats)
        section["in_flight"] = stats.in_flight
        document["dispatcher"] = section
    if client is not None:
        document["client"] = _client_section(client)
    if store is not None:
        store_stats = store.stats()
        section = asdict(store_stats)
        section["hit_rate"] = store_stats.hit_rate
        document["artifact_store"] = section
    return document
