"""Fleet-scale evaluation of the cloud planning service.

Models a day-slice of EV traffic on the corridor: vehicles depart at
Poisson times, each asks the cloud for a plan, and the study aggregates
the fleet's planned energy against what the same fleet would burn driving
like the paper's human references (a mild/fast mix).  Also surfaces the
service-side economics — the phase cache means fleet cost grows with the
number of *distinct phases*, not the number of vehicles.

Two serving modes share one aggregation path:

* **serial** (``workers=0``, the default) — each request is served in
  the caller's thread, exactly as before;
* **dispatched** (``workers>0``) — the Poisson stream is submitted
  through a :class:`~repro.cloud.dispatcher.PlanDispatcher`, which
  serves distinct phases concurrently and coalesces same-phase requests
  into single solves.  Submission order matches departure order, so
  coalescing leadership (and therefore every served profile) is
  bit-identical to the serial mode.  The dispatcher's batched
  (``batch_window_s``) and process (``backend="process"``) variants
  plug in here unchanged — all of them serve bit-identical plans.

With ``wire_roundtrip=True`` every request and response crosses the
:mod:`repro.cloud.wire` codec — a realistic serialization boundary whose
bit-exactness keeps results unchanged.

**Multi-corridor mode** (``corridors=`` instead of ``road=``) drives an
interleaved fleet across several corridors at once — vehicle ``i``
departs on corridor ``i % len(corridors)`` — against a sharded target
such as a :class:`~repro.cloud.router.PlanRouter`.  Human references
are synthesized per corridor (each corridor's own road and signals),
and the result carries a :class:`CorridorFleetSlice` per corridor next
to the fleet-wide aggregate, so per-corridor savings and cache economics
are inspectable directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cloud import wire
from repro.cloud.dispatcher import DispatcherStats, PlanDispatcher
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.plan_cache import CacheStats
from repro.cloud.service import CloudPlannerService, ServiceStats
from repro.core.engine import StoreStats
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
)
from repro.route.road import RoadSegment
from repro.trace.driver import fast_driver, mild_driver, synthesize_trace


@dataclass
class CorridorFleetSlice:
    """One corridor's share of a multi-corridor fleet study.

    Attributes:
        corridor_id: The corridor this slice aggregates.
        n_vehicles: Departures on this corridor that were served.
        n_failed: Departures on this corridor that produced no plan.
        planned_energy_mah: Planned trip energy on this corridor.
        human_energy_mah: Scaled human-reference energy (this corridor's
            own road and signal plan).
        savings_pct: This corridor's energy saving.
        service: This corridor's service counters, when the serving
            target exposes a per-corridor breakdown (a
            :class:`~repro.cloud.router.PlanRouter`); ``None`` otherwise.
        cache: This corridor's plan-cache counters (same condition).
    """

    corridor_id: str
    n_vehicles: int
    n_failed: int
    planned_energy_mah: float
    human_energy_mah: float
    savings_pct: float
    service: Optional[ServiceStats] = None
    cache: Optional[CacheStats] = None

    def summary(self) -> str:
        """One-line roll-up for reports and CLI output."""
        line = (
            f"{self.corridor_id}: {self.n_vehicles} served / "
            f"{self.n_failed} failed, savings {self.savings_pct:.1f}%"
        )
        if self.service is not None:
            line += f", hit rate {self.service.hit_rate:.2f}"
        return line


@dataclass
class FleetResult:
    """Aggregates of one fleet study.

    Every stats field is a point-in-time *snapshot* taken when
    :meth:`FleetStudy.run` returned — serving more requests through the
    same service afterwards cannot mutate a finished result.

    Attributes:
        n_vehicles: Fleet size served (successfully planned).
        n_failed: Departures that produced no plan — unplannable ones
            (:class:`~repro.errors.PlanningFailedError`) and, when
            serving ``via`` a network target, transport-dead ones
            (:class:`~repro.errors.CloudUnavailableError`); the study
            keeps going and reports them here instead of aborting.
        planned_energy_mah: Sum of planned (optimized) trip energies.
        human_energy_mah: Sum of the reference human-driving energies for
            the *served* departures (mild/fast mix) — failed departures
            are excluded from both sides of the comparison.
        savings_pct: Fleet-level energy saving of the optimized plans.
        mean_trip_time_s: Mean planned trip duration.
        service: Planning-service counters (cache hits, errors, compute
            time), snapshotted at the end of the run.
        failed_vehicle_ids: Ids of the unplannable departures, in order.
        store: Corridor-artifact store counters at the end of the run
            (``None`` when the service's planner holds no shared store).
        cache: Plan-cache (LRU+TTL) counters at the end of the run.
        dispatch: Dispatcher counters (``None`` for serial runs).
        per_corridor: One :class:`CorridorFleetSlice` per corridor, in
            catalog order (empty for single-corridor studies).
    """

    n_vehicles: int
    n_failed: int
    planned_energy_mah: float
    human_energy_mah: float
    savings_pct: float
    mean_trip_time_s: float
    service: ServiceStats
    failed_vehicle_ids: List[str] = field(default_factory=list)
    store: Optional[StoreStats] = None
    cache: Optional[CacheStats] = None
    dispatch: Optional[DispatcherStats] = None
    per_corridor: List[CorridorFleetSlice] = field(default_factory=list)

    def summary(self) -> str:
        """One-line roll-up for reports and CLI output."""
        line = (
            f"{self.n_vehicles} served / {self.n_failed} failed, "
            f"savings {self.savings_pct:.1f}%, "
            f"plan-cache hit rate {self.service.hit_rate:.2f}"
        )
        if self.cache is not None:
            line += f", plan cache: {self.cache.summary()}"
        if self.dispatch is not None:
            line += f", dispatcher: {self.dispatch.summary()}"
        if self.store is not None:
            line += f", artifact store: {self.store.summary()}"
        for corridor_slice in self.per_corridor:
            line += f"\n  {corridor_slice.summary()}"
        return line


class FleetStudy:
    """Run a fleet of EVs through the cloud planner.

    Args:
        service: The planning service under study (or a
            :class:`~repro.cloud.router.PlanRouter` fronting several).
        road: Corridor (shared with the service's planner).  Mutually
            exclusive with ``corridors``.
        fleet_rate_vph: EV departure rate (vehicles/hour).
        mild_fraction: Share of the fleet whose human reference is the
            mild style (the rest drive fast).
        background_vph: Background traffic used for the human references.
        seed: Departure sampling and style assignment seed.
        workers: Dispatcher worker threads; 0 (the default) serves the
            stream serially in the caller's thread.
        wire_roundtrip: Round-trip every request and response through
            the wire codec (bit-exact; results unchanged).
        backend: Dispatcher backend when ``workers > 0``: ``"thread"``
            (default) or ``"process"`` (key-sharded worker processes
            over shared-memory artifacts).
        batch_window_s: When set (thread backend), the dispatcher
            micro-batches the stream: same-window requests solve as one
            vectorized DP (see
            :meth:`~repro.cloud.service.CloudPlannerService.request_batch`).
        via: Alternate request target for serial mode — anything with a
            compatible ``request(req)`` (a
            :class:`~repro.cloud.netclient.NetworkPlanTransport`
            pointing at a plan server, or a
            :class:`~repro.resilience.client.ResilientPlanClient`
            wrapping one).  ``service`` is still required: it is the
            stats authority the result snapshots.  Departures the
            target fails with :class:`~repro.errors.CloudUnavailableError`
            (timeouts, resets, BUSY sheds that survive the client's
            retries) are recorded as failed, like unplannable ones.
            Mutually exclusive with ``workers > 0``.
        corridors: Multi-corridor mode — a sequence of corridor specs
            (anything with ``corridor_id`` and ``road`` attributes, e.g.
            :class:`~repro.cloud.registry.CorridorSpec`).  Vehicle ``i``
            departs on corridor ``i % len(corridors)`` and its request
            carries that ``corridor_id``, so the serving target must
            know every named corridor (a
            :class:`~repro.cloud.router.PlanRouter` over the matching
            catalog).  Mutually exclusive with ``road``.
    """

    def __init__(
        self,
        service: CloudPlannerService,
        road: Optional[RoadSegment] = None,
        fleet_rate_vph: float = 40.0,
        mild_fraction: float = 0.5,
        background_vph: float = 300.0,
        seed: int = 0,
        workers: int = 0,
        wire_roundtrip: bool = False,
        backend: str = "thread",
        batch_window_s: Optional[float] = None,
        via=None,
        corridors: Optional[Sequence] = None,
    ) -> None:
        if fleet_rate_vph <= 0:
            raise ConfigurationError("fleet rate must be positive")
        if not 0.0 <= mild_fraction <= 1.0:
            raise ConfigurationError("mild fraction must be in [0, 1]")
        if workers < 0:
            raise ConfigurationError("workers must be >= 0 (0 = serial)")
        if via is not None and workers > 0:
            raise ConfigurationError(
                "via= serves serially; combine it with workers=0"
            )
        if (road is None) == (corridors is None):
            raise ConfigurationError(
                "pass exactly one of road= (single corridor) or "
                "corridors= (multi-corridor)"
            )
        if corridors is not None:
            corridors = tuple(corridors)
            if not corridors:
                raise ConfigurationError("corridors= must name >= 1 corridor")
            for spec in corridors:
                if not getattr(spec, "corridor_id", "") or not hasattr(spec, "road"):
                    raise ConfigurationError(
                        "each corridor spec needs corridor_id and road "
                        f"attributes, got {spec!r}"
                    )
            seen = [spec.corridor_id for spec in corridors]
            if len(set(seen)) != len(seen):
                raise ConfigurationError(f"duplicate corridor ids in {seen}")
        self.service = service
        self.via = via
        self.road = road
        self.corridors = corridors
        self.fleet_rate_vph = fleet_rate_vph
        self.mild_fraction = mild_fraction
        self.background_vph = background_vph
        self.seed = seed
        self.workers = int(workers)
        self.wire_roundtrip = bool(wire_roundtrip)
        self.backend = backend
        self.batch_window_s = batch_window_s

    def _corridor_of(self, index: int):
        """The corridor spec vehicle ``index`` departs on (``None`` = single)."""
        if self.corridors is None:
            return None
        return self.corridors[index % len(self.corridors)]

    def _make_request(
        self, vehicle_id: str, depart_s: float, corridor_id: Optional[str] = None
    ) -> PlanRequest:
        if corridor_id is None:
            req = PlanRequest(vehicle_id=vehicle_id, depart_s=depart_s)
        else:
            req = PlanRequest(
                vehicle_id=vehicle_id, depart_s=depart_s, corridor_id=corridor_id
            )
        if self.wire_roundtrip:
            req = wire.roundtrip_request(req)
        return req

    def _serve_stream(self, departures: np.ndarray):
        """Serve all departures; yields ``(vehicle_id, response-or-error)``.

        Both modes produce results in departure order, so aggregation
        downstream is identical (and sums bit-identical) either way.
        """
        requests = [
            self._make_request(
                f"ev{i}",
                float(depart),
                spec.corridor_id if (spec := self._corridor_of(i)) else None,
            )
            for i, depart in enumerate(departures)
        ]
        if self.workers > 0:
            dispatcher = PlanDispatcher(
                self.service,
                workers=self.workers,
                backend=self.backend,
                batch_window_s=self.batch_window_s,
            )
            try:
                outcomes = dispatcher.submit_many(requests, return_exceptions=True)
            finally:
                dispatcher.shutdown()
            self._dispatch_stats = dispatcher.stats()
            for req, outcome in zip(requests, outcomes):
                yield req.vehicle_id, outcome
            return
        self._dispatch_stats = None
        target = self.via if self.via is not None else self.service
        for req in requests:
            try:
                yield req.vehicle_id, target.request(req)
            except (PlanningFailedError, CloudUnavailableError) as exc:
                yield req.vehicle_id, exc

    def run(
        self,
        duration_s: float,
        start_s: float = 300.0,
        human_reference_sample: int = 4,
    ) -> FleetResult:
        """Serve a Poisson stream of plan requests over ``duration_s``.

        Human reference energies are expensive (each is a simulator run),
        so they are measured on ``human_reference_sample`` departures per
        style and scaled to the fleet — human trip energy varies little
        with departure compared to its mild/fast split.

        Departures the service cannot plan
        (:class:`~repro.errors.PlanningFailedError`) do not abort the
        study: they are recorded in ``FleetResult.failed_vehicle_ids``
        (and the service's ``stats.errors``), excluded from both the
        planned and the human-reference energy sums, and the run carries
        on with the remaining fleet.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        registry = obs.get_registry()
        rng = np.random.default_rng(self.seed)
        n = rng.poisson(self.fleet_rate_vph * duration_s / 3600.0)
        departures = np.sort(rng.uniform(start_s, start_s + duration_s, size=n))
        styles = rng.random(n) < self.mild_fraction

        specs = self.corridors if self.corridors is not None else (None,)
        corridor_ids = [
            spec.corridor_id if spec is not None else "" for spec in specs
        ]

        with registry.span("fleet.run", departures=int(n)):
            # Accumulators are keyed per corridor; the single-corridor
            # study is the one-key special case of the same path.
            trip_times: List[float] = []
            served_mild = {cid: 0 for cid in corridor_ids}
            served_fast = {cid: 0 for cid in corridor_ids}
            planned = {cid: 0.0 for cid in corridor_ids}
            failed = {cid: 0 for cid in corridor_ids}
            failed_ids: List[str] = []
            for i, (vehicle_id, outcome) in enumerate(
                self._serve_stream(departures)
            ):
                spec = self._corridor_of(i)
                cid = spec.corridor_id if spec is not None else ""
                if isinstance(outcome, (PlanningFailedError, CloudUnavailableError)):
                    failed_ids.append(vehicle_id)
                    failed[cid] += 1
                    registry.inc("fleet.failed")
                    continue
                if isinstance(outcome, Exception):
                    raise outcome
                response: PlanResponse = outcome
                if self.wire_roundtrip:
                    response = wire.roundtrip_response(response)
                planned[cid] += response.energy_mah
                trip_times.append(response.trip_time_s)
                if styles[i]:
                    served_mild[cid] += 1
                else:
                    served_fast[cid] += 1
                registry.inc("fleet.served")

            # Human references per corridor (each corridor's own road and
            # signal plan) and per style.
            human_means: Dict[Tuple[str, str], float] = {}
            for spec, cid in zip(specs, corridor_ids):
                road = spec.road if spec is not None else self.road
                for style in (mild_driver(), fast_driver()):
                    energies = []
                    for k in range(human_reference_sample):
                        depart = start_s + k * 17.0
                        trace = synthesize_trace(
                            road,
                            style,
                            arrival_rate_vph=self.background_vph,
                            depart_s=depart,
                            seed=self.seed + k,
                        )
                        energies.append(trace.energy().net_mah)
                    human_means[(cid, style.name)] = float(np.mean(energies))

        per_service = {}
        per_corridor_services = getattr(self.service, "per_corridor_services", None)
        if callable(per_corridor_services):
            per_service = per_corridor_services()

        slices: List[CorridorFleetSlice] = []
        planned_total = 0.0
        human_total = 0.0
        n_served = 0
        for cid in corridor_ids:
            human = (
                served_mild[cid] * human_means[(cid, "mild")]
                + served_fast[cid] * human_means[(cid, "fast")]
            )
            planned_total += planned[cid]
            human_total += human
            n_served += served_mild[cid] + served_fast[cid]
            if self.corridors is None:
                continue
            corridor_service = per_service.get(cid)
            slices.append(
                CorridorFleetSlice(
                    corridor_id=cid,
                    n_vehicles=served_mild[cid] + served_fast[cid],
                    n_failed=failed[cid],
                    planned_energy_mah=planned[cid],
                    human_energy_mah=human,
                    savings_pct=(
                        100.0 * (1.0 - planned[cid] / human) if human > 0 else 0.0
                    ),
                    service=(
                        corridor_service.stats_snapshot()
                        if corridor_service is not None
                        else None
                    ),
                    cache=(
                        corridor_service.plan_cache.stats()
                        if corridor_service is not None
                        else None
                    ),
                )
            )

        savings = (
            100.0 * (1.0 - planned_total / human_total) if human_total > 0 else 0.0
        )
        return FleetResult(
            n_vehicles=n_served,
            n_failed=len(failed_ids),
            planned_energy_mah=planned_total,
            human_energy_mah=human_total,
            savings_pct=savings,
            mean_trip_time_s=float(np.mean(trip_times)) if trip_times else 0.0,
            service=self.service.stats_snapshot(),
            failed_vehicle_ids=failed_ids,
            store=(
                store.stats()
                if (store := self.service.artifact_store) is not None
                else None
            ),
            cache=self.service.plan_cache.stats(),
            dispatch=self._dispatch_stats,
            per_corridor=slices,
        )
