"""Socket transport for the plan-serving wire protocol.

:class:`NetworkPlanTransport` is the vehicle side of the front door: it
speaks length-prefixed wire frames to a :class:`~repro.cloud.server.
PlanServer` over TCP and presents the same synchronous ``request(req)``
surface as :class:`~repro.cloud.service.CloudPlannerService` — so it
drops straight into :class:`~repro.resilience.client.ResilientPlanClient`
(as its ``service``), the :class:`~repro.cloud.fleet.FleetStudy` (via
``via=``) and the degradation ladder behind them, no call-site changes.

Failure mapping is the whole point.  Every way the network can betray a
request becomes one of the typed errors the resilience stack already
understands:

* a ``busy`` error frame → :class:`~repro.errors.ServerOverloadError`
  (a :class:`~repro.errors.CloudUnavailableError`, so the client's
  retry/backoff/breaker machinery absorbs it);
* connect failures, socket timeouts, resets, EOF mid-frame, garbled or
  out-of-sync response bytes → :class:`CloudUnavailableError` with a
  typed ``reason`` (``connect``/``timeout``/``connection_reset``/
  ``protocol``/``desync``) — all retryable transport failures;
* a ``planning_failed`` error frame → :class:`~repro.errors.
  PlanningFailedError` (the wire worked; the problem is infeasible —
  this must *not* trip the breaker);
* a ``protocol`` or ``internal`` error frame →
  :class:`~repro.errors.WireProtocolError` (the server answered; our
  request was the defect — retrying identical bytes cannot help).

The transport keeps one connection open across requests (``persistent=
True``) and transparently reconnects after any failure; the connection
is a cache, never state the protocol depends on.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.cloud import wire
from repro.cloud.framing import DEFAULT_MAX_FRAME_BYTES, FrameAssembler
from repro.cloud.framing import encode_frame
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
    ServerOverloadError,
    WireProtocolError,
)

__all__ = ["NetworkPlanTransport", "TransportStats"]


@dataclass
class TransportStats:
    """Operational counters of one network transport.

    Attributes:
        connects: Successful TCP connects (includes reconnects).
        requests: Plan requests sent.
        responses: Plan responses received.
        busy: ``busy`` frames received (shed by admission control).
        planning_failures: ``planning_failed`` frames received.
        protocol_rejections: ``protocol``/``internal`` frames received.
        timeouts: Socket-level receive timeouts.
        resets: Connects refused, resets, and mid-frame EOFs.
        desyncs: Responses that decoded but did not match the request.
        bytes_sent: Frame bytes written.
        bytes_received: Frame bytes read.
    """

    connects: int = 0
    requests: int = 0
    responses: int = 0
    busy: int = 0
    planning_failures: int = 0
    protocol_rejections: int = 0
    timeouts: int = 0
    resets: int = 0
    desyncs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class NetworkPlanTransport:
    """A synchronous TCP client for the plan server.

    Args:
        host: Server (or chaos-proxy) host.
        port: Server (or chaos-proxy) port.
        timeout_s: Socket deadline for connect, send and each receive.
        max_frame_bytes: Frame cap (must be >= the server's).
        persistent: Reuse one connection across requests; any failure
            closes it and the next call reconnects.
        wire_version: The wire dialect this client speaks (the server
            answers in kind).  Version 1 frames carry no
            ``corridor_id`` — the server routes them to its configured
            default corridor — so pinning 1 here exercises exactly what
            a pre-sharding vehicle fleet sends.  A v1 client can only
            address the default corridor; encoding a request for any
            other corridor raises
            :class:`~repro.errors.WireProtocolError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        persistent: bool = True,
        wire_version: int = wire.WIRE_VERSION,
    ) -> None:
        if timeout_s <= 0:
            raise ConfigurationError("transport timeout must be positive")
        if wire_version not in wire.SUPPORTED_WIRE_VERSIONS:
            raise ConfigurationError(
                f"unsupported wire version {wire_version!r}; this client "
                f"speaks {wire.SUPPORTED_WIRE_VERSIONS}"
            )
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.max_frame_bytes = int(max_frame_bytes)
        self.persistent = bool(persistent)
        self.wire_version = int(wire_version)
        self.stats = TransportStats()
        self._sock: Optional[socket.socket] = None
        self._assembler: Optional[FrameAssembler] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            self.stats.resets += 1
            obs.get_registry().inc("netclient.connect_failures")
            raise CloudUnavailableError(
                f"cannot connect to plan server at {self.host}:{self.port}: {exc}",
                reason="connect",
            ) from exc
        sock.settimeout(self.timeout_s)
        self._sock = sock
        self._assembler = FrameAssembler(
            max_frame_bytes=self.max_frame_bytes,
            what=f"server {self.host}:{self.port}",
        )
        self.stats.connects += 1
        obs.get_registry().inc("netclient.connects")
        return sock

    def close(self) -> None:
        """Drop the cached connection (the next request reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._assembler = None

    def __enter__(self) -> "NetworkPlanTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats_snapshot(self) -> TransportStats:
        """A point-in-time copy of the transport counters."""
        return replace(self.stats)

    # ------------------------------------------------------------------
    # Frame exchange
    # ------------------------------------------------------------------
    def _exchange(self, payload: bytes, vehicle_id: str = "") -> Tuple[str, Any]:
        """Send one frame, read one frame, decode it.

        Any socket-level failure closes the connection and raises the
        matching typed :class:`CloudUnavailableError`.
        """
        sock = self._connect()
        frame = encode_frame(payload, self.max_frame_bytes)
        try:
            sock.sendall(frame)
            self.stats.bytes_sent += len(frame)
            reply = self._read_frame(sock)
        except socket.timeout as exc:
            self.close()
            self.stats.timeouts += 1
            obs.get_registry().inc("netclient.timeouts")
            raise CloudUnavailableError(
                f"plan server at {self.host}:{self.port} did not answer within "
                f"{self.timeout_s:.1f} s",
                vehicle_id=vehicle_id,
                attempts=1,
                reason="timeout",
            ) from exc
        except OSError as exc:
            self.close()
            self.stats.resets += 1
            obs.get_registry().inc("netclient.resets")
            raise CloudUnavailableError(
                f"connection to plan server at {self.host}:{self.port} failed: {exc}",
                vehicle_id=vehicle_id,
                attempts=1,
                reason="connection_reset",
            ) from exc
        try:
            kind, message = wire.decode_message(reply)
        except WireProtocolError as exc:
            # The server's bytes were garbage (or a chaos proxy mangled
            # them): the connection can no longer be trusted — drop it
            # and report a retryable transport failure.
            self.close()
            self.stats.desyncs += 1
            obs.get_registry().inc("netclient.desyncs")
            raise CloudUnavailableError(
                f"undecodable reply from plan server: {exc}",
                vehicle_id=vehicle_id,
                attempts=1,
                reason="protocol",
            ) from exc
        finally:
            if not self.persistent:
                self.close()
        return kind, message

    def _read_frame(self, sock: socket.socket) -> bytes:
        """Read until one whole frame is assembled.

        Raises:
            ConnectionResetError: EOF before the frame completed (the
                typed truncation detail from
                :meth:`FrameAssembler.finish` is chained as the cause).
        """
        while True:
            data = sock.recv(65536)
            if not data:
                try:
                    self._assembler.finish()
                    raise ConnectionResetError("server closed the connection")
                except WireProtocolError as exc:
                    raise ConnectionResetError(
                        f"connection closed mid-frame: {exc}"
                    ) from exc
            self.stats.bytes_received += len(data)
            frames = self._assembler.feed(data)
            if frames:
                # One request is in flight per connection, so the first
                # completed frame is the answer; any extra frame (a
                # chaos duplicate) desynchronizes the stream.
                if len(frames) > 1:
                    raise ConnectionResetError(
                        f"{len(frames)} frames answered a single request"
                    )
                return frames[0]

    # ------------------------------------------------------------------
    # Service surface
    # ------------------------------------------------------------------
    def request(self, req: PlanRequest) -> PlanResponse:
        """Serve one plan request over the wire.

        Raises:
            ServerOverloadError: The server shed the request (BUSY).
            CloudUnavailableError: Transport-level failure (typed
                ``reason``); retryable.
            PlanningFailedError: The server answered: infeasible.
            WireProtocolError: The server answered: our request was
                invalid (not retryable).
        """
        registry = obs.get_registry()
        self.stats.requests += 1
        registry.inc("netclient.requests")
        kind, message = self._exchange(
            wire.encode_request(req, version=self.wire_version), req.vehicle_id
        )
        if kind == wire.RESPONSE_KIND:
            if message.vehicle_id != req.vehicle_id:
                # A stale (duplicated or reordered) response: the stream
                # is out of sync — reconnect and let the caller retry.
                self.close()
                self.stats.desyncs += 1
                registry.inc("netclient.desyncs")
                raise CloudUnavailableError(
                    f"response for {message.vehicle_id!r} answered a request "
                    f"for {req.vehicle_id!r}",
                    vehicle_id=req.vehicle_id,
                    attempts=1,
                    reason="desync",
                )
            self.stats.responses += 1
            registry.inc("netclient.responses")
            return message
        if kind == wire.ERROR_KIND:
            return self._raise_error_frame(message, req)
        self.close()
        self.stats.desyncs += 1
        registry.inc("netclient.desyncs")
        raise CloudUnavailableError(
            f"unexpected {kind!r} reply to a plan request",
            vehicle_id=req.vehicle_id,
            attempts=1,
            reason="desync",
        )

    def _raise_error_frame(self, err: wire.ErrorFrame, req: PlanRequest):
        registry = obs.get_registry()
        if err.code == wire.ERROR_BUSY:
            self.stats.busy += 1
            registry.inc("netclient.busy")
            raise ServerOverloadError(
                err.message,
                vehicle_id=req.vehicle_id,
                queue_depth=err.queue_depth,
                capacity=err.capacity,
            )
        if err.code == wire.ERROR_TIMEOUT:
            self.stats.timeouts += 1
            registry.inc("netclient.server_timeouts")
            raise CloudUnavailableError(
                err.message, vehicle_id=req.vehicle_id, attempts=1, reason="timeout"
            )
        if err.code == wire.ERROR_PLANNING_FAILED:
            self.stats.planning_failures += 1
            registry.inc("netclient.planning_failures")
            raise PlanningFailedError(
                err.message, vehicle_id=req.vehicle_id, depart_s=req.depart_s
            )
        # protocol / internal: the server answered and judged our request
        # defective; identical retries cannot succeed.
        self.stats.protocol_rejections += 1
        registry.inc("netclient.protocol_rejections")
        raise WireProtocolError(err.message, source=f"server error ({err.code})")

    def health(self) -> wire.HealthStatus:
        """Probe the server's liveness and drain state."""
        kind, message = self._exchange(
            wire.encode_health_request(version=self.wire_version)
        )
        if kind != wire.HEALTH_RESPONSE_KIND:
            self.close()
            raise CloudUnavailableError(
                f"unexpected {kind!r} reply to a health probe", reason="desync"
            )
        return message

    def server_stats(self) -> Dict[str, Any]:
        """Fetch the server's composed stats document."""
        kind, message = self._exchange(
            wire.encode_stats_request(version=self.wire_version)
        )
        if kind != wire.STATS_RESPONSE_KIND:
            self.close()
            raise CloudUnavailableError(
                f"unexpected {kind!r} reply to a stats probe", reason="desync"
            )
        return message
