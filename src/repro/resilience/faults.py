"""Deterministic, seedable fault injection for the planning loop.

Every fault decision here is a pure function of ``(seed, event key)``,
computed through a stable hash rather than a stateful RNG stream.  That
buys two properties the chaos tests rely on:

* **Determinism** — two runs with the same seed produce *byte-identical*
  fault schedules (see :func:`schedule_bytes`), regardless of platform
  or call ordering.
* **Composability** — models can be evaluated in any order and
  interleaved freely (the closed-loop driver asks about cloud requests
  while a detector asks about crossings) without one consumer's draws
  perturbing another's.

The models cover the four failure classes of a V2I deployment: the
cloud request path (:class:`CloudFaultModel`), the roadside detectors
feeding the SAE (:class:`DetectorFaultModel` /
:class:`FaultyLoopDetector`), the volume forecasts themselves
(:class:`ForecastFaultModel`) and drift between the signal timing the
planner assumes and what the intersection actually runs
(:class:`SignalDriftModel`).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.route.road import RoadSegment
from repro.sim.detectors import LoopDetector
from repro.traffic.volume import VolumeSeries
from repro.units import SECONDS_PER_HOUR

ArrivalRate = Union[float, Callable[[float], float]]

_TWO_64 = float(2**64)


def hash_uniform(seed: int, *key: object) -> float:
    """A uniform draw in ``[0, 1)`` determined by ``(seed, key)``.

    Stable across processes and platforms (blake2b over the rendered
    key), so the same event always receives the same draw.
    """
    rendered = ":".join([str(int(seed))] + [repr(k) for k in key])
    digest = hashlib.blake2b(rendered.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / _TWO_64


@dataclass(frozen=True)
class OutageWindow:
    """A closed-open interval of total cloud unavailability.

    Attributes:
        start_s: Outage onset (absolute seconds).
        end_s: First instant service is restored.
    """

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"outage must end after it starts, got [{self.start_s}, {self.end_s})"
            )

    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside the outage."""
        return self.start_s <= time_s < self.end_s


@dataclass(frozen=True)
class CloudFaultDecision:
    """The fate of one wire attempt against the cloud.

    Attributes:
        dropped: The request (or its response) was lost.
        in_outage: The attempt landed inside an outage window (always
            also ``dropped``).
        latency_s: Simulated round-trip latency charged to the attempt,
            whether or not it was dropped.
    """

    dropped: bool
    in_outage: bool
    latency_s: float


@dataclass(frozen=True)
class CloudFaultModel:
    """Request drop / latency / outage faults on the vehicle↔cloud link.

    Attributes:
        drop_rate: Probability an individual wire attempt is lost.
        latency_base_s: Deterministic floor of the simulated round trip.
        latency_jitter_s: Mean of the additional exponential latency
            component (0 disables jitter).
        outages: Absolute-time windows during which every attempt fails.
        seed: Fault seed; all decisions derive from it.
    """

    drop_rate: float = 0.0
    latency_base_s: float = 0.0
    latency_jitter_s: float = 0.0
    outages: Tuple[OutageWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ConfigurationError(
                f"drop rate must be in [0, 1], got {self.drop_rate}"
            )
        if self.latency_base_s < 0 or self.latency_jitter_s < 0:
            raise ConfigurationError("latencies must be >= 0")

    def evaluate(
        self, request_index: int, attempt: int, now_s: float
    ) -> CloudFaultDecision:
        """Decide the fate of one attempt of one request.

        Args:
            request_index: Monotone per-client request counter.
            attempt: Zero-based attempt number within the request.
            now_s: Simulated wall time of the attempt.
        """
        in_outage = any(w.contains(now_s) for w in self.outages)
        u_drop = hash_uniform(self.seed, "drop", request_index, attempt)
        dropped = in_outage or u_drop < self.drop_rate
        latency = self.latency_base_s
        if self.latency_jitter_s > 0.0:
            u_lat = hash_uniform(self.seed, "latency", request_index, attempt)
            # Inverse-CDF exponential; clamp the tail so one draw cannot
            # consume an unbounded share of the request deadline.
            latency += self.latency_jitter_s * min(-math.log(1.0 - u_lat), 20.0)
        return CloudFaultDecision(
            dropped=dropped, in_outage=in_outage, latency_s=latency
        )

    def schedule(
        self, n_requests: int, attempts: int = 1, now_s: float = 0.0
    ) -> List[CloudFaultDecision]:
        """The first ``n_requests * attempts`` decisions, in order.

        Purely a *view* of the deterministic decision function — calling
        it does not advance any state, so a client that subsequently
        evaluates the same indices sees exactly these decisions.
        """
        if n_requests < 0 or attempts < 1:
            raise ConfigurationError("need n_requests >= 0 and attempts >= 1")
        return [
            self.evaluate(i, a, now_s)
            for i in range(n_requests)
            for a in range(attempts)
        ]


def schedule_bytes(
    model: CloudFaultModel, n_requests: int, attempts: int = 1, now_s: float = 0.0
) -> bytes:
    """A canonical byte serialization of a fault schedule.

    The determinism tests compare these byte strings across runs: the
    same ``(model, n_requests, attempts, now_s)`` must always serialize
    identically.
    """
    lines = [
        f"{i // attempts},{i % attempts},{int(d.dropped)},{int(d.in_outage)},{d.latency_s!r}"
        for i, d in enumerate(model.schedule(n_requests, attempts, now_s))
    ]
    return "\n".join(lines).encode("ascii")


@dataclass(frozen=True)
class DetectorFaultModel:
    """Loop-detector faults: missed crossings and spurious counts.

    Attributes:
        dropout_rate: Probability a true crossing is not counted.
        noise_vph: Spurious counts injected, expressed as vehicles/hour
            (spread deterministically over aggregation windows).
        seed: Fault seed.
    """

    dropout_rate: float = 0.0
    noise_vph: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout_rate <= 1.0:
            raise ConfigurationError(
                f"dropout rate must be in [0, 1], got {self.dropout_rate}"
            )
        if self.noise_vph < 0:
            raise ConfigurationError("noise rate must be >= 0")

    def drops_crossing(self, vehicle_id: str, window_index: int) -> bool:
        """Whether one true crossing is lost to dropout."""
        if self.dropout_rate <= 0.0:
            return False
        u = hash_uniform(self.seed, "detector_drop", vehicle_id, window_index)
        return u < self.dropout_rate

    def spurious_counts(self, window_index: int, window_s: float) -> int:
        """Deterministic spurious-count injection for one window."""
        if self.noise_vph <= 0.0:
            return 0
        expected = self.noise_vph * window_s / SECONDS_PER_HOUR
        base = int(expected)
        u = hash_uniform(self.seed, "detector_noise", window_index)
        return base + (1 if u < expected - base else 0)


@dataclass
class FaultyLoopDetector(LoopDetector):
    """A :class:`LoopDetector` degraded by a :class:`DetectorFaultModel`.

    Drop-in replacement: the detector's flow series — and therefore any
    SAE forecast built from it — reflects the injected dropout and noise.
    With a ``None`` (or all-zero) fault model it behaves identically to
    the pristine detector.
    """

    fault: Optional[DetectorFaultModel] = None

    def observe(self, time_s: float, vehicle_id: str, position_m: float) -> None:
        if self.fault is None or self.fault.dropout_rate <= 0.0:
            super().observe(time_s, vehicle_id, position_m)
            return
        previous = self._last_positions.get(vehicle_id)
        window = int(time_s // self.window_s)
        if (
            previous is not None
            and previous < self.position_m <= position_m
            and self.fault.drops_crossing(vehicle_id, window)
        ):
            # Swallow this crossing: update the track, skip the count.
            self._last_positions[vehicle_id] = position_m
            return
        super().observe(time_s, vehicle_id, position_m)

    def count_in_window(self, window_index: int) -> int:
        count = super().count_in_window(window_index)
        if self.fault is not None:
            count += self.fault.spurious_counts(window_index, self.window_s)
        return count


@dataclass(frozen=True)
class ForecastFaultModel:
    """Stale or corrupted volume forecasts.

    Attributes:
        staleness_s: Forecast refresh interval; a degraded rate callable
            is evaluated at the last refresh instant instead of "now"
            (0 disables staleness).
        corruption_pct: Amplitude of deterministic multiplicative error,
            as a fraction (0.2 → each value scaled by a factor in
            ``[0.8, 1.2]``).
        seed: Fault seed.
    """

    staleness_s: float = 0.0
    corruption_pct: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.staleness_s < 0:
            raise ConfigurationError("staleness must be >= 0")
        if not 0.0 <= self.corruption_pct < 1.0:
            raise ConfigurationError(
                f"corruption fraction must be in [0, 1), got {self.corruption_pct}"
            )

    def _scale(self, *key: object) -> float:
        if self.corruption_pct <= 0.0:
            return 1.0
        u = hash_uniform(self.seed, "forecast", *key)
        return 1.0 + self.corruption_pct * (2.0 * u - 1.0)

    def degrade_rate(self, rate: ArrivalRate) -> Callable[[float], float]:
        """A degraded view of an arrival rate (value or callable).

        The result is a callable suitable for
        :class:`~repro.core.planner.QueueAwareDpPlanner` arrival rates:
        staleness snaps the evaluation time back to the last refresh,
        corruption scales the value by a per-refresh factor.
        """

        def degraded(t: float) -> float:
            t_eval = t
            if self.staleness_s > 0.0:
                t_eval = math.floor(t / self.staleness_s) * self.staleness_s
            value = rate(t_eval) if callable(rate) else float(rate)
            epoch = int(t_eval / self.staleness_s) if self.staleness_s > 0.0 else 0
            return max(value * self._scale(epoch), 0.0)

        return degraded

    def degrade_volumes(self, series: VolumeSeries) -> VolumeSeries:
        """A degraded copy of an hourly volume series (SAE input)."""
        volumes = np.asarray(series.volumes_vph, dtype=float).copy()
        if self.staleness_s > 0.0:
            hold = max(int(round(self.staleness_s / SECONDS_PER_HOUR)), 1)
            for i in range(len(volumes)):
                volumes[i] = volumes[(i // hold) * hold]
        for i in range(len(volumes)):
            volumes[i] = max(volumes[i] * self._scale(i), 0.0)
        return VolumeSeries(volumes)


@dataclass(frozen=True)
class SignalDriftModel:
    """Drift between assumed and actual signal timing.

    The planner plans against the road definition it was given; the
    intersection controller may actually run its cycle shifted by a few
    seconds (clock skew, transition plans).  This model produces the
    *actual* road by shifting each signal's offset by a deterministic
    per-signal amount in ``[-max_drift_s, +max_drift_s]``.

    Attributes:
        max_drift_s: Largest absolute per-signal offset shift (s).
        seed: Fault seed.
    """

    max_drift_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_drift_s < 0:
            raise ConfigurationError("drift must be >= 0")

    def drift_for(self, position_m: float) -> float:
        """The offset shift applied to the signal at ``position_m``."""
        if self.max_drift_s <= 0.0:
            return 0.0
        u = hash_uniform(self.seed, "signal_drift", position_m)
        return self.max_drift_s * (2.0 * u - 1.0)

    def drift_road(self, road: RoadSegment) -> RoadSegment:
        """A copy of ``road`` whose signals run the drifted cycles."""
        if self.max_drift_s <= 0.0:
            return road
        signals = [
            replace(
                site,
                light=replace(
                    site.light,
                    offset_s=site.light.offset_s + self.drift_for(site.position_m),
                ),
            )
            for site in road.signals
        ]
        return RoadSegment(
            name=f"{road.name} (drifted)",
            length_m=road.length_m,
            zones=list(road.zones),
            stop_signs=list(road.stop_signs),
            signals=signals,
            grade=road.grade,
        )


#: Corruption modes :class:`PlanFaultModel` can apply to a solved plan.
PLAN_FAULT_MODES = ("nan_speed", "overspeed", "accel_spike", "window_miss")


@dataclass(frozen=True)
class PlanFaultModel:
    """Degenerate-plan injection: corrupt solver output before it serves.

    Models the failure class the safety guard exists for — a planner bug,
    a serialization fault or a stale cache entry producing a plan that is
    *structurally* a plan but physically or semantically wrong.  Each
    corrupted solution exhibits one of :data:`PLAN_FAULT_MODES`:

    * ``nan_speed`` — a mid-profile speed becomes NaN (the class of
      defect range checks like ``v < 0`` silently pass).
    * ``overspeed`` — a mid-profile speed jumps ``overspeed_delta_ms``
      above the posted limit.
    * ``accel_spike`` — one segment demands acceleration far beyond the
      vehicle envelope.
    * ``window_miss`` — every speed is scaled by ``slow_factor`` so the
      signal arrivals drift out of their planned windows.

    Attributes:
        rate: Probability a given solve is corrupted.
        modes: The corruption modes to draw from.
        overspeed_delta_ms: Speed excess injected by ``overspeed``.
        accel_spike_ms2: Acceleration demanded by the ``accel_spike``
            segment (well past any sane vehicle envelope by default).
        slow_factor: Speed scale applied by ``window_miss``.
        seed: Fault seed; mode and victim index derive from it.
    """

    rate: float = 1.0
    modes: Tuple[str, ...] = PLAN_FAULT_MODES
    overspeed_delta_ms: float = 15.0
    accel_spike_ms2: float = 8.0
    slow_factor: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {self.rate}")
        if not self.modes:
            raise ConfigurationError("need at least one corruption mode")
        unknown = set(self.modes) - set(PLAN_FAULT_MODES)
        if unknown:
            raise ConfigurationError(f"unknown plan-fault modes {sorted(unknown)}")
        if not 0.0 < self.slow_factor < 1.0:
            raise ConfigurationError("slow factor must be in (0, 1)")

    def corrupts(self, call_index: int) -> bool:
        """Whether solve ``call_index`` is corrupted."""
        return hash_uniform(self.seed, "plan_fault", call_index) < self.rate

    def mode_for(self, call_index: int) -> str:
        """The corruption mode applied to solve ``call_index``."""
        u = hash_uniform(self.seed, "plan_fault_mode", call_index)
        return self.modes[min(int(u * len(self.modes)), len(self.modes) - 1)]

    def corrupt_profile(self, profile, call_index: int):
        """A corrupted copy of ``profile`` (imports deferred: no cycle)."""
        from repro.core.profile import VelocityProfile

        pos = np.asarray(profile.positions_m, dtype=float)
        spd = np.asarray(profile.speeds_ms, dtype=float).copy()
        mode = self.mode_for(call_index)
        # Victim: an interior point, deterministically chosen.  Interior
        # points keep the profile constructible (endpoints often pin
        # boundary conditions like the final stop).
        u = hash_uniform(self.seed, "plan_fault_victim", call_index)
        victim = 1 + min(int(u * max(pos.size - 2, 1)), max(pos.size - 3, 0))
        if mode == "nan_speed":
            spd[victim] = float("nan")
        elif mode == "overspeed":
            spd[victim] += self.overspeed_delta_ms
        elif mode == "accel_spike":
            ds = pos[victim] - pos[victim - 1]
            spd[victim] = math.sqrt(
                spd[victim - 1] ** 2 + 2.0 * self.accel_spike_ms2 * ds
            )
        else:  # window_miss
            # Uniform slowdown: zero speeds (stops) stay zero, every
            # positive average speed stays positive, arrivals drift late.
            spd *= self.slow_factor
        return VelocityProfile(
            pos, spd, dwell_s=profile.dwell_s, start_time_s=profile.start_time_s
        )


class DegeneratePlanner:
    """A planner wrapper that serves :class:`PlanFaultModel`-corrupted plans.

    Drop-in for any :class:`~repro.core.planner.DpPlannerBase`: ``plan``
    and ``replan`` run the wrapped planner and then (deterministically,
    per solve index) corrupt the solution's profile; every other
    attribute — ``road``, ``config``, ``signal_constraints``,
    ``min_trip_time`` — delegates to the wrapped planner, so services
    and ladders accept it wherever a real planner fits.
    """

    def __init__(self, planner, fault: PlanFaultModel) -> None:
        self._planner = planner
        self.fault = fault
        self.calls = 0
        self.corrupted = 0

    def _deliver(self, solution):
        index = self.calls
        self.calls += 1
        if not self.fault.corrupts(index):
            return solution
        self.corrupted += 1
        profile = self.fault.corrupt_profile(solution.profile, index)
        return replace(solution, profile=profile)

    def plan(self, *args, **kwargs):
        return self._deliver(self._planner.plan(*args, **kwargs))

    def replan(self, *args, **kwargs):
        return self._deliver(self._planner.replan(*args, **kwargs))

    def __getattr__(self, name):
        return getattr(self._planner, name)


@dataclass(frozen=True)
class FaultPlan:
    """One composable bundle of every fault class, sharing a seed story.

    A convenience for experiments: construct with the rates/windows of
    interest and hand the members to the components they degrade.  A
    default-constructed plan injects nothing.

    Attributes:
        cloud: Faults on the request path (``None`` = pristine link).
        detectors: Faults on loop detectors.
        forecast: Faults on volume forecasts.
        signal_drift: Timing drift of the actual signals.
    """

    cloud: Optional[CloudFaultModel] = None
    detectors: Optional[DetectorFaultModel] = None
    forecast: Optional[ForecastFaultModel] = None
    signal_drift: Optional[SignalDriftModel] = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        drop_rate: float = 0.0,
        detector_dropout: float = 0.0,
        forecast_corruption: float = 0.0,
        signal_drift_s: float = 0.0,
    ) -> "FaultPlan":
        """A plan with every member keyed off one master seed."""
        return cls(
            cloud=CloudFaultModel(drop_rate=drop_rate, seed=seed),
            detectors=DetectorFaultModel(dropout_rate=detector_dropout, seed=seed + 1),
            forecast=ForecastFaultModel(
                corruption_pct=forecast_corruption, seed=seed + 2
            ),
            signal_drift=SignalDriftModel(max_drift_s=signal_drift_s, seed=seed + 3),
        )

    @property
    def injects_nothing(self) -> bool:
        """True when every member is absent or at zero rates."""
        cloud_quiet = self.cloud is None or (
            self.cloud.drop_rate == 0.0
            and not self.cloud.outages
            and self.cloud.latency_base_s == 0.0
            and self.cloud.latency_jitter_s == 0.0
        )
        det_quiet = self.detectors is None or (
            self.detectors.dropout_rate == 0.0 and self.detectors.noise_vph == 0.0
        )
        fc_quiet = self.forecast is None or (
            self.forecast.staleness_s == 0.0 and self.forecast.corruption_pct == 0.0
        )
        drift_quiet = self.signal_drift is None or self.signal_drift.max_drift_s == 0.0
        return cloud_quiet and det_quiet and fc_quiet and drift_quiet
