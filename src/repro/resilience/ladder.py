"""The graceful-degradation ladder of the planning loop.

When the cloud's queue-aware DP is unreachable the EV should not revert
to naive driving in one step — there is a spectrum of cheaper, local
fallbacks between "optimal plan" and "just follow the speed limit":

1. ``queue_dp`` — the cloud's queue-aware DP (through the resilient
   client).  Full optimality.
2. ``queue_dp_mpc`` — a locally-run receding-horizon planner
   (:class:`~repro.core.horizon.RecedingHorizonPlanner`, typically
   wrapping the chance-constrained queue DP): still queue-aware, still
   the full DP, but replanning from the current state every cycle so a
   stale cloud forecast only has to be right about the near future.
   Only present when one is attached.
3. ``baseline_dp`` — a locally-run green-window DP
   (:class:`~repro.core.planner.BaselineDpPlanner`): no queue model, but
   still schedules signal arrivals into green.
4. ``glosa`` — the greedy :class:`~repro.core.glosa.GlosaAdvisor`
   (queue-aware when arrival rates are available): orders of magnitude
   cheaper, no DP machinery at all.
5. ``speed_limit`` — track the posted limit; the unconditional floor
   that always produces a drivable command.

:class:`DegradationLadder` tries the tiers in order on every plan or
replan and reports which tier served, so closed-loop results can show
exactly how far the system degraded under injected faults.

Failure semantics: the ladder degrades on *transport* failures
(:class:`~repro.errors.CloudUnavailableError`) only.  An *infeasible*
replan (the service answered ``PlanningFailedError`` for both the
energy and the min-time objective) propagates to the caller, which
keeps the previous command — the same behaviour the closed-loop driver
had before the ladder existed, so a fault-free ladder run is
bit-identical to the direct-planner path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import obs
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.core.engine import ArtifactStore
from repro.core.glosa import GlosaAdvisor
from repro.core.horizon import RecedingHorizonPlanner
from repro.core.planner import (
    ArrivalRates,
    BaselineDpPlanner,
    DpPlannerBase,
    PlannerConfig,
)
from repro.core.profile import VelocityProfile
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    InfeasibleProblemError,
    PlanRejectedError,
    PlanningFailedError,
    ReproError,
)
from repro.guard.supervisor import TIER_SAFE_STOP, SafetySupervisor
from repro.resilience.client import ResilientPlanClient
from repro.route.road import RoadSegment
from repro.sim.scenario import profile_speed_command
from repro.vehicle.params import VehicleParams

#: Tier names, best first.  ``safe_stop`` is the supervisor's floor below
#: the floor: it only ever serves when a safety supervisor is attached
#: and even the speed-limit command failed its audit.
TIER_QUEUE_DP = "queue_dp"
TIER_QUEUE_DP_MPC = "queue_dp_mpc"
TIER_BASELINE_DP = "baseline_dp"
TIER_GLOSA = "glosa"
TIER_SPEED_LIMIT = "speed_limit"
TIERS = (
    TIER_QUEUE_DP,
    TIER_QUEUE_DP_MPC,
    TIER_BASELINE_DP,
    TIER_GLOSA,
    TIER_SPEED_LIMIT,
    TIER_SAFE_STOP,
)


def speed_limit_command(road: RoadSegment) -> Callable[[float], float]:
    """The tier-3 command: track the posted limit everywhere."""

    length = road.length_m

    def target(position_m: float) -> float:
        return road.v_max_at(min(max(position_m, 0.0), length))

    return target


def speed_limit_trip_time_s(road: RoadSegment, position_m: float = 0.0) -> float:
    """Crude remaining-trip-time estimate at the posted limits.

    Integrates ``ds / v_max(s)`` over the remaining route; ramps, stops
    and signals are ignored — this only sizes deadlines when no planner
    tier produced a trip time.
    """
    ds = 10.0
    total = 0.0
    s = max(position_m, 0.0)
    while s < road.length_m:
        step = min(ds, road.length_m - s)
        total += step / max(road.v_max_at(s + 0.5 * step), 0.1)
        s += step
    return total


@dataclass
class TierPlan:
    """What one ladder decision produced.

    Attributes:
        tier: Serving tier name (one of :data:`TIERS`).
        command: Position-indexed speed command ready for the simulator.
        profile: The planned profile, when the tier produces one
            (``None`` for the speed-limit tier).
        trip_time_s: Planned (or estimated) remaining trip duration.
        energy_mah: Planned energy when the tier prices it, else ``nan``.
    """

    tier: str
    command: Callable[[float], float]
    profile: Optional[VelocityProfile]
    trip_time_s: float
    energy_mah: float

    @property
    def degraded(self) -> bool:
        """True when a tier below the primary tiers served.

        The receding-horizon tier is still the full queue-aware DP —
        replanned locally instead of served from the cloud — so it
        counts as primary, not degraded.
        """
        return self.tier not in (TIER_QUEUE_DP, TIER_QUEUE_DP_MPC)


class DegradationLadder:
    """Tiered planning with graceful fallback.

    Args:
        client: Resilient client fronting the cloud's queue-aware DP.
        road: The corridor (shared with the cloud planner's road).
        arrival_rates: Arrival-rate forecast for the queue-aware GLOSA
            tier; ``None`` drops that tier to classic (green-window)
            GLOSA.
        vehicle: EV parameters for the local tiers (paper defaults when
            ``None``).
        config: Discretization for the local baseline DP tier; ``None``
            uses :class:`PlannerConfig` defaults.
        vehicle_id: Id stamped on cloud requests.
        mpc: Optional receding-horizon planner
            (:class:`~repro.core.horizon.RecedingHorizonPlanner`).  When
            attached it serves as the ``queue_dp_mpc`` tier: tried first
            whenever the cloud tier fails, before any degraded tier.  A
            cycle it declares failed
            (:class:`~repro.errors.PlanningFailedError`) falls through to
            ``baseline_dp``.  ``None`` (the default) keeps the ladder's
            pre-MPC behaviour bit for bit.
        supervisor: Optional :class:`~repro.guard.supervisor.SafetySupervisor`.
            When given, every tier's plan is screened before it serves:
            repairable violations are clamped, a rejected plan falls to
            the next tier, and if even the speed-limit command fails its
            audit the supervisor's safe-stop profile serves as the
            ``safe_stop`` tier.
        store: Optional shared :class:`~repro.core.engine.ArtifactStore`.
            The lazily-built local tiers pull their corridor artifacts
            from it, so a ladder degrading next to a cloud planner that
            shares the store skips the baseline tier's table build
            entirely (same road, vehicle and grid ⇒ same digest).

    The local tiers are built lazily on first use: a run that never
    degrades never pays for a second DP table.
    """

    def __init__(
        self,
        client: ResilientPlanClient,
        road: RoadSegment,
        arrival_rates: Optional[ArrivalRates] = None,
        vehicle: Optional[VehicleParams] = None,
        config: Optional[PlannerConfig] = None,
        vehicle_id: str = "ev",
        mpc: Optional["RecedingHorizonPlanner"] = None,
        supervisor: Optional[SafetySupervisor] = None,
        store: Optional[ArtifactStore] = None,
        environment=None,
    ) -> None:
        if not vehicle_id:
            raise ConfigurationError("vehicle id must be non-empty")
        self.client = client
        self.road = road
        self.arrival_rates = arrival_rates
        self.vehicle = vehicle
        self.config = config
        self.environment = environment
        self.vehicle_id = vehicle_id
        self.mpc = mpc
        self.supervisor = supervisor
        self.store = store
        self._baseline: Optional[DpPlannerBase] = None
        self._glosa: Optional[GlosaAdvisor] = None
        self.tier_history: List[str] = []

    # ------------------------------------------------------------------
    # Lazy local tiers
    # ------------------------------------------------------------------
    def _baseline_planner(self) -> DpPlannerBase:
        if self._baseline is None:
            self._baseline = BaselineDpPlanner(
                self.road, vehicle=self.vehicle, config=self.config,
                store=self.store, environment=self.environment,
            )
        return self._baseline

    def _glosa_advisor(self) -> GlosaAdvisor:
        if self._glosa is None:
            rates = self.arrival_rates
            # GLOSA takes one rate for all signals; reduce a mapping to
            # classic green-window mode rather than guess a rate.
            if rates is not None and not (callable(rates) or isinstance(rates, (int, float))):
                rates = None
            self._glosa = GlosaAdvisor(
                self.road, vehicle=self.vehicle, arrival_rates=rates, store=self.store
            )
        return self._glosa

    # ------------------------------------------------------------------
    # Tier attempts
    # ------------------------------------------------------------------
    def _record(self, plan: TierPlan) -> TierPlan:
        self.tier_history.append(plan.tier)
        registry = obs.get_registry()
        registry.inc(f"resilience.tier.{plan.tier}")
        if plan.degraded:
            registry.inc("resilience.degraded")
        return plan

    def _screened(self, plan: TierPlan) -> TierPlan:
        """Screen one tier's plan through the supervisor, if attached.

        Raises:
            PlanRejectedError: The plan failed its audit and could not be
                repaired; the caller falls to the next tier.
        """
        if self.supervisor is None:
            return plan
        return self.supervisor.screen_tier_plan(plan)

    def _from_response(self, response: PlanResponse) -> TierPlan:
        return self._screened(
            TierPlan(
                tier=TIER_QUEUE_DP,
                command=profile_speed_command(response.profile),
                profile=response.profile,
                trip_time_s=response.trip_time_s,
                energy_mah=response.energy_mah,
            )
        )

    def _local_tiers(
        self,
        time_s: float,
        position_m: float,
        speed_ms: float,
        max_trip_time_s: Optional[float],
    ) -> TierPlan:
        """Tiers 1-3, tried in order, each screened by the supervisor.

        The speed-limit tier normally cannot fail; with a supervisor
        attached its command is still audited, and a failure there (a
        corrupted road) serves the safe-stop profile instead.
        """
        if self.mpc is not None:
            try:
                solution = self.mpc.replan(
                    position_m=position_m,
                    speed_ms=speed_ms,
                    time_s=time_s,
                    max_trip_time_s=max_trip_time_s,
                ) if (position_m > 0.0 or speed_ms > 0.0) else self.mpc.plan(
                    start_time_s=time_s, max_trip_time_s=max_trip_time_s
                )
                return self._screened(
                    TierPlan(
                        tier=TIER_QUEUE_DP_MPC,
                        command=profile_speed_command(solution.profile),
                        profile=solution.profile,
                        trip_time_s=solution.trip_time_s,
                        energy_mah=solution.energy_mah,
                    )
                )
            except ReproError:
                pass  # PlanningFailedError and friends: fall to baseline_dp
        try:
            planner = self._baseline_planner()
            try:
                solution = planner.replan(
                    position_m=position_m,
                    speed_ms=speed_ms,
                    time_s=time_s,
                    max_trip_time_s=max_trip_time_s,
                ) if (position_m > 0.0 or speed_ms > 0.0) else planner.plan(
                    start_time_s=time_s, max_trip_time_s=max_trip_time_s
                )
            except InfeasibleProblemError:
                solution = planner.replan(
                    position_m=position_m,
                    speed_ms=speed_ms,
                    time_s=time_s,
                    minimize="time",
                ) if (position_m > 0.0 or speed_ms > 0.0) else planner.plan(
                    start_time_s=time_s, minimize="time"
                )
            return self._screened(
                TierPlan(
                    tier=TIER_BASELINE_DP,
                    command=profile_speed_command(solution.profile),
                    profile=solution.profile,
                    trip_time_s=solution.trip_time_s,
                    energy_mah=solution.energy_mah,
                )
            )
        except ReproError:
            pass  # includes PlanRejectedError: a bad plan falls through
        try:
            advisor = self._glosa_advisor()
            glosa = advisor.plan(
                start_time_s=time_s,
                start_position_m=position_m,
                start_speed_ms=speed_ms,
            )
            profile = glosa.profile
            trip_time = profile.arrival_time_at(self.road.length_m) - time_s
            return self._screened(
                TierPlan(
                    tier=TIER_GLOSA,
                    command=profile_speed_command(profile),
                    profile=profile,
                    trip_time_s=trip_time,
                    energy_mah=float("nan"),
                )
            )
        except ReproError:
            pass
        command = speed_limit_command(self.road)
        if self.supervisor is not None:
            try:
                self.supervisor.screen_command(
                    command, position_m, tier=TIER_SPEED_LIMIT
                )
            except PlanRejectedError:
                return TierPlan(
                    tier=TIER_SAFE_STOP,
                    command=self.supervisor.safe_stop_command(position_m, speed_ms),
                    profile=None,
                    trip_time_s=speed_limit_trip_time_s(self.road, position_m),
                    energy_mah=float("nan"),
                )
        return TierPlan(
            tier=TIER_SPEED_LIMIT,
            command=command,
            profile=None,
            trip_time_s=speed_limit_trip_time_s(self.road, position_m),
            energy_mah=float("nan"),
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(
        self, start_time_s: float, max_trip_time_s: Optional[float] = None
    ) -> TierPlan:
        """Plan a full trip, degrading through the tiers on failure.

        Unlike :meth:`replan`, an infeasible primary plan also degrades:
        with no previous command to keep, any tier's plan beats none.
        """
        try:
            response = self.client.request(
                PlanRequest(
                    vehicle_id=self.vehicle_id,
                    depart_s=start_time_s,
                    max_trip_time_s=max_trip_time_s,
                ),
                now_s=start_time_s,
            )
            return self._record(self._from_response(response))
        except (CloudUnavailableError, PlanningFailedError, PlanRejectedError):
            return self._record(
                self._local_tiers(start_time_s, 0.0, 0.0, max_trip_time_s)
            )

    def replan(
        self,
        position_m: float,
        speed_ms: float,
        time_s: float,
        max_trip_time_s: Optional[float] = None,
    ) -> TierPlan:
        """Replan mid-route, degrading on transport failure only.

        Raises:
            PlanningFailedError: The cloud was *reachable* but found the
                remaining trip infeasible for both the energy and the
                min-time objective.  Callers keep their previous command
                — exactly the pre-ladder closed-loop semantics.
        """
        try:
            response = self.client.request(
                PlanRequest(
                    vehicle_id=self.vehicle_id,
                    depart_s=time_s,
                    max_trip_time_s=max_trip_time_s,
                    position_m=position_m,
                    speed_ms=speed_ms,
                ),
                now_s=time_s,
            )
            return self._record(self._from_response(response))
        except (CloudUnavailableError, PlanRejectedError):
            # Unreachable cloud and a cloud plan that failed its safety
            # audit degrade the same way: a local tier serves.
            return self._record(
                self._local_tiers(time_s, position_m, speed_ms, max_trip_time_s)
            )
        except PlanningFailedError:
            pass
        # Budget infeasible: mirror the driver's min-time fallback through
        # the same resilient path before declaring the replan infeasible.
        try:
            response = self.client.request(
                PlanRequest(
                    vehicle_id=self.vehicle_id,
                    depart_s=time_s,
                    position_m=position_m,
                    speed_ms=speed_ms,
                    minimize="time",
                ),
                now_s=time_s,
            )
            return self._record(self._from_response(response))
        except (CloudUnavailableError, PlanRejectedError):
            return self._record(
                self._local_tiers(time_s, position_m, speed_ms, max_trip_time_s)
            )
