"""Fault injection and graceful degradation for the planning loop.

Real V2I deployments get partial, lossy communication with
infrastructure; this package makes the reproduction survive that:

* :mod:`repro.resilience.faults` — deterministic, seedable fault models
  for the cloud link, loop detectors, volume forecasts and signal
  timing drift.
* :mod:`repro.resilience.client` — :class:`ResilientPlanClient`:
  per-request deadlines, bounded retries with jittered exponential
  backoff and a circuit breaker around
  :class:`~repro.cloud.service.CloudPlannerService`.
* :mod:`repro.resilience.ladder` — :class:`DegradationLadder`: the
  queue-aware DP → green-window DP → GLOSA → speed-limit fallback
  chain, reporting which tier served every (re)plan.
* :mod:`repro.resilience.netfaults` — :class:`ChaosProxy`: a seeded
  fault-injecting TCP proxy that drops, delays, truncates and
  duplicates wire frames between a vehicle transport and the plan
  server, for wire-level chaos testing.

Quick chaos run::

    from repro.resilience import (
        CloudFaultModel, DegradationLadder, ResilientPlanClient,
    )

    service = CloudPlannerService(planner)
    client = ResilientPlanClient(service, fault=CloudFaultModel(drop_rate=0.5, seed=7))
    ladder = DegradationLadder(client, road, arrival_rates=rate)
    driver = ClosedLoopDriver(scenario, ladder=ladder)
    outcome = driver.run(depart_s=300.0, max_trip_time_s=280.0)
    outcome.tier_counts   # how far the loop degraded
"""

from repro.resilience.client import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ClientStats,
    ResilientPlanClient,
)
from repro.resilience.faults import (
    CloudFaultDecision,
    CloudFaultModel,
    DetectorFaultModel,
    FaultPlan,
    FaultyLoopDetector,
    ForecastFaultModel,
    OutageWindow,
    SignalDriftModel,
    hash_uniform,
    schedule_bytes,
)
from repro.resilience.netfaults import ChaosProxy, NetFaultSpec, ProxyStats
from repro.resilience.ladder import (
    TIER_BASELINE_DP,
    TIER_GLOSA,
    TIER_QUEUE_DP,
    TIER_SPEED_LIMIT,
    TIERS,
    DegradationLadder,
    TierPlan,
    speed_limit_command,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ChaosProxy",
    "ClientStats",
    "CloudFaultDecision",
    "CloudFaultModel",
    "DegradationLadder",
    "DetectorFaultModel",
    "NetFaultSpec",
    "ProxyStats",
    "FaultPlan",
    "FaultyLoopDetector",
    "ForecastFaultModel",
    "OutageWindow",
    "ResilientPlanClient",
    "SignalDriftModel",
    "TIER_BASELINE_DP",
    "TIER_GLOSA",
    "TIER_QUEUE_DP",
    "TIER_SPEED_LIMIT",
    "TIERS",
    "TierPlan",
    "hash_uniform",
    "schedule_bytes",
    "speed_limit_command",
]
