"""A fault-tolerant client for the cloud planning service.

:class:`ResilientPlanClient` sits between a vehicle (or the closed-loop
driver) and :class:`~repro.cloud.service.CloudPlannerService` and makes
the request path survivable:

* **Per-request deadline** — simulated latency (from the injected fault
  model) plus backoff waits are charged against a request budget; a
  request that cannot complete in time fails fast instead of hanging.
* **Bounded retries with jittered exponential backoff** — dropped
  attempts are retried up to ``max_attempts`` times; the wait before
  attempt ``k`` is ``backoff_base_s * backoff_factor**(k-1)`` stretched
  by a deterministic jitter factor in ``[1, 1 + backoff_jitter]``.
* **Circuit breaker** — ``closed → open`` after
  ``breaker_threshold`` consecutive request failures; while open,
  requests fast-fail without touching the wire; after
  ``breaker_cooldown_s`` of simulated time the breaker goes
  ``half_open`` and admits a single probe whose outcome closes or
  re-opens it.

All waits are *simulated* (the client never sleeps): time advances only
through the ``now_s`` values callers pass in, which is the simulation
clock in closed-loop runs.  Every state transition and retry is recorded
both in :class:`ClientStats` and the active :mod:`repro.obs` registry.

With no fault model attached the client is a pure pass-through — the
service sees exactly the requests it would have seen without the client.

With ``wire_roundtrip=True`` every request is encoded to canonical wire
bytes and decoded back before it reaches the service, and every response
makes the same trip on the way out — the realistic serialization
boundary of a deployed vehicle↔cloud link.  The codec is bit-exact
(:mod:`repro.cloud.wire`), so results are unchanged; what it buys is
coverage: any non-wire-representable message fails loudly at the client
instead of silently crossing a boundary a real deployment could not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.cloud import wire
from repro.cloud.messages import PlanRequest, PlanResponse
from repro.cloud.service import CloudPlannerService
from repro.errors import (
    CloudUnavailableError,
    ConfigurationError,
    PlanningFailedError,
    ServerOverloadError,
    WireProtocolError,
)
from repro.resilience.faults import CloudFaultModel, hash_uniform

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

_STATE_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0, BREAKER_OPEN: 2.0}


@dataclass
class ClientStats:
    """Operational counters of one resilient client.

    Attributes:
        requests: Requests submitted (including fast-fails).
        served: Requests answered by the service (plans and
            ``PlanningFailedError`` both count — the wire worked).
        attempts: Wire attempts made.
        retries: Attempts beyond the first, across all requests.
        drops: Attempts lost to injected drops (includes outage drops).
        outage_drops: Attempts lost inside an outage window.
        deadline_exceeded: Requests abandoned because latency + backoff
            exhausted the request deadline.
        failures: Requests that produced no service answer (transport).
        fast_fails: Requests rejected immediately by an open breaker
            (or while another caller's half-open probe was in flight).
        transport_errors: Attempts the wrapped service itself failed
            with a :class:`CloudUnavailableError` (a real transport —
            e.g. :class:`~repro.cloud.netclient.NetworkPlanTransport` —
            timing out, resetting, or being shed); retried like drops.
        busy_rejections: The subset of ``transport_errors`` that were
            typed BUSY sheds (:class:`ServerOverloadError`).
        wire_roundtrips: Messages round-tripped through the wire codec
            (requests and responses each count one).
        breaker_state: Current breaker state.
        transitions: Breaker history as ``(now_s, from, to)`` tuples.
    """

    requests: int = 0
    served: int = 0
    attempts: int = 0
    retries: int = 0
    drops: int = 0
    outage_drops: int = 0
    deadline_exceeded: int = 0
    failures: int = 0
    fast_fails: int = 0
    transport_errors: int = 0
    busy_rejections: int = 0
    wire_roundtrips: int = 0
    breaker_state: str = BREAKER_CLOSED
    transitions: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def breaker_opens(self) -> int:
        """Times the breaker tripped open."""
        return sum(1 for _, _, to in self.transitions if to == BREAKER_OPEN)


class ResilientPlanClient:
    """Deadline/retry/breaker wrapper around a planning service.

    Args:
        service: The wrapped :class:`CloudPlannerService` (anything with
            a compatible ``request``).
        fault: Injected transport faults; ``None`` = a perfect link.
        deadline_s: Per-request simulated time budget.
        max_attempts: Wire attempts per request (>= 1).
        backoff_base_s: Wait before the first retry.
        backoff_factor: Geometric growth of successive waits.
        backoff_jitter: Jitter fraction; each wait is stretched by a
            deterministic factor in ``[1, 1 + backoff_jitter]``.
        breaker_threshold: Consecutive request failures that trip the
            breaker open.
        breaker_cooldown_s: Simulated seconds the breaker stays open
            before admitting a half-open probe.
        wire_roundtrip: Encode/decode every request and response through
            the canonical wire codec (bit-exact; results unchanged).
    """

    def __init__(
        self,
        service: CloudPlannerService,
        fault: Optional[CloudFaultModel] = None,
        deadline_s: float = 5.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.2,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 60.0,
        wire_roundtrip: bool = False,
    ) -> None:
        if deadline_s <= 0:
            raise ConfigurationError("request deadline must be positive")
        if max_attempts < 1:
            raise ConfigurationError("need at least one attempt per request")
        if backoff_base_s < 0 or backoff_factor < 1.0 or backoff_jitter < 0:
            raise ConfigurationError(
                "backoff needs base >= 0, factor >= 1 and jitter >= 0"
            )
        if breaker_threshold < 1 or breaker_cooldown_s <= 0:
            raise ConfigurationError(
                "breaker needs threshold >= 1 and a positive cooldown"
            )
        self.service = service
        self.fault = fault
        self.deadline_s = float(deadline_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.wire_roundtrip = bool(wire_roundtrip)
        self.stats = ClientStats()
        self._request_index = 0
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        # Breaker state machine guard: concurrent callers (fleet threads
        # sharing one client) must agree on who carries the half-open
        # probe — exactly one may be in flight at a time.
        self._breaker_mutex = threading.Lock()
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    # Breaker
    # ------------------------------------------------------------------
    def _transition(self, to: str, now_s: float) -> None:
        state = self.stats.breaker_state
        if state == to:
            return
        self.stats.breaker_state = to
        self.stats.transitions.append((now_s, state, to))
        registry = obs.get_registry()
        registry.inc(f"resilience.breaker.{to}")
        registry.gauge("resilience.breaker.state", _STATE_GAUGE[to])

    def _breaker_admits(self, now_s: float) -> bool:
        """Whether the breaker lets this request reach the wire.

        Thread-safe, and half-open admits **exactly one** probe: the
        caller that wins the transition carries it; every other caller
        fast-fails until that probe's outcome closes or re-opens the
        breaker.  Without the in-flight flag, any number of concurrent
        requests arriving while half-open would all pass — a thundering
        herd onto a service that just proved unhealthy.
        """
        with self._breaker_mutex:
            state = self.stats.breaker_state
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_OPEN:
                if now_s - self._opened_at_s < self.breaker_cooldown_s:
                    return False
                self._transition(BREAKER_HALF_OPEN, now_s)
                self._probe_in_flight = True
                return True
            # Half-open: admit only if no probe is already in flight.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def _record_success(self, now_s: float) -> None:
        with self._breaker_mutex:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self.stats.breaker_state != BREAKER_CLOSED:
                self._transition(BREAKER_CLOSED, now_s)

    def _record_failure(self, now_s: float) -> None:
        with self._breaker_mutex:
            if self.stats.breaker_state == BREAKER_HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._probe_in_flight = False
                self._opened_at_s = now_s
                self._transition(BREAKER_OPEN, now_s)
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.breaker_threshold:
                self._opened_at_s = now_s
                self._transition(BREAKER_OPEN, now_s)

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def backoff_s(self, request_index: int, attempt: int) -> float:
        """The (jittered) wait before retry ``attempt`` (1-based).

        Bounded: ``base * factor**(attempt-1) <= wait <=
        base * factor**(attempt-1) * (1 + jitter)``.
        """
        if attempt < 1:
            return 0.0
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        seed = self.fault.seed if self.fault is not None else 0
        u = hash_uniform(seed, "backoff", request_index, attempt)
        return base * (1.0 + self.backoff_jitter * u)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def request(self, req: PlanRequest, now_s: Optional[float] = None) -> PlanResponse:
        """Submit one plan request through the fault-tolerant path.

        Args:
            req: The plan request.
            now_s: Simulated submission time; defaults to
                ``req.depart_s`` (a vehicle asks when it wants to go).

        Raises:
            CloudUnavailableError: The breaker was open, every attempt
                was dropped, or the deadline was exhausted.
            PlanningFailedError: The service answered but found the
                request infeasible (propagated; does not trip the
                breaker — the transport worked).
        """
        t = req.depart_s if now_s is None else float(now_s)
        registry = obs.get_registry()
        self.stats.requests += 1
        registry.inc("resilience.requests")
        index = self._request_index
        self._request_index += 1

        if not self._breaker_admits(t):
            self.stats.fast_fails += 1
            registry.inc("resilience.fast_fails")
            raise CloudUnavailableError(
                f"breaker open: request for {req.vehicle_id!r} fast-failed at "
                f"{t:.1f} s",
                vehicle_id=req.vehicle_id,
                attempts=0,
                reason="breaker_open",
            )

        if self.wire_roundtrip:
            # Build the upload payload once; retries re-send the same bytes.
            req = wire.roundtrip_request(req)
            self.stats.wire_roundtrips += 1
            registry.inc("resilience.wire_roundtrips")

        elapsed = 0.0
        reason = "drop"
        attempts_allowed = (
            1 if self.stats.breaker_state == BREAKER_HALF_OPEN else self.max_attempts
        )
        attempts = 0
        for attempt in range(attempts_allowed):
            if attempt > 0:
                wait = self.backoff_s(index, attempt)
                if elapsed + wait > self.deadline_s:
                    reason = "deadline"
                    self.stats.deadline_exceeded += 1
                    registry.inc("resilience.deadline_exceeded")
                    break
                elapsed += wait
                self.stats.retries += 1
                registry.inc("resilience.retries")
            attempts += 1
            self.stats.attempts += 1
            decision = (
                self.fault.evaluate(index, attempt, t + elapsed)
                if self.fault is not None
                else None
            )
            if decision is not None:
                if elapsed + decision.latency_s > self.deadline_s:
                    reason = "deadline"
                    self.stats.deadline_exceeded += 1
                    registry.inc("resilience.deadline_exceeded")
                    break
                elapsed += decision.latency_s
                if decision.dropped:
                    self.stats.drops += 1
                    registry.inc("resilience.drops")
                    if decision.in_outage:
                        self.stats.outage_drops += 1
                        reason = "outage"
                    else:
                        reason = "drop"
                    continue
            try:
                response = self.service.request(req)
            except PlanningFailedError:
                # The service answered: transport is healthy even though
                # the problem was infeasible.
                self.stats.served += 1
                registry.inc("resilience.infeasible")
                self._record_success(t + elapsed)
                raise
            except WireProtocolError:
                # The server answered and judged our request defective;
                # identical retries cannot succeed, and the transport
                # itself worked — propagate without touching the breaker
                # failure count.
                self._record_success(t + elapsed)
                raise
            except CloudUnavailableError as exc:
                # A real transport under the client (the network plan
                # transport) failed this attempt: BUSY shed, timeout,
                # reset, garbled reply.  Retryable, exactly like an
                # injected drop.
                self.stats.transport_errors += 1
                registry.inc("resilience.transport_errors")
                if isinstance(exc, ServerOverloadError):
                    self.stats.busy_rejections += 1
                    registry.inc("resilience.busy_rejections")
                reason = exc.reason
                continue
            self.stats.served += 1
            registry.observe("resilience.request_elapsed_s", elapsed)
            self._record_success(t + elapsed)
            if self.wire_roundtrip:
                response = wire.roundtrip_response(response)
                self.stats.wire_roundtrips += 1
                registry.inc("resilience.wire_roundtrips")
            return response

        self.stats.failures += 1
        registry.inc("resilience.failures")
        self._record_failure(t + elapsed)
        raise CloudUnavailableError(
            f"cloud unreachable for {req.vehicle_id!r} after {attempts} "
            f"attempt(s) ({reason}) at {t:.1f} s",
            vehicle_id=req.vehicle_id,
            attempts=attempts,
            reason=reason,
        )
