"""Wire-level chaos: a seeded fault-injecting TCP proxy.

:class:`ChaosProxy` sits between :class:`~repro.cloud.netclient.
NetworkPlanTransport` and :class:`~repro.cloud.server.PlanServer` and
corrupts the stream *at frame granularity* — it reassembles frames with
the production :class:`~repro.cloud.framing.FrameAssembler` and then,
per frame, decides to drop it, delay it, truncate it mid-payload (and
kill the connection, as a real RST mid-send would), or duplicate it.

Chaos must be reproducible or it is noise.  Every decision is a pure
function of ``(seed, direction, connection index, frame index)`` through
:func:`~repro.resilience.faults.hash_uniform` — the same machinery the
in-process fault injector uses — so a failing chaos run replays
byte-for-byte from its seed, and CI can pin a fault schedule.

The proxy exists to prove two properties of the serving stack:

* **containment** — mangled bytes surface as typed errors
  (:class:`~repro.errors.WireProtocolError` server-side,
  :class:`~repro.errors.CloudUnavailableError` client-side), never as
  hangs or unhandled exceptions;
* **recovery** — behind a :class:`~repro.resilience.client.
  ResilientPlanClient` and a degradation ladder, a fleet drives through
  heavy wire faults to completion with zero guard violations.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro import obs
from repro.cloud.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    FrameAssembler,
    encode_frame,
)
from repro.errors import ConfigurationError, WireProtocolError
from repro.resilience.faults import hash_uniform

__all__ = ["ChaosProxy", "NetFaultSpec", "ProxyStats"]

#: Frame pump directions (used in fault-draw keys and stats).
_CLIENT_TO_SERVER = "c2s"
_SERVER_TO_CLIENT = "s2c"


@dataclass(frozen=True)
class NetFaultSpec:
    """A seeded schedule of wire-level faults.

    Rates are per *frame*, not per byte, so a fault hits a whole
    protocol message — the unit the stack must contain.  Draws for the
    four fault kinds are independent; when several fire on one frame,
    precedence is drop > truncate > duplicate (delay composes with any
    survivor).

    Attributes:
        drop_rate: Probability a frame silently vanishes.
        delay_rate: Probability a frame is held for ``delay_s`` first.
        delay_s: Hold duration for delayed frames.
        truncate_rate: Probability a frame is cut mid-payload and the
            connection torn down (the classic reset-mid-send).
        duplicate_rate: Probability a frame is delivered twice.
        seed: Root of every draw; same seed → same fault schedule.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.05
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "truncate_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_s < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay_s}")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, delay_s: float = 0.02) -> "NetFaultSpec":
        """All four fault kinds at the same per-frame ``rate``."""
        return cls(
            drop_rate=rate,
            delay_rate=rate,
            delay_s=delay_s,
            truncate_rate=rate,
            duplicate_rate=rate,
            seed=seed,
        )

    def decide(self, direction: str, conn_idx: int, frame_idx: int) -> Tuple[str, bool]:
        """The fate of one frame: ``(action, delayed)``.

        ``action`` is ``"pass"``, ``"drop"``, ``"truncate"`` or
        ``"duplicate"``; ``delayed`` composes with pass/duplicate.
        Deterministic in the spec's seed and the frame's identity.
        """

        def draw(fault: str) -> float:
            return hash_uniform(self.seed, "net", direction, conn_idx, frame_idx, fault)

        if draw("drop") < self.drop_rate:
            return "drop", False
        delayed = draw("delay") < self.delay_rate and self.delay_s > 0
        if draw("truncate") < self.truncate_rate:
            return "truncate", delayed
        if draw("duplicate") < self.duplicate_rate:
            return "duplicate", delayed
        return "pass", delayed


@dataclass
class ProxyStats:
    """Counters of what the proxy did to the stream."""

    connections: int = 0
    frames: int = 0
    passed: int = 0
    dropped: int = 0
    delayed: int = 0
    truncated: int = 0
    duplicated: int = 0
    upstream_failures: int = 0

    @property
    def faults(self) -> int:
        """Frames that did not pass through untouched."""
        return self.dropped + self.delayed + self.truncated + self.duplicated


class ChaosProxy:
    """A threaded TCP proxy that injects seeded frame-level faults.

    Accepts on its own ephemeral port and pumps each connection to the
    upstream server through two frame-reassembling relay threads (one
    per direction).  Point a :class:`~repro.cloud.netclient.
    NetworkPlanTransport` at :attr:`address` instead of the server.

    Args:
        upstream: ``(host, port)`` of the real plan server.
        spec: The fault schedule.
        host: Interface to listen on.
        port: Listening port (0 → ephemeral).
        max_frame_bytes: Frame cap for the relay assemblers; match the
            server's so the proxy never rejects what the server accepts.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        spec: NetFaultSpec,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self.spec = spec
        self.max_frame_bytes = int(max_frame_bytes)
        self.stats = ProxyStats()
        self._mutex = threading.Lock()
        self._closing = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conn_count = 0
        self._listener = socket.create_server((host, int(port)), backlog=32)
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting and wait for the relay threads to finish."""
        if self._closing.is_set():
            return
        self._closing.set()
        self._accept_thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:
            pass
        with self._mutex:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats_snapshot(self) -> ProxyStats:
        """A point-in-time copy of the fault counters."""
        with self._mutex:
            return replace(self.stats)

    # ------------------------------------------------------------------
    # Relay machinery
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._mutex:
                conn_idx = self._conn_count
                self._conn_count += 1
                self.stats.connections += 1
            obs.get_registry().inc("netfaults.connections")
            try:
                server = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                with self._mutex:
                    self.stats.upstream_failures += 1
                obs.get_registry().inc("netfaults.upstream_failures")
                client.close()
                continue
            # One shared teardown flag per connection: a truncation in
            # either direction must kill both pumps, like a real RST.
            dead = threading.Event()
            for direction, src, dst in (
                (_CLIENT_TO_SERVER, client, server),
                (_SERVER_TO_CLIENT, server, client),
            ):
                thread = threading.Thread(
                    target=self._pump,
                    args=(direction, conn_idx, src, dst, dead),
                    name=f"chaos-proxy-{direction}-{conn_idx}",
                    daemon=True,
                )
                with self._mutex:
                    self._threads.append(thread)
                thread.start()

    def _pump(
        self,
        direction: str,
        conn_idx: int,
        src: socket.socket,
        dst: socket.socket,
        dead: threading.Event,
    ) -> None:
        assembler = FrameAssembler(
            max_frame_bytes=self.max_frame_bytes,
            what=f"chaos relay {direction}#{conn_idx}",
        )
        frame_idx = 0
        try:
            # The mirror pump may already have torn the sockets down
            # (a truncation in the other direction) — that is a normal
            # exit, not an error.
            src.settimeout(0.2)
            while not dead.is_set() and not self._closing.is_set():
                try:
                    data = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                try:
                    frames = assembler.feed(data)
                except WireProtocolError:
                    # The endpoint itself sent garbage framing — relay
                    # cannot resync; tear the connection down.
                    break
                for payload in frames:
                    if not self._relay_frame(
                        direction, conn_idx, frame_idx, payload, dst
                    ):
                        dead.set()
                        break
                    frame_idx += 1
        except OSError:
            pass
        finally:
            dead.set()
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _relay_frame(
        self,
        direction: str,
        conn_idx: int,
        frame_idx: int,
        payload: bytes,
        dst: socket.socket,
    ) -> bool:
        """Apply the seeded fate to one frame; False tears down."""
        registry = obs.get_registry()
        action, delayed = self.spec.decide(direction, conn_idx, frame_idx)
        with self._mutex:
            self.stats.frames += 1
        if delayed:
            with self._mutex:
                self.stats.delayed += 1
            registry.inc("netfaults.delayed")
            if self._closing.wait(self.spec.delay_s):
                return False
        if action == "drop":
            with self._mutex:
                self.stats.dropped += 1
            registry.inc("netfaults.dropped")
            return True
        frame = encode_frame(payload, self.max_frame_bytes)
        if action == "truncate":
            with self._mutex:
                self.stats.truncated += 1
            registry.inc("netfaults.truncated")
            # Half the payload after an intact header, then a hard stop
            # — the receiver must see "stream ended mid-frame".
            cut = HEADER_BYTES + max(1, len(payload) // 2)
            try:
                dst.sendall(frame[:cut])
            except OSError:
                pass
            return False
        copies = 2 if action == "duplicate" else 1
        if action == "duplicate":
            with self._mutex:
                self.stats.duplicated += 1
            registry.inc("netfaults.duplicated")
        else:
            with self._mutex:
                self.stats.passed += 1
        try:
            dst.sendall(frame * copies)
        except OSError:
            return False
        return True
