"""The paper's experimental corridor: US-25 near Greenville, SC.

Section III-A describes a 4.2 km section with one stop sign 490 m from the
start and two signalized intersections at 1820 m and 3460 m.  The measured
second signal runs a 30 s red / 30 s green cycle with intra-queue spacing
d = 8.5 m and straight-through ratio gamma = 76.36 % (Section III-B-2).

The exact posted limits and the first signal's timing are not printed in
the paper, so they are parameters here with defaults chosen to match the
velocity scales of Figs. 6-8 (cruise speeds of 50-70 km/h).
"""

from __future__ import annotations

from repro.route.road import GradeProfile, RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.signal.light import TrafficLight
from repro.units import kmh_to_ms

#: Corridor length (m).
US25_LENGTH_M = 4200.0
#: Stop-sign position (m).
US25_STOP_SIGN_M = 490.0
#: Signalized-intersection positions (m).
US25_SIGNAL_POSITIONS_M = (1820.0, 3460.0)
#: Measured intra-queue spacing at signal 2 (m).
US25_QUEUE_SPACING_M = 8.5
#: Measured straight-through ratio at signal 2.
US25_TURN_RATIO = 0.7636


def us25_greenville_segment(
    v_max_kmh: float = 70.0,
    v_min_kmh: float = 40.0,
    red_s: float = 30.0,
    green_s: float = 30.0,
    signal_offsets_s: tuple = (0.0, 15.0),
    grade: GradeProfile | None = None,
) -> RoadSegment:
    """Build the US-25 Greenville corridor used throughout the evaluation.

    Args:
        v_max_kmh: Posted maximum speed limit (km/h).
        v_min_kmh: Minimum expected flow speed (km/h); this is the ``v_min``
            the VM model accelerates queues to.
        red_s: Red duration of both signals (s).
        green_s: Green duration of both signals (s).
        signal_offsets_s: Cycle-start offsets for the two signals (s).
        grade: Optional road-grade profile; flat by default (the paper
            defers grade effects to future work).

    Returns:
        A fully populated :class:`~repro.route.road.RoadSegment`.
    """
    if len(signal_offsets_s) != len(US25_SIGNAL_POSITIONS_M):
        raise ValueError(
            f"need {len(US25_SIGNAL_POSITIONS_M)} signal offsets, got {len(signal_offsets_s)}"
        )
    v_max = kmh_to_ms(v_max_kmh)
    v_min = kmh_to_ms(v_min_kmh)
    signals = [
        SignalSite(
            position_m=pos,
            light=TrafficLight(red_s=red_s, green_s=green_s, offset_s=offset),
            turn_ratio=US25_TURN_RATIO,
            queue_spacing_m=US25_QUEUE_SPACING_M,
        )
        for pos, offset in zip(US25_SIGNAL_POSITIONS_M, signal_offsets_s)
    ]
    return RoadSegment(
        name="US-25 Greenville, SC",
        length_m=US25_LENGTH_M,
        zones=[SpeedLimitZone(0.0, US25_LENGTH_M, v_max_ms=v_max, v_min_ms=v_min)],
        stop_signs=[StopSign(US25_STOP_SIGN_M)],
        signals=signals,
        grade=grade if grade is not None else GradeProfile.flat(),
    )
