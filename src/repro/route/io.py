"""JSON serialization of road corridors.

Lets tools and tests exchange road definitions as plain files — the
library-side analogue of SUMO's network files, reduced to what this
system models (one corridor, limits, stop signs, fixed-time signals and a
grade profile).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, InputValidationError
from repro.guard.contracts import RepairReport, validate_road_dict
from repro.route.road import (
    GradeProfile,
    RoadSegment,
    SignalSite,
    SpeedLimitZone,
    StopSign,
)
from repro.signal.light import TrafficLight

#: Format marker written into every file.
FORMAT_VERSION = 1


def road_to_dict(road: RoadSegment) -> dict:
    """The JSON-ready representation of a road segment."""
    grade_positions = list(getattr(road.grade, "_pos", np.asarray([0.0])))
    grade_values = list(getattr(road.grade, "_grd", np.asarray([0.0])))
    return {
        "format_version": FORMAT_VERSION,
        "name": road.name,
        "length_m": road.length_m,
        "zones": [
            {
                "start_m": z.start_m,
                "end_m": z.end_m,
                "v_max_ms": z.v_max_ms,
                "v_min_ms": z.v_min_ms,
            }
            for z in road.zones
        ],
        "stop_signs": [s.position_m for s in road.stop_signs],
        "signals": [
            {
                "position_m": s.position_m,
                "red_s": s.light.red_s,
                "green_s": s.light.green_s,
                "offset_s": s.light.offset_s,
                "turn_ratio": s.turn_ratio,
                "queue_spacing_m": s.queue_spacing_m,
            }
            for s in road.signals
        ],
        "grade": {
            "positions_m": [float(p) for p in grade_positions],
            "grades_rad": [float(g) for g in grade_values],
        },
    }


def road_from_dict(
    data: dict, source: str = "<road dict>", repair: bool = False
) -> RoadSegment:
    """Rebuild a road segment from its JSON representation.

    The dict passes the full :func:`repro.guard.contracts.validate_road_dict`
    contract first, so malformed input fails with a field-level
    :class:`~repro.errors.InputValidationError` instead of a raw
    ``KeyError``/``TypeError`` from deep inside construction.

    Args:
        data: Parsed JSON object.
        source: Label used in validation errors (the file path when
            called from :func:`load_road_json`).
        repair: Forwarded to the contract: drop/clamp salvageable
            defects instead of rejecting the input.

    Raises:
        ConfigurationError: On unknown format versions.
        InputValidationError: On any contract violation in the data.
    """
    version = data.get("format_version") if isinstance(data, dict) else None
    if version != FORMAT_VERSION:
        raise InputValidationError(
            f"unsupported road format version {version!r}",
            source=source,
            field="format_version",
        )
    data, _report = validate_road_dict(data, source=source, repair=repair)
    try:
        zones = [
            SpeedLimitZone(
                start_m=z["start_m"],
                end_m=z["end_m"],
                v_max_ms=z["v_max_ms"],
                v_min_ms=z.get("v_min_ms", 0.0),
            )
            for z in data["zones"]
        ]
        signals = [
            SignalSite(
                position_m=s["position_m"],
                light=TrafficLight(
                    red_s=s["red_s"], green_s=s["green_s"], offset_s=s.get("offset_s", 0.0)
                ),
                turn_ratio=s.get("turn_ratio", 1.0),
                queue_spacing_m=s.get("queue_spacing_m", 8.5),
            )
            for s in data["signals"]
        ]
        grade = GradeProfile(data["grade"]["positions_m"], data["grade"]["grades_rad"])
        return RoadSegment(
            name=data["name"],
            length_m=data["length_m"],
            zones=zones,
            stop_signs=[StopSign(p) for p in data["stop_signs"]],
            signals=signals,
            grade=grade,
        )
    except KeyError as exc:
        raise ConfigurationError(f"road file is missing field {exc}") from exc


def save_road_json(road: RoadSegment, path: Union[str, Path]) -> None:
    """Write a road to a JSON file (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(road_to_dict(road), indent=2) + "\n")


def load_road_json(
    path: Union[str, Path], repair: bool = False
) -> RoadSegment:
    """Read a road from a JSON file written by :func:`save_road_json`.

    Args:
        path: The JSON file.
        repair: Drop/clamp salvageable defects instead of rejecting.

    Raises:
        InputValidationError: The file is missing, not JSON, or violates
            the road contract; the error names the file and field.
    """
    source = str(path)
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise InputValidationError(f"cannot read file: {exc}", source=source) from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise InputValidationError(f"not valid JSON: {exc}", source=source) from exc
    return road_from_dict(data, source=source, repair=repair)


def load_road_json_repaired(
    path: Union[str, Path],
) -> Tuple[RoadSegment, RepairReport]:
    """Like :func:`load_road_json` with repairs on, returning the report."""
    source = str(path)
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise InputValidationError(f"cannot read file: {exc}", source=source) from exc
    except ValueError as exc:
        raise InputValidationError(f"not valid JSON: {exc}", source=source) from exc
    version = data.get("format_version") if isinstance(data, dict) else None
    if version != FORMAT_VERSION:
        raise InputValidationError(
            f"unsupported road format version {version!r}",
            source=source,
            field="format_version",
        )
    data, report = validate_road_dict(data, source=source, repair=True)
    return road_from_dict(data, source=source), report
