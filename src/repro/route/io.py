"""JSON serialization of road corridors.

Lets tools and tests exchange road definitions as plain files — the
library-side analogue of SUMO's network files, reduced to what this
system models (one corridor, limits, stop signs, fixed-time signals and a
grade profile).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.route.road import (
    GradeProfile,
    RoadSegment,
    SignalSite,
    SpeedLimitZone,
    StopSign,
)
from repro.signal.light import TrafficLight

#: Format marker written into every file.
FORMAT_VERSION = 1


def road_to_dict(road: RoadSegment) -> dict:
    """The JSON-ready representation of a road segment."""
    grade_positions = list(getattr(road.grade, "_pos", np.asarray([0.0])))
    grade_values = list(getattr(road.grade, "_grd", np.asarray([0.0])))
    return {
        "format_version": FORMAT_VERSION,
        "name": road.name,
        "length_m": road.length_m,
        "zones": [
            {
                "start_m": z.start_m,
                "end_m": z.end_m,
                "v_max_ms": z.v_max_ms,
                "v_min_ms": z.v_min_ms,
            }
            for z in road.zones
        ],
        "stop_signs": [s.position_m for s in road.stop_signs],
        "signals": [
            {
                "position_m": s.position_m,
                "red_s": s.light.red_s,
                "green_s": s.light.green_s,
                "offset_s": s.light.offset_s,
                "turn_ratio": s.turn_ratio,
                "queue_spacing_m": s.queue_spacing_m,
            }
            for s in road.signals
        ],
        "grade": {
            "positions_m": [float(p) for p in grade_positions],
            "grades_rad": [float(g) for g in grade_values],
        },
    }


def road_from_dict(data: dict) -> RoadSegment:
    """Rebuild a road segment from its JSON representation.

    Raises:
        ConfigurationError: On unknown format versions or missing keys.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(f"unsupported road format version {version!r}")
    try:
        zones = [
            SpeedLimitZone(
                start_m=z["start_m"],
                end_m=z["end_m"],
                v_max_ms=z["v_max_ms"],
                v_min_ms=z.get("v_min_ms", 0.0),
            )
            for z in data["zones"]
        ]
        signals = [
            SignalSite(
                position_m=s["position_m"],
                light=TrafficLight(
                    red_s=s["red_s"], green_s=s["green_s"], offset_s=s.get("offset_s", 0.0)
                ),
                turn_ratio=s.get("turn_ratio", 1.0),
                queue_spacing_m=s.get("queue_spacing_m", 8.5),
            )
            for s in data["signals"]
        ]
        grade = GradeProfile(data["grade"]["positions_m"], data["grade"]["grades_rad"])
        return RoadSegment(
            name=data["name"],
            length_m=data["length_m"],
            zones=zones,
            stop_signs=[StopSign(p) for p in data["stop_signs"]],
            signals=signals,
            grade=grade,
        )
    except KeyError as exc:
        raise ConfigurationError(f"road file is missing field {exc}") from exc


def save_road_json(road: RoadSegment, path: Union[str, Path]) -> None:
    """Write a road to a JSON file (creating parent directories)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(road_to_dict(road), indent=2) + "\n")


def load_road_json(path: Union[str, Path]) -> RoadSegment:
    """Read a road from a JSON file written by :func:`save_road_json`."""
    return road_from_dict(json.loads(Path(path).read_text()))
