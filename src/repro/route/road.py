"""Road-segment model used by both the optimizer and the simulator.

A :class:`RoadSegment` is a one-dimensional corridor from a source (s=0) to
a destination (s=length).  It carries:

* piecewise-constant speed-limit zones (minimum and maximum limits, Eq. 7a),
* stop signs (Eq. 7c: velocity must be zero there),
* signalized intersections (positions; timing lives on the
  :class:`repro.signal.light.TrafficLight` attached per site),
* an optional road-grade profile for the gravity terms of Eq. 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.light import TrafficLight


@dataclass(frozen=True)
class SpeedLimitZone:
    """A stretch of road with fixed minimum/maximum speed limits.

    Attributes:
        start_m: Zone start position (inclusive).
        end_m: Zone end position (exclusive, except for the final zone).
        v_max_ms: Maximum legal speed (m/s).
        v_min_ms: Minimum expected flow speed (m/s); 0 where unposted.
    """

    start_m: float
    end_m: float
    v_max_ms: float
    v_min_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.end_m <= self.start_m:
            raise ConfigurationError(
                f"zone end {self.end_m} must exceed start {self.start_m}"
            )
        if self.v_max_ms <= 0:
            raise ConfigurationError(f"v_max must be positive, got {self.v_max_ms}")
        if not 0 <= self.v_min_ms <= self.v_max_ms:
            raise ConfigurationError(
                f"v_min {self.v_min_ms} must lie in [0, v_max={self.v_max_ms}]"
            )


@dataclass(frozen=True)
class StopSign:
    """A stop sign: the optimizer must plan v=0 at this position (Eq. 7c)."""

    position_m: float

    def __post_init__(self) -> None:
        if self.position_m < 0:
            raise ConfigurationError(f"position must be >= 0, got {self.position_m}")


@dataclass(frozen=True)
class SignalSite:
    """A signalized intersection on the corridor.

    Attributes:
        position_m: Stop-line position along the road.
        light: Signal timing (red/green cycle).
        turn_ratio: Fraction gamma of queued vehicles that go straight
            (Eq. 5); the rest turn off the corridor.
        queue_spacing_m: Average inter-vehicle spacing d inside a standing
            queue (front bumper to front bumper), assumed constant [14].
    """

    position_m: float
    light: TrafficLight
    turn_ratio: float = 1.0
    queue_spacing_m: float = 8.5

    def __post_init__(self) -> None:
        if self.position_m < 0:
            raise ConfigurationError(f"position must be >= 0, got {self.position_m}")
        if not 0.0 < self.turn_ratio <= 1.0:
            raise ConfigurationError(f"turn ratio must be in (0, 1], got {self.turn_ratio}")
        if self.queue_spacing_m <= 0:
            raise ConfigurationError(
                f"queue spacing must be positive, got {self.queue_spacing_m}"
            )


class GradeProfile:
    """Piecewise-linear road grade theta(s) in radians.

    Args:
        positions_m: Strictly increasing breakpoint positions.
        grades_rad: Grade at each breakpoint; linearly interpolated between
            breakpoints and held constant beyond the ends.
    """

    def __init__(self, positions_m: Sequence[float], grades_rad: Sequence[float]) -> None:
        pos = np.asarray(positions_m, dtype=float)
        grd = np.asarray(grades_rad, dtype=float)
        if pos.size == 0 or pos.shape != grd.shape:
            raise ConfigurationError("grade profile needs matching, non-empty arrays")
        if pos.size > 1 and np.any(np.diff(pos) <= 0):
            raise ConfigurationError("grade breakpoints must be strictly increasing")
        self._pos = pos
        self._grd = grd

    @classmethod
    def flat(cls) -> "GradeProfile":
        """A zero-grade profile."""
        return cls([0.0], [0.0])

    def at(self, position_m: float) -> float:
        """Grade (radians) at a position along the road."""
        return float(np.interp(position_m, self._pos, self._grd))

    def breakpoints(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(positions_m, grades_rad)`` breakpoint arrays (read-only copies).

        The engine layer folds these into the corridor-artifact digest;
        copies keep the profile immutable from the caller's side.
        """
        return self._pos.copy(), self._grd.copy()


@dataclass
class RoadSegment:
    """A one-dimensional corridor with limits, stop signs and signals.

    Attributes:
        name: Human-readable identifier.
        length_m: Corridor length; the destination sits at this position.
        zones: Speed-limit zones; must tile ``[0, length_m]`` without gaps.
        stop_signs: Stop signs sorted by position.
        signals: Signalized intersections sorted by position.
        grade: Road-grade profile (flat by default).
    """

    name: str
    length_m: float
    zones: List[SpeedLimitZone]
    stop_signs: List[StopSign] = field(default_factory=list)
    signals: List[SignalSite] = field(default_factory=list)
    grade: GradeProfile = field(default_factory=GradeProfile.flat)

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ConfigurationError(f"length must be positive, got {self.length_m}")
        if not self.zones:
            raise ConfigurationError("a road needs at least one speed-limit zone")
        self.zones = sorted(self.zones, key=lambda z: z.start_m)
        cursor = 0.0
        for zone in self.zones:
            if abs(zone.start_m - cursor) > 1e-9:
                raise ConfigurationError(
                    f"speed-limit zones must tile the road; gap/overlap at {zone.start_m} m"
                )
            cursor = zone.end_m
        if abs(cursor - self.length_m) > 1e-9:
            raise ConfigurationError(
                f"speed-limit zones end at {cursor} m but the road is {self.length_m} m"
            )
        self.stop_signs = sorted(self.stop_signs, key=lambda s: s.position_m)
        self.signals = sorted(self.signals, key=lambda s: s.position_m)
        for sign in self.stop_signs:
            if sign.position_m > self.length_m:
                raise ConfigurationError(f"stop sign at {sign.position_m} m is off the road")
        for site in self.signals:
            if site.position_m > self.length_m:
                raise ConfigurationError(f"signal at {site.position_m} m is off the road")
        self._zone_starts = [z.start_m for z in self.zones]

    # ------------------------------------------------------------------
    # Limit queries
    # ------------------------------------------------------------------
    def zone_at(self, position_m: float) -> SpeedLimitZone:
        """The speed-limit zone covering a position."""
        if not 0 <= position_m <= self.length_m:
            raise ValueError(f"position {position_m} m is outside [0, {self.length_m}]")
        index = bisect.bisect_right(self._zone_starts, position_m) - 1
        return self.zones[max(index, 0)]

    def v_max_at(self, position_m: float) -> float:
        """Maximum speed limit (m/s) at a position (Eq. 7a upper bound)."""
        return self.zone_at(position_m).v_max_ms

    def v_min_at(self, position_m: float) -> float:
        """Minimum expected speed (m/s) at a position (Eq. 7a lower bound)."""
        return self.zone_at(position_m).v_min_ms

    def grade_at(self, position_m: float) -> float:
        """Road grade (radians) at a position."""
        return self.grade.at(position_m)

    # ------------------------------------------------------------------
    # Mandatory-stop machinery (Eq. 7c/7d)
    # ------------------------------------------------------------------
    def mandatory_stop_positions(self) -> List[float]:
        """Positions where the planned velocity must be exactly zero.

        Includes the source, every stop sign and the destination (Eq. 7c
        and 7d).  Signals are *not* mandatory stops — the whole point of
        the paper is to glide through them on green.
        """
        positions = [0.0]
        positions.extend(sign.position_m for sign in self.stop_signs)
        positions.append(self.length_m)
        return sorted(set(positions))

    def signal_positions(self) -> List[float]:
        """Stop-line positions of all signals, in order."""
        return [site.position_m for site in self.signals]

    def grid(self, step_m: float) -> np.ndarray:
        """Equal-distance DP grid points s_i covering the corridor.

        Mandatory-stop and signal positions are snapped onto the grid by
        inserting them as extra points, so constraints apply at exact
        locations rather than at the nearest multiple of ``step_m``.
        """
        if step_m <= 0:
            raise ValueError(f"grid step must be positive, got {step_m}")
        base = np.arange(0.0, self.length_m + 0.5 * step_m, step_m)
        special = np.unique(
            np.asarray(
                self.mandatory_stop_positions() + self.signal_positions(), dtype=float
            )
        )
        # Drop base points crowding a special point: a sub-step segment
        # adjacent to a mandatory stop admits no feasible acceleration on
        # any reasonable velocity grid.
        distance_to_special = np.min(
            np.abs(base[:, None] - special[None, :]), axis=1
        )
        base = base[distance_to_special > 0.5 * step_m]
        points = np.union1d(base, special)
        keep = np.concatenate([[True], np.diff(points) > 1e-6])
        return points[keep]
