"""Fluent corridor construction.

Building a :class:`~repro.route.road.RoadSegment` by hand requires the
speed-limit zones to tile the road exactly and all features to be placed
in-range; the builder assembles those invariants incrementally:

    road = (
        CorridorBuilder("main street", length_m=3000.0)
        .speed_limits(v_max_kmh=60.0, v_min_kmh=35.0)
        .zone(1000.0, 1600.0, v_max_kmh=40.0)           # school zone
        .stop_sign(at_m=200.0)
        .signal(at_m=1200.0, red_s=25.0, green_s=35.0, offset_s=10.0)
        .signal(at_m=2400.0, red_s=25.0, green_s=35.0)
        .grade([0.0, 3000.0], [0.0, 0.01])
        .build()
    )
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.route.road import (
    GradeProfile,
    RoadSegment,
    SignalSite,
    SpeedLimitZone,
    StopSign,
)
from repro.signal.light import TrafficLight
from repro.units import kmh_to_ms


class CorridorBuilder:
    """Incremental, validated construction of road corridors.

    Args:
        name: Human-readable corridor name.
        length_m: Total corridor length.
    """

    def __init__(self, name: str, length_m: float) -> None:
        if length_m <= 0:
            raise ConfigurationError(f"length must be positive, got {length_m}")
        self._name = name
        self._length_m = float(length_m)
        self._default_limits: Optional[Tuple[float, float]] = None
        self._overrides: List[Tuple[float, float, float, float]] = []
        self._stop_signs: List[float] = []
        self._signals: List[SignalSite] = []
        self._grade: Optional[GradeProfile] = None

    # ------------------------------------------------------------------
    # Speed limits
    # ------------------------------------------------------------------
    def speed_limits(self, v_max_kmh: float, v_min_kmh: float = 0.0) -> "CorridorBuilder":
        """Default limits covering the whole corridor."""
        if self._default_limits is not None:
            raise ConfigurationError("default speed limits already set")
        self._default_limits = (kmh_to_ms(v_max_kmh), kmh_to_ms(v_min_kmh))
        return self

    def zone(
        self, start_m: float, end_m: float, v_max_kmh: float, v_min_kmh: float = 0.0
    ) -> "CorridorBuilder":
        """Override the limits on a stretch (e.g. a school zone)."""
        if not 0.0 <= start_m < end_m <= self._length_m:
            raise ConfigurationError(
                f"zone [{start_m}, {end_m}] is outside the {self._length_m} m corridor"
            )
        for existing_start, existing_end, _, _ in self._overrides:
            if start_m < existing_end and existing_start < end_m:
                raise ConfigurationError(
                    f"zone [{start_m}, {end_m}] overlaps [{existing_start}, {existing_end}]"
                )
        self._overrides.append((start_m, end_m, kmh_to_ms(v_max_kmh), kmh_to_ms(v_min_kmh)))
        return self

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------
    def stop_sign(self, at_m: float) -> "CorridorBuilder":
        """Place a stop sign."""
        if not 0.0 < at_m < self._length_m:
            raise ConfigurationError(f"stop sign at {at_m} m is outside the corridor")
        self._stop_signs.append(at_m)
        return self

    def signal(
        self,
        at_m: float,
        red_s: float,
        green_s: float,
        offset_s: float = 0.0,
        turn_ratio: float = 1.0,
        queue_spacing_m: float = 8.5,
    ) -> "CorridorBuilder":
        """Place a signalized intersection."""
        if not 0.0 < at_m < self._length_m:
            raise ConfigurationError(f"signal at {at_m} m is outside the corridor")
        self._signals.append(
            SignalSite(
                position_m=at_m,
                light=TrafficLight(red_s=red_s, green_s=green_s, offset_s=offset_s),
                turn_ratio=turn_ratio,
                queue_spacing_m=queue_spacing_m,
            )
        )
        return self

    def grade(
        self, positions_m: Sequence[float], grades_rad: Sequence[float]
    ) -> "CorridorBuilder":
        """Attach a piecewise-linear grade profile."""
        self._grade = GradeProfile(positions_m, grades_rad)
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self) -> RoadSegment:
        """Assemble the validated road segment."""
        if self._default_limits is None:
            raise ConfigurationError("call speed_limits() before build()")
        default_max, default_min = self._default_limits
        boundaries = {0.0, self._length_m}
        for start, end, _, _ in self._overrides:
            boundaries.update((start, end))
        cuts = sorted(boundaries)
        zones: List[SpeedLimitZone] = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            v_max, v_min = default_max, default_min
            for start, end, z_max, z_min in self._overrides:
                if start <= lo and hi <= end:
                    v_max, v_min = z_max, z_min
                    break
            zones.append(SpeedLimitZone(lo, hi, v_max_ms=v_max, v_min_ms=v_min))
        return RoadSegment(
            name=self._name,
            length_m=self._length_m,
            zones=zones,
            stop_signs=[StopSign(p) for p in sorted(self._stop_signs)],
            signals=sorted(self._signals, key=lambda s: s.position_m),
            grade=self._grade if self._grade is not None else GradeProfile.flat(),
        )
