"""A library-provided urban arterial: five staggered signals over 6 km.

The paper's US-25 section has two signals; GLOSA-style studies (its
related work [17]) evaluate on longer coordinated arterials.  This
corridor is the library's standard multi-signal scenario — used by the
examples and the coordination benches — with per-intersection demand
levels that an SAE deployment would supply.
"""

from __future__ import annotations

from typing import Dict

from repro.route.builder import CorridorBuilder
from repro.route.road import RoadSegment
from repro.units import vehicles_per_hour_to_per_second

#: Per-signal demand (vehicles/hour) of the default arterial scenario.
ARTERIAL_DEMAND_VPH: Dict[float, float] = {
    900.0: 240.0,
    2000.0: 420.0,
    3100.0: 300.0,
    4300.0: 500.0,
    5400.0: 360.0,
}


def urban_arterial(
    v_max_kmh: float = 60.0,
    v_min_kmh: float = 35.0,
    red_s: float = 35.0,
    green_s: float = 35.0,
) -> RoadSegment:
    """Build the five-signal arterial corridor.

    Args:
        v_max_kmh: Posted maximum limit.
        v_min_kmh: Minimum flow speed (drives the VM discharge model).
        red_s: Red duration shared by all signals.
        green_s: Green duration shared by all signals.
    """
    builder = (
        CorridorBuilder("urban arterial", length_m=6000.0)
        .speed_limits(v_max_kmh=v_max_kmh, v_min_kmh=v_min_kmh)
        .stop_sign(at_m=300.0)
    )
    offsets = {900.0: 0.0, 2000.0: 18.0, 3100.0: 36.0, 4300.0: 9.0, 5400.0: 27.0}
    for position, offset in offsets.items():
        builder.signal(
            at_m=position,
            red_s=red_s,
            green_s=green_s,
            offset_s=offset,
            turn_ratio=0.8,
            queue_spacing_m=8.0,
        )
    return builder.build()


def arterial_arrival_rates() -> Dict[float, float]:
    """Per-signal arrival rates (vehicles/second) for the default demand."""
    return {
        position: vehicles_per_hour_to_per_second(vph)
        for position, vph in ARTERIAL_DEMAND_VPH.items()
    }
