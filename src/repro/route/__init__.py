"""Road-segment modelling: geometry, speed limits, stop signs and signals."""

from repro.route.road import GradeProfile, RoadSegment, SignalSite, SpeedLimitZone, StopSign
from repro.route.builder import CorridorBuilder
from repro.route.us25 import us25_greenville_segment
from repro.route.arterial import arterial_arrival_rates, urban_arterial
from repro.route.io import load_road_json, save_road_json

__all__ = [
    "CorridorBuilder",
    "load_road_json",
    "save_road_json",
    "GradeProfile",
    "RoadSegment",
    "SignalSite",
    "SpeedLimitZone",
    "StopSign",
    "arterial_arrival_rates",
    "urban_arterial",
    "us25_greenville_segment",
]
