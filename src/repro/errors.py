"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model or component was constructed with invalid parameters."""


class InfeasibleProblemError(ReproError):
    """The optimizer could not find any profile satisfying the constraints."""


class SimulationError(ReproError):
    """The traffic simulator reached an inconsistent state."""


class PlanningFailedError(ReproError):
    """The cloud planning service could not produce a plan for a request.

    Raised by :meth:`repro.cloud.service.CloudPlannerService.request` when
    the underlying planner finds the request infeasible (too-tight budget,
    unreachable windows).  The failure is fully accounted in the service's
    :class:`~repro.cloud.service.ServiceStats` before this is raised, so
    callers that catch it (e.g. the fleet study) can keep serving the rest
    of their workload with consistent counters.

    Attributes:
        vehicle_id: The requesting vehicle.
        depart_s: The requested departure time (s).
    """

    def __init__(self, message: str, vehicle_id: str = "", depart_s: float = 0.0):
        super().__init__(message)
        self.vehicle_id = vehicle_id
        self.depart_s = depart_s


class PredictionError(ReproError):
    """A traffic predictor was used before training or on bad input."""
