"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model or component was constructed with invalid parameters."""


class InfeasibleProblemError(ReproError):
    """The optimizer could not find any profile satisfying the constraints."""


class SimulationError(ReproError):
    """The traffic simulator reached an inconsistent state."""


class PredictionError(ReproError):
    """A traffic predictor was used before training or on bad input."""
