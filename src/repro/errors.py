"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A model or component was constructed with invalid parameters."""


class InfeasibleProblemError(ReproError):
    """The optimizer could not find any profile satisfying the constraints."""


class SimulationError(ReproError):
    """The traffic simulator reached an inconsistent state."""


class SimulationTimeoutError(SimulationError):
    """A simulated vehicle ran out of simulation horizon.

    Raised by drivers (e.g. :class:`repro.sim.closed_loop.ClosedLoopDriver`)
    when the EV has not finished the corridor by the hard simulation
    cutoff.  This is a *simulation budget* problem — distinct from
    :class:`InfeasibleProblemError`, which means no plan satisfying the
    constraints exists at all.

    Attributes:
        horizon_s: The exhausted simulation horizon (s).
    """

    def __init__(self, message: str, horizon_s: float = 0.0):
        super().__init__(message)
        self.horizon_s = horizon_s


class PlanningFailedError(ReproError):
    """The cloud planning service could not produce a plan for a request.

    Raised by :meth:`repro.cloud.service.CloudPlannerService.request` when
    the underlying planner finds the request infeasible (too-tight budget,
    unreachable windows).  The failure is fully accounted in the service's
    :class:`~repro.cloud.service.ServiceStats` before this is raised, so
    callers that catch it (e.g. the fleet study) can keep serving the rest
    of their workload with consistent counters.

    Attributes:
        vehicle_id: The requesting vehicle.
        depart_s: The requested departure time (s).
    """

    def __init__(self, message: str, vehicle_id: str = "", depart_s: float = 0.0):
        super().__init__(message)
        self.vehicle_id = vehicle_id
        self.depart_s = depart_s


class CloudUnavailableError(ReproError):
    """The cloud planning service could not be reached.

    Raised by :class:`repro.resilience.client.ResilientPlanClient` when a
    request exhausts its retry budget or deadline against injected
    transport faults (drops, latency, outage windows), or when the
    client's circuit breaker is open and fast-fails the request without
    touching the wire.  This is a *transport* failure — the planning
    problem itself may be perfectly feasible — so callers degrade to a
    local planning tier instead of giving up on the trip.

    Attributes:
        vehicle_id: The requesting vehicle.
        attempts: Wire attempts made before giving up (0 for fast-fails).
        reason: Short failure class: ``"drop"``, ``"outage"``,
            ``"deadline"`` or ``"breaker_open"``.
    """

    def __init__(
        self,
        message: str,
        vehicle_id: str = "",
        attempts: int = 0,
        reason: str = "drop",
    ):
        super().__init__(message)
        self.vehicle_id = vehicle_id
        self.attempts = attempts
        self.reason = reason


class ServerOverloadError(CloudUnavailableError):
    """The plan server shed this request under load (a typed BUSY).

    Raised by :class:`repro.cloud.netclient.NetworkPlanTransport` when
    the server answers with a ``busy`` error frame — its bounded
    admission queue was full, or it was draining for shutdown.  The
    server is *alive*; it chose to shed rather than queue unboundedly.
    Subclasses :class:`CloudUnavailableError` so the resilient client's
    retry/backoff/circuit-breaker machinery (and the degradation ladder
    behind it) treats overload like any other transient transport
    failure: back off, retry, and degrade to a local tier if the
    overload persists.

    Attributes:
        queue_depth: Admitted-but-unfinished requests at rejection time,
            when the server reported it (else ``None``).
        capacity: The server's admission bound, when reported.
    """

    def __init__(
        self,
        message: str,
        vehicle_id: str = "",
        queue_depth=None,
        capacity=None,
    ):
        super().__init__(message, vehicle_id=vehicle_id, attempts=1, reason="busy")
        self.queue_depth = queue_depth
        self.capacity = capacity


class InputValidationError(ConfigurationError, ValueError):
    """An external input (file, dict, request) violated its contract.

    Raised by :mod:`repro.guard.contracts` and the IO loaders that build
    on it when untrusted data — a road JSON, a trace CSV, a traffic-volume
    export, a plan request — fails a structural, range, finiteness or
    consistency check.  Subclasses both :class:`ConfigurationError` and
    :class:`ValueError` so existing handlers keep working while new code
    can catch the typed error and read the exact failure location.

    Attributes:
        source: The boundary the data crossed (file path or logical name).
        field: Dotted path of the offending field (e.g.
            ``"zones[2].v_max_ms"``); empty when the whole input is bad.
        row: Zero-based data-row index for tabular inputs, ``None``
            otherwise.
        reason: Human-readable explanation of the violated contract.
    """

    def __init__(
        self,
        reason: str,
        source: str = "",
        field: str = "",
        row=None,
    ):
        location = source or "<input>"
        if field:
            location += f": {field}"
        if row is not None:
            location += f" (row {row})"
        super().__init__(f"{location}: {reason}")
        self.source = source
        self.field = field
        self.row = row
        self.reason = reason


class WireProtocolError(InputValidationError):
    """A wire payload violated the cloud serving protocol.

    Raised by :mod:`repro.cloud.wire` when bytes arriving at (or leaving)
    the serialization boundary are not a valid protocol message: broken
    JSON, a missing or unknown ``wire_version``, a wrong ``kind``,
    missing/unknown keys, mistyped or non-finite fields — and by
    :mod:`repro.cloud.framing` when the length-prefixed frame layer is
    broken (a truncated header or body, or a declared length above the
    frame cap).  Subclasses :class:`InputValidationError` so existing
    guard-layer handlers (and the CLI's exit-code-2 path) treat wire
    garbage like any other contract breach.

    Attributes:
        version: The offending payload's ``wire_version`` when it could
            be read, ``None`` otherwise.
        offset: Byte offset into the stream where the violation was
            detected, when the frame layer raised it (``None`` for
            payload-level schema errors).
        expected_bytes: Bytes the frame layer needed at ``offset`` to
            make progress (declared frame length, or the header size),
            when known.
        got_bytes: Bytes actually available at ``offset``, when known.
    """

    def __init__(
        self,
        reason: str,
        source: str = "wire",
        field: str = "",
        row=None,
        version=None,
        offset=None,
        expected_bytes=None,
        got_bytes=None,
    ):
        super().__init__(reason, source=source, field=field, row=row)
        self.version = version
        self.offset = offset
        self.expected_bytes = expected_bytes
        self.got_bytes = got_bytes


class UnknownCorridorError(InputValidationError):
    """A plan request named a corridor the serving stack does not hold.

    Raised by :class:`repro.cloud.registry.CorridorCatalog` (and the
    :class:`repro.cloud.router.PlanRouter` fronting it) when a request's
    ``corridor_id`` resolves to no registered corridor spec, and by
    :class:`repro.cloud.service.CloudPlannerService` when a request for
    one corridor reaches a service bound to another — the isolation
    check that keeps a plan cached for corridor A from ever being served
    for corridor B.  Subclasses :class:`InputValidationError` so guard
    handlers, the server's typed ``protocol`` error frames and the CLI's
    exit-code-2 path all apply unchanged.

    Attributes:
        corridor_id: The offending corridor id.
        known_ids: The corridor ids the catalog/service does hold, when
            available (empty tuple otherwise).
    """

    def __init__(
        self,
        reason: str,
        corridor_id: str = "",
        known_ids=(),
        source: str = "corridor registry",
    ):
        super().__init__(reason, source=source, field="corridor_id")
        self.corridor_id = corridor_id
        self.known_ids = tuple(known_ids)


class UnknownVehicleError(InputValidationError):
    """A spec or request named a vehicle the catalog does not hold.

    Raised by :func:`repro.vehicle.catalog.get_vehicle` (and the
    :class:`repro.cloud.registry.CorridorSpec` validation built on it)
    when a ``vehicle_id`` resolves to no catalog entry.  The check runs
    at spec/CLI validation time — before any planner is built or any
    serving counter moves — so a typo'd vehicle id is a typed input
    error, never a half-built runtime.  Subclasses
    :class:`InputValidationError` so guard handlers and the CLI's
    exit-code-2 path apply unchanged.

    Attributes:
        vehicle_id: The offending vehicle id.
        known_ids: The ids the catalog does hold.
    """

    def __init__(
        self,
        reason: str,
        vehicle_id: str = "",
        known_ids=(),
        source: str = "vehicle catalog",
    ):
        super().__init__(reason, source=source, field="vehicle_id")
        self.vehicle_id = vehicle_id
        self.known_ids = tuple(known_ids)


class UnknownScenarioError(InputValidationError):
    """A spec or request named a scenario pack that does not exist.

    Raised by :func:`repro.vehicle.scenarios.get_scenario` when a
    ``scenario`` id resolves to no registered
    :class:`~repro.vehicle.scenarios.ScenarioPack`.  Like
    :class:`UnknownVehicleError`, this fires during input validation —
    before any runtime is built — and subclasses
    :class:`InputValidationError` for uniform handling.

    Attributes:
        scenario_id: The offending scenario id.
        known_ids: The scenario ids that do exist.
    """

    def __init__(
        self,
        reason: str,
        scenario_id: str = "",
        known_ids=(),
        source: str = "scenario packs",
    ):
        super().__init__(reason, source=source, field="scenario")
        self.scenario_id = scenario_id
        self.known_ids = tuple(known_ids)


class DispatchDeadlineError(ReproError):
    """A dispatched plan request missed its per-request deadline.

    Raised by :class:`repro.cloud.dispatcher.PlanDispatcher` when a
    request's wall-clock deadline expires before the request could be
    served — either while queued behind a saturated worker pool or while
    waiting (coalesced) on another request's in-flight solve.  This is a
    *serving latency* failure: the planning problem itself may be
    perfectly feasible on a retry.

    Attributes:
        vehicle_id: The requesting vehicle.
        deadline_s: The expired deadline (wall seconds from submission).
    """

    def __init__(self, message: str, vehicle_id: str = "", deadline_s: float = 0.0):
        super().__init__(message)
        self.vehicle_id = vehicle_id
        self.deadline_s = deadline_s


class PlanRejectedError(ReproError):
    """A planned profile failed its safety audit and cannot be repaired.

    Raised by :meth:`repro.guard.plan_check.PlanValidator.repair_plan`
    (and by the :class:`repro.guard.supervisor.SafetySupervisor` when it
    screens a served plan) when a profile carries violations beyond the
    repairable envelope — non-finite values, gross speed-limit breaches,
    or signal arrivals outside every admissible window.  Callers in the
    degradation ladder treat this like a planning failure and fall to the
    next tier.

    Attributes:
        violations: The machine-readable violation list (tuple of
            :class:`repro.guard.plan_check.Violation`).
        tier: Ladder tier whose plan was rejected, when known.
    """

    def __init__(self, message: str, violations=(), tier: str = ""):
        super().__init__(message)
        self.violations = tuple(violations)
        self.tier = tier


class PredictionError(ReproError):
    """A traffic predictor was used before training or on bad input."""


class CheckpointError(PredictionError):
    """A predictor checkpoint is missing required state.

    Raised by :meth:`repro.traffic.sae.SAEPredictor.load` when a
    checkpoint lacks arrays the caller requires — the fitted
    normalization bounds and held-out residual statistics that
    :mod:`repro.core.uncertainty` turns into chance-constraint margins.
    A model restored without them would silently plan with no
    uncertainty model, so the gap is a typed, catchable failure instead
    of an ``AttributeError`` at margin time.

    Attributes:
        path: The offending checkpoint file.
        missing: Names of the absent arrays.
    """

    def __init__(self, message: str, path: str = "", missing=()):
        super().__init__(message)
        self.path = path
        self.missing = tuple(missing)
