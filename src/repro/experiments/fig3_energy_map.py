"""Fig. 3 — energy-consumption rate of the EV over (speed, acceleration).

Reproduces the surface of Eq. 3 on a flat road: consumption in mAh/s for
speeds 0-120 km/h and accelerations -1.5 to +2.5 m/s^2.  The published
shape: consumption grows steeply with acceleration, superlinearly with
speed, and turns *negative* while decelerating (regenerative braking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.units import kmh_to_ms
from repro.vehicle.dynamics import LongitudinalModel
from repro.vehicle.params import VehicleParams, chevrolet_spark_ev


@dataclass(frozen=True)
class Fig3Config:
    """Sweep ranges (paper axes)."""

    speed_min_kmh: float = 0.0
    speed_max_kmh: float = 120.0
    speed_steps: int = 61
    accel_min_ms2: float = -1.5
    accel_max_ms2: float = 2.5
    accel_steps: int = 41


@dataclass
class Fig3Result:
    """The sampled consumption surface.

    Attributes:
        speeds_kmh: Speed axis.
        accels_ms2: Acceleration axis.
        rate_mah_s: Surface ``(len(accels), len(speeds))`` in mAh/s.
    """

    speeds_kmh: np.ndarray
    accels_ms2: np.ndarray
    rate_mah_s: np.ndarray

    def sample_rows(self) -> List[Tuple[float, float, float]]:
        """A few (speed, accel, rate) probes for the report table."""
        rows = []
        for accel in (-1.5, -0.5, 0.0, 1.0, 2.5):
            for speed in (20.0, 60.0, 100.0):
                ai = int(np.argmin(np.abs(self.accels_ms2 - accel)))
                si = int(np.argmin(np.abs(self.speeds_kmh - speed)))
                rows.append((speed, accel, float(self.rate_mah_s[ai, si])))
        return rows


def run(config: Fig3Config = Fig3Config(), vehicle: VehicleParams | None = None) -> Fig3Result:
    """Evaluate Eq. 3 over the configured grid (flat road)."""
    params = vehicle if vehicle is not None else chevrolet_spark_ev()
    model = LongitudinalModel(params)
    speeds = np.linspace(config.speed_min_kmh, config.speed_max_kmh, config.speed_steps)
    accels = np.linspace(config.accel_min_ms2, config.accel_max_ms2, config.accel_steps)
    grid_v, grid_a = np.meshgrid(kmh_to_ms(speeds), accels)
    rates = np.asarray(model.consumption_rate_mah_per_s(grid_v, grid_a))
    return Fig3Result(speeds_kmh=speeds, accels_ms2=accels, rate_mah_s=rates)


def report(result: Fig3Result) -> str:
    """Render the probe table plus the shape checks the paper highlights."""
    table = render_table(
        ["speed (km/h)", "accel (m/s^2)", "rate (mAh/s)"], result.sample_rows()
    )
    regen = result.rate_mah_s[result.accels_ms2 < -0.5]
    # Exclude the zero-speed column: braking at standstill regenerates nothing.
    moving = result.speeds_kmh > 1.0
    checks = [
        f"max rate {result.rate_mah_s.max():.2f} mAh/s at full acceleration",
        f"regen (negative) rates while braking: {(regen[:, moving] < 0).mean() * 100:.0f}% of cells",
    ]
    return "Fig. 3 — EV consumption-rate surface (theta = 0)\n" + table + "\n" + "\n".join(checks)
