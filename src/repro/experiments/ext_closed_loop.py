"""Extension: open-loop versus closed-loop (replanning) execution.

The paper computes one profile per trip; its SUMO runs already show the
derived trajectory deviating whenever traffic interferes.  This extension
quantifies what periodic replanning buys: the same trips executed
open-loop (one plan) and closed-loop (replan every ``interval``), across
traffic levels.  Expected shape: at light traffic the two coincide; as
interference grows, the closed-loop driver recovers window targeting and
keeps energy and stop counts down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.engine import ArtifactStore
from repro.core.planner import PlannerConfig, QueueAwareDpPlanner
from repro.route.us25 import us25_greenville_segment
from repro.sim.closed_loop import ClosedLoopDriver
from repro.sim.scenario import Us25Scenario
from repro.units import vehicles_per_hour_to_per_second


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Traffic sweep settings."""

    traffic_levels_vph: Tuple[float, ...] = (150.0, 400.0, 650.0)
    departures: Tuple[float, ...] = (300.0, 330.0)
    trip_cap_s: float = 280.0
    replan_interval_s: float = 15.0
    seed: int = 13


@dataclass
class ClosedLoopComparison:
    """Per-traffic-level comparison rows.

    Attributes:
        rows: (traffic vph, open energy, closed energy, open stops,
            closed stops, mean replans applied).
    """

    rows: List[Tuple[float, float, float, int, int, float]]


def run(config: ClosedLoopConfig = ClosedLoopConfig()) -> ClosedLoopComparison:
    """Drive open-loop and closed-loop across the traffic sweep."""
    road = us25_greenville_segment()
    planner_config = PlannerConfig(v_step_ms=1.0, s_step_m=25.0)
    # The traffic sweep re-keys only the arrival rate; one store serves
    # every traffic level from a single corridor build.
    store = ArtifactStore()
    rows: List[Tuple[float, float, float, int, int, float]] = []
    for vph in config.traffic_levels_vph:
        planner = QueueAwareDpPlanner(
            road,
            arrival_rates=vehicles_per_hour_to_per_second(vph),
            config=planner_config,
            store=store,
        )
        open_e: List[float] = []
        closed_e: List[float] = []
        open_stops = closed_stops = 0
        replans: List[int] = []
        for depart in config.departures:
            scenario = Us25Scenario(
                road=road, arrival_rate_vph=vph, warmup_s=depart, seed=config.seed
            )
            cap = max(config.trip_cap_s, planner.min_trip_time(depart) + 1.0)
            solution = planner.plan(depart, max_trip_time_s=cap)
            open_result = scenario.drive(solution.profile, depart_s=depart)
            open_e.append(open_result.ev_trace.energy().net_mah)
            open_stops += open_result.ev_signal_stops(road)

            driver = ClosedLoopDriver(
                scenario, planner, replan_interval_s=config.replan_interval_s
            )
            closed_result = driver.run(depart_s=depart, max_trip_time_s=cap)
            closed_e.append(closed_result.ev_trace.energy().net_mah)
            closed_stops += closed_result.sim.ev_signal_stops(road)
            replans.append(closed_result.replans_applied)
        rows.append(
            (
                vph,
                float(np.mean(open_e)),
                float(np.mean(closed_e)),
                open_stops,
                closed_stops,
                float(np.mean(replans)),
            )
        )
    return ClosedLoopComparison(rows=rows)


def report(result: ClosedLoopComparison) -> str:
    """Traffic sweep table."""
    table = render_table(
        [
            "traffic (vph)",
            "open E (mAh)",
            "closed E (mAh)",
            "open stops",
            "closed stops",
            "replans",
        ],
        result.rows,
    )
    worst_open = max(r[3] for r in result.rows)
    worst_closed = max(r[4] for r in result.rows)
    return (
        "Extension — open-loop vs closed-loop execution\n"
        + table
        + f"\nworst signal stops: open-loop {worst_open}, closed-loop {worst_closed}"
    )
